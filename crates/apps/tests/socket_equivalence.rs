//! The transport backend must be invisible to the program. Whether wire
//! envelopes move through in-process channels (`TransportKind::InProc`)
//! or are framed by the codec and carried over real loopback sockets
//! between the node threads (`TransportKind::socket_loopback()`), the
//! machine executes the same logical computation: the substrate only
//! changes *how* an envelope travels, never what it says. So the same
//! workload on both transports has to agree on every logical observable —
//! the verification value, the per-node digest of every home region, the
//! logical message counts (total and per protocol tag), the annotation
//! counters, and the conformance checker's verdict.
//!
//! Two observables are deliberately excluded:
//!
//! * **wire-envelope grouping** — how many protocol replies coalesce
//!   between two blocking points depends on arrival timing, which the
//!   socket path perturbs at least as much as OS scheduling does; the
//!   wire count is only bounded by the logical count.
//! * **byte accounting** — the socket transport charges its own framing
//!   header ([`SOCKET_HEADER_BYTES`] = 23 bytes) where the in-process
//!   backend charges the simulated CM-5 header (20 bytes), so byte
//!   totals and the virtual clocks they feed legitimately differ. That
//!   is a *cost model* difference, not a behavioral one, and nothing
//!   logical may depend on it.

use std::collections::BTreeMap;

use ace_apps::{em3d, water, AceDsm, Variant};
use ace_core::{run_ace_with, CheckMode, CostModel, OpCounters, Spmd, TraceConfig, TransportKind};

/// Logical observables for one traced run.
struct Obs {
    verification: f64,
    digests: Vec<u64>,
    counters: OpCounters,
    msgs: u64,
    wire_msgs: u64,
    violations: u64,
    /// Protocol tag -> logical message count.
    per_tag: BTreeMap<&'static str, u64>,
}

fn run_app<F>(transport: TransportKind, nprocs: usize, f: F) -> Obs
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    let r = run_ace_with(
        Spmd::builder()
            .nprocs(nprocs)
            .cost(CostModel::cm5())
            .trace(TraceConfig::on())
            .check(CheckMode::Log)
            .transport(transport),
        |rt| {
            let d = AceDsm::new(rt);
            let v = f(&d);
            // Rendezvous so every node's digest sees the settled final state.
            rt.machine_barrier();
            (v, rt.data_digest(), rt.counters())
        },
    );
    let mut counters = OpCounters::default();
    for (_, _, c) in &r.results {
        counters.merge(c);
    }
    let trace = r.trace.expect("trace requested");
    let per_tag = trace.summary().tags.iter().map(|t| (t.tag, t.logical)).collect();
    Obs {
        verification: r.results[0].0,
        digests: r.results.iter().map(|(_, d, _)| *d).collect(),
        counters,
        msgs: r.stats.total_msgs(),
        wire_msgs: r.stats.total_wire_msgs(),
        violations: r.stats.total_violations(),
        per_tag,
    }
}

/// Full logical bit-equivalence across transports; wire grouping and byte
/// accounting excluded per the module comment.
fn assert_equivalent(ip: &Obs, sk: &Obs, ctx: &str) {
    assert_eq!(ip.verification.to_bits(), sk.verification.to_bits(), "{ctx}: verification value");
    assert_eq!(ip.digests, sk.digests, "{ctx}: per-node region digests");
    assert_eq!(ip.msgs, sk.msgs, "{ctx}: total logical message count");
    assert_eq!(ip.per_tag, sk.per_tag, "{ctx}: per-tag logical message counts");
    let strip = |c: &OpCounters| OpCounters { wire_msgs: 0, ..c.clone() };
    assert_eq!(strip(&ip.counters), strip(&sk.counters), "{ctx}: counters");
    assert_eq!(ip.violations, sk.violations, "{ctx}: conformance report");
    assert_eq!(ip.violations, 0, "{ctx}: checker counted violations");
    for (name, o) in [("inproc", ip), ("socket", sk)] {
        assert!(
            o.wire_msgs <= o.msgs,
            "{ctx}/{name}: coalescing can only merge envelopes (wire={} logical={})",
            o.wire_msgs,
            o.msgs
        );
    }
}

#[test]
fn em3d_transports_agree() {
    let p = em3d::Params {
        e_nodes: 64,
        h_nodes: 64,
        degree: 3,
        pct_remote: 25,
        steps: 2,
        seed: 11,
        hoist_maps: false,
    };
    for variant in [Variant::Sc, Variant::Custom] {
        let ip = run_app(TransportKind::InProc, 8, |d| em3d::run(d, &p, variant));
        let sk = run_app(TransportKind::socket_loopback(), 8, |d| em3d::run(d, &p, variant));
        assert_equivalent(&ip, &sk, "em3d");
    }
}

#[test]
fn water_transports_agree() {
    let p = water::Params { molecules: 32, steps: 2, seed: 5 };
    for variant in [Variant::Sc, Variant::Custom] {
        let ip = run_app(TransportKind::InProc, 8, |d| water::run(d, &p, variant));
        let sk = run_app(TransportKind::socket_loopback(), 8, |d| water::run(d, &p, variant));
        assert_equivalent(&ip, &sk, "water");
    }
}

#[test]
fn em3d_transports_agree_at_16_ranks() {
    // The upper end of the ISSUE's equivalence bar: 16 ranks means a
    // 120-connection full mesh over loopback, with the checker's vector
    // clocks riding every envelope through the codec.
    let p = em3d::Params {
        e_nodes: 64,
        h_nodes: 64,
        degree: 2,
        pct_remote: 20,
        steps: 1,
        seed: 3,
        hoist_maps: true,
    };
    let ip = run_app(TransportKind::InProc, 16, |d| em3d::run(d, &p, Variant::Custom));
    let sk = run_app(TransportKind::socket_loopback(), 16, |d| em3d::run(d, &p, Variant::Custom));
    assert_equivalent(&ip, &sk, "em3d @ 16");
}
