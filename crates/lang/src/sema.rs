//! Type checking and the `shared` rules of §3.1.
//!
//! The checker enforces the paper's restrictions: all shared data is
//! reached through `shared T*` handles allocated from spaces; there is no
//! arithmetic on shared pointers unless the result is dereferenced
//! immediately (i.e., only `p[i]`, `p->f`, `*p` are legal — a pointer into
//! the middle of a region cannot be materialized).

use std::collections::HashMap;

use crate::ast::*;

/// Struct layouts: field name → word offset and type.
#[derive(Debug, Clone, Default)]
pub struct StructTable {
    /// name → ordered fields.
    pub defs: HashMap<String, Vec<(Ty, String)>>,
}

impl StructTable {
    /// Word offset and type of `field` in `name`.
    pub fn field(&self, name: &str, field: &str) -> Option<(usize, Ty)> {
        self.defs
            .get(name)?
            .iter()
            .enumerate()
            .find_map(|(i, (ty, f))| (f == field).then(|| (i, ty.clone())))
    }

    /// Size of a struct in words (one word per field).
    pub fn words(&self, name: &str) -> Option<usize> {
        self.defs.get(name).map(|f| f.len())
    }
}

/// A function signature.
#[derive(Debug, Clone)]
pub struct Sig {
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

/// A validated unit plus its symbol tables.
#[derive(Debug, Clone)]
pub struct TypedUnit {
    /// The (unchanged) syntax.
    pub unit: Unit,
    /// Struct layouts.
    pub structs: StructTable,
    /// Function signatures by name.
    pub sigs: HashMap<String, Sig>,
}

/// Kinds of local bindings.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// Scalar local of the given type.
    Scalar(Ty),
    /// Local array with element type and length.
    Array(Ty, usize),
}

/// Builtin signature lookup. `None` means "not a builtin".
pub fn builtin_sig(name: &str) -> Option<Sig> {
    use Ty::*;
    let s = |params: Vec<Ty>, ret: Ty| Some(Sig { params, ret });
    let anyptr = SharedPtr(Box::new(Void));
    match name {
        "new_space" => s(vec![Int /* placeholder: string checked ad hoc */], Space),
        "change_protocol" => s(vec![Space, Int /* string */], Void),
        "gmalloc" => s(vec![Space, Int], anyptr),
        "barrier" => s(vec![Space], Void),
        "lock" | "unlock" => s(vec![anyptr], Void),
        "rank" | "nprocs" => s(vec![], Int),
        "bcast_i" => s(vec![Int, Int], Int),
        "bcast_p" => s(vec![Int, anyptr.clone()], anyptr),
        "reduce_add" | "reduce_max" => s(vec![Double], Double),
        "reduce_add_i" | "reduce_max_i" | "reduce_min_i" => s(vec![Int], Int),
        "sqrt" | "fabs" => s(vec![Double], Double),
        "charge_flops" => s(vec![Int], Void),
        "print_i" => s(vec![Int], Void),
        "print_f" => s(vec![Double], Void),
        _ => None,
    }
}

struct Checker<'a> {
    structs: &'a StructTable,
    sigs: &'a HashMap<String, Sig>,
    scopes: Vec<HashMap<String, Binding>>,
    ret: Ty,
    loop_depth: usize,
}

/// Check a unit; returns its symbol tables on success.
///
/// # Errors
///
/// Returns a message with the offending line.
pub fn check(unit: &Unit) -> Result<TypedUnit, String> {
    let mut structs = StructTable::default();
    for sd in &unit.structs {
        for (ty, f) in &sd.fields {
            match ty {
                Ty::Int | Ty::Double => {}
                Ty::SharedPtr(_) => {}
                other => {
                    return Err(format!(
                        "struct {}: field {f} has unsupported type {other:?}",
                        sd.name
                    ))
                }
            }
        }
        if structs.defs.insert(sd.name.clone(), sd.fields.clone()).is_some() {
            return Err(format!("duplicate struct {}", sd.name));
        }
    }
    let mut sigs = HashMap::new();
    for f in &unit.funcs {
        if builtin_sig(&f.name).is_some() {
            return Err(format!("line {}: function {} shadows a builtin", f.line, f.name));
        }
        let sig =
            Sig { params: f.params.iter().map(|(t, _)| t.clone()).collect(), ret: f.ret.clone() };
        if sigs.insert(f.name.clone(), sig).is_some() {
            return Err(format!("duplicate function {}", f.name));
        }
    }
    if !sigs.contains_key("main") {
        return Err("program has no main()".into());
    }
    for f in &unit.funcs {
        let mut ck = Checker {
            structs: &structs,
            sigs: &sigs,
            scopes: vec![HashMap::new()],
            ret: f.ret.clone(),
            loop_depth: 0,
        };
        for (ty, name) in &f.params {
            ck.scopes[0].insert(name.clone(), Binding::Scalar(ty.clone()));
        }
        ck.block(&f.body)?;
    }
    Ok(TypedUnit { unit: unit.clone(), structs, sigs })
}

impl Checker<'_> {
    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), String> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), String> {
        match s {
            Stmt::Decl { ty, name, array_len, init, line } => {
                if let Ty::Struct(n) = ty {
                    return Err(format!(
                        "line {line}: struct {n} values live in regions; declare `shared struct {n}*`"
                    ));
                }
                if *ty == Ty::Void {
                    return Err(format!("line {line}: cannot declare void variable {name}"));
                }
                let binding = match array_len {
                    Some(len) => {
                        if init.is_some() {
                            return Err(format!(
                                "line {line}: array declarations take no initializer"
                            ));
                        }
                        Binding::Array(ty.clone(), *len)
                    }
                    None => Binding::Scalar(ty.clone()),
                };
                if let Some(init) = init {
                    let it = self.expr(init)?;
                    self.assignable(ty, &it, *line)?;
                }
                self.scopes.last_mut().unwrap().insert(name.clone(), binding);
                Ok(())
            }
            Stmt::Assign { lhs, rhs, line } => {
                let rt = self.expr(rhs)?;
                let lt = self.lvalue(lhs, *line)?;
                self.assignable(&lt, &rt, *line)
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::If { cond, then_blk, else_blk } => {
                self.expect_int(cond)?;
                self.block(then_blk)?;
                self.block(else_blk)
            }
            Stmt::While { cond, body } => {
                self.expect_int(cond)?;
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                self.stmt(init)?;
                self.expect_int(cond)?;
                self.stmt(step)?;
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            Stmt::Return(e, line) => {
                let want = self.ret.clone();
                match (e, want) {
                    (None, Ty::Void) => Ok(()),
                    (None, other) => {
                        Err(format!("line {line}: missing return value of type {other:?}"))
                    }
                    (Some(_), Ty::Void) => {
                        Err(format!("line {line}: void function returns a value"))
                    }
                    (Some(e), want) => {
                        let t = self.expr(e)?;
                        self.assignable(&want, &t, *line)
                    }
                }
            }
            Stmt::Break(line) | Stmt::Continue(line) => {
                if self.loop_depth == 0 {
                    Err(format!("line {line}: break/continue outside a loop"))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn expect_int(&mut self, e: &Expr) -> Result<(), String> {
        let t = self.expr(e)?;
        if t == Ty::Int {
            Ok(())
        } else {
            Err(format!("line {}: condition must be int, found {t:?}", e.line))
        }
    }

    fn assignable(&self, want: &Ty, got: &Ty, line: u32) -> Result<(), String> {
        let ok = want == got
            || (*want == Ty::Double && *got == Ty::Int)
            || matches!(
                (want, got),
                (Ty::SharedPtr(_), Ty::SharedPtr(inner)) if **inner == Ty::Void
            );
        if ok {
            Ok(())
        } else {
            Err(format!("line {line}: cannot assign {got:?} to {want:?}"))
        }
    }

    fn lvalue(&mut self, lv: &LValue, line: u32) -> Result<Ty, String> {
        match lv {
            LValue::Var(n) => match self.lookup(n) {
                Some(Binding::Scalar(t)) => Ok(t.clone()),
                Some(Binding::Array(..)) => {
                    Err(format!("line {line}: cannot assign whole array {n}"))
                }
                None => Err(format!("line {line}: unknown variable {n}")),
            },
            LValue::Index(b, i) => self.index_ty(b, i, line),
            LValue::Member(b, f) => self.member_ty(b, f, line),
            LValue::Deref(b) => self.deref_ty(b, line),
        }
    }

    fn index_ty(&mut self, base: &Expr, idx: &Expr, line: u32) -> Result<Ty, String> {
        self.expect_int(idx)?;
        // Local array?
        if let ExprKind::Var(n) = &base.kind {
            if let Some(Binding::Array(elem, _)) = self.lookup(n) {
                return Ok(elem.clone());
            }
        }
        match self.expr(base)? {
            Ty::SharedPtr(elem) => match *elem {
                Ty::Int | Ty::Double | Ty::SharedPtr(_) => Ok(*elem),
                Ty::Struct(n) => {
                    Err(format!("line {line}: index a `shared struct {n}*` via ->field, not []"))
                }
                other => Err(format!("line {line}: cannot index into {other:?}")),
            },
            other => Err(format!("line {line}: cannot index into {other:?}")),
        }
    }

    fn member_ty(&mut self, base: &Expr, field: &str, line: u32) -> Result<Ty, String> {
        match self.expr(base)? {
            Ty::SharedPtr(inner) => match *inner {
                Ty::Struct(name) => self
                    .structs
                    .field(&name, field)
                    .map(|(_, t)| t)
                    .ok_or_else(|| format!("line {line}: struct {name} has no field {field}")),
                other => Err(format!(
                    "line {line}: -> requires a shared struct pointer, found {other:?}"
                )),
            },
            other => {
                Err(format!("line {line}: -> requires a shared struct pointer, found {other:?}"))
            }
        }
    }

    fn deref_ty(&mut self, base: &Expr, line: u32) -> Result<Ty, String> {
        match self.expr(base)? {
            Ty::SharedPtr(inner) => match *inner {
                Ty::Int | Ty::Double | Ty::SharedPtr(_) => Ok(*inner),
                other => Err(format!("line {line}: cannot deref pointer to {other:?}")),
            },
            other => Err(format!("line {line}: cannot deref {other:?}")),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Ty, String> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(_) => Ok(Ty::Int),
            ExprKind::Float(_) => Ok(Ty::Double),
            ExprKind::Str(_) => Err(format!(
                "line {line}: string literals are only valid as protocol names in new_space/change_protocol"
            )),
            ExprKind::Var(n) => match self.lookup(n) {
                Some(Binding::Scalar(t)) => Ok(t.clone()),
                Some(Binding::Array(..)) => {
                    Err(format!("line {line}: array {n} must be indexed"))
                }
                None => Err(format!("line {line}: unknown variable {n}")),
            },
            ExprKind::Bin(op, a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                if ta.is_shared_ptr() || tb.is_shared_ptr() {
                    // §3.1: no arithmetic on shared pointers; only equality.
                    if matches!(op, BinOp::Eq | BinOp::Ne) && ta == tb {
                        return Ok(Ty::Int);
                    }
                    return Err(format!(
                        "line {line}: arithmetic on shared pointers is disallowed (Ace §3.1); use p[i]"
                    ));
                }
                match op {
                    BinOp::And | BinOp::Or => {
                        if ta == Ty::Int && tb == Ty::Int {
                            Ok(Ty::Int)
                        } else {
                            Err(format!("line {line}: logical ops need int operands"))
                        }
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        self.numeric(&ta, &tb, line)?;
                        Ok(Ty::Int)
                    }
                    BinOp::Rem => {
                        if ta == Ty::Int && tb == Ty::Int {
                            Ok(Ty::Int)
                        } else {
                            Err(format!("line {line}: %% needs int operands"))
                        }
                    }
                    _ => self.numeric(&ta, &tb, line),
                }
            }
            ExprKind::Neg(a) => {
                let t = self.expr(a)?;
                if t == Ty::Int || t == Ty::Double {
                    Ok(t)
                } else {
                    Err(format!("line {line}: cannot negate {t:?}"))
                }
            }
            ExprKind::Not(a) => {
                self.expect_int(a)?;
                Ok(Ty::Int)
            }
            ExprKind::Index(b, i) => self.index_ty(b, i, line),
            ExprKind::Member(b, f) => self.member_ty(b, f, line),
            ExprKind::Deref(b) => self.deref_ty(b, line),
            ExprKind::Cast(ty, a) => {
                let t = self.expr(a)?;
                let ok = matches!(
                    (ty, &t),
                    (Ty::Int, Ty::Double)
                        | (Ty::Double, Ty::Int)
                        | (Ty::Int, Ty::Int)
                        | (Ty::Double, Ty::Double)
                        | (Ty::Int, Ty::SharedPtr(_))
                        | (Ty::SharedPtr(_), Ty::Int)
                        | (Ty::SharedPtr(_), Ty::SharedPtr(_))
                );
                if ok {
                    Ok(ty.clone())
                } else {
                    Err(format!("line {line}: invalid cast {t:?} -> {ty:?}"))
                }
            }
            ExprKind::Call(name, args) => self.call(name, args, line),
        }
    }

    fn numeric(&self, a: &Ty, b: &Ty, line: u32) -> Result<Ty, String> {
        match (a, b) {
            (Ty::Int, Ty::Int) => Ok(Ty::Int),
            (Ty::Double, Ty::Double) | (Ty::Int, Ty::Double) | (Ty::Double, Ty::Int) => {
                Ok(Ty::Double)
            }
            _ => Err(format!("line {line}: numeric op on {a:?} and {b:?}")),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<Ty, String> {
        // Builtins with string arguments get bespoke checking.
        match name {
            "new_space" => {
                if args.len() == 1 && matches!(args[0].kind, ExprKind::Str(_)) {
                    return Ok(Ty::Space);
                }
                return Err(format!("line {line}: new_space(\"ProtocolName\")"));
            }
            "change_protocol" => {
                if args.len() == 2 && matches!(args[1].kind, ExprKind::Str(_)) {
                    let t = self.expr(&args[0])?;
                    if t == Ty::Space {
                        return Ok(Ty::Void);
                    }
                }
                return Err(format!("line {line}: change_protocol(space, \"ProtocolName\")"));
            }
            "bcast_p" => {
                if args.len() != 2 {
                    return Err(format!("line {line}: bcast_p(root, ptr)"));
                }
                self.expect_int(&args[0])?;
                let t = self.expr(&args[1])?;
                if t.is_shared_ptr() {
                    return Ok(t);
                }
                return Err(format!("line {line}: bcast_p needs a shared pointer"));
            }
            _ => {}
        }
        let sig = builtin_sig(name)
            .or_else(|| self.sigs.get(name).cloned())
            .ok_or_else(|| format!("line {line}: unknown function {name}"))?;
        if sig.params.len() != args.len() {
            return Err(format!(
                "line {line}: {name} expects {} arguments, got {}",
                sig.params.len(),
                args.len()
            ));
        }
        for (want, arg) in sig.params.iter().zip(args) {
            let got = self.expr(arg)?;
            let ok = match (want, &got) {
                (Ty::SharedPtr(inner), Ty::SharedPtr(_)) if **inner == Ty::Void => true,
                _ => want == &got || (*want == Ty::Double && got == Ty::Int),
            };
            if !ok {
                return Err(format!(
                    "line {}: argument to {name} has type {got:?}, expected {want:?}",
                    arg.line
                ));
            }
        }
        Ok(sig.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse;

    fn check_src(src: &str) -> Result<TypedUnit, String> {
        check(&parse(&lex(src)?)?)
    }

    #[test]
    fn em3d_style_program_checks() {
        let src = r#"
            void main() {
                space eval = new_space("SC");
                shared double *v = (shared double*) gmalloc(eval, 10);
                int i;
                double acc = 0.0;
                for (i = 0; i < 10; i = i + 1) { acc = acc + v[i]; }
                change_protocol(eval, "Update");
                barrier(eval);
            }
        "#;
        check_src(src).unwrap();
    }

    #[test]
    fn rejects_pointer_arithmetic() {
        let src = r#"
            void main() {
                space s = new_space("SC");
                shared int *p = (shared int*) gmalloc(s, 4);
                shared int *q = (shared int*) gmalloc(s, 4);
                int bad = (p + 1) == q;
            }
        "#;
        let err = check_src(src).unwrap_err();
        assert!(err.contains("arithmetic on shared pointers"), "{err}");
    }

    #[test]
    fn pointer_equality_is_allowed() {
        let src = r#"
            void main() {
                space s = new_space("SC");
                shared int *p = (shared int*) gmalloc(s, 4);
                shared int *q = p;
                int same = p == q;
            }
        "#;
        check_src(src).unwrap();
    }

    #[test]
    fn struct_member_typing() {
        let src = r#"
            struct node { double val; int deg; };
            void main() {
                space s = new_space("SC");
                shared struct node *n = (shared struct node*) gmalloc(s, 2);
                double v = n->val;
                n->deg = 3;
            }
        "#;
        check_src(src).unwrap();
    }

    #[test]
    fn rejects_unknown_field_and_var() {
        assert!(check_src(
            "struct n { int a; }; void main() { space s = new_space(\"SC\");
             shared struct n *p = (shared struct n*) gmalloc(s, 1); int x = p->b; }"
        )
        .is_err());
        assert!(check_src("void main() { int x = y; }").is_err());
    }

    #[test]
    fn requires_main() {
        assert!(check_src("void helper() { }").unwrap_err().contains("no main"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(check_src("void main() { break; }").is_err());
    }

    #[test]
    fn local_arrays_of_handles() {
        let src = r#"
            void main() {
                space s = new_space("SC");
                shared double *nbrs[8];
                int i;
                for (i = 0; i < 8; i = i + 1) {
                    nbrs[i] = (shared double*) gmalloc(s, 1);
                }
                double x = nbrs[3][0];
            }
        "#;
        check_src(src).unwrap();
    }

    #[test]
    fn return_type_checked() {
        assert!(check_src("int f() { return 1.5; } void main() { }").is_err());
        assert!(check_src("double f() { return 1; } void main() { }").is_ok());
    }
}
