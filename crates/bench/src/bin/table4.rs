//! Table 4: effects of the compiler optimizations on the benchmark
//! kernels, against hand-written runtime-system code.
//!
//! Usage: table4 [--procs N] [--json PATH]
//!        [--trace PATH]  (re-runs EM3D/custom traced and writes Chrome JSON)

use ace_apps::Variant;
use ace_bench::acec::table4;
use ace_bench::fig7::{write_trace, Scale};
use ace_bench::json::{self, JsonRow};
use ace_lang::OptLevel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let procs = args
        .iter()
        .position(|a| a == "--procs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);

    println!("Table 4: compiler optimization effects ({procs} procs, simulated ms)");
    let rows = table4(procs);
    print!("{:<24}", "Optimization");
    for r in &rows {
        print!(" {:>11}", r.app);
    }
    println!();
    for (i, level) in OptLevel::ALL.iter().enumerate() {
        print!("{:<24}", level.label());
        for r in &rows {
            print!(" {:>11.2}", r.level_ms[i]);
        }
        println!();
    }
    print!("{:<24}", "Hand-optimized");
    for r in &rows {
        print!(" {:>11.2}", r.hand_ms);
    }
    println!();
    println!("\nbest-compiled / hand ratios (paper: 1.1-1.3x):");
    for r in &rows {
        println!(
            "  {:<12} {:.2}x   (verification compiled={:.6} hand={:.6})",
            r.app,
            r.level_ms[3] / r.hand_ms,
            r.verification.0,
            r.verification.1
        );
    }

    if let Some(path) =
        args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned()
    {
        let mut out = Vec::new();
        for r in &rows {
            for (i, level) in OptLevel::ALL.iter().enumerate() {
                out.push(JsonRow::new("table4", r.app, level.label(), procs, r.level_stats[i]));
            }
            out.push(JsonRow::new("table4", r.app, "hand", procs, r.hand_stats));
        }
        json::write(std::path::Path::new(&path), &out).expect("write --json file");
        println!("wrote {} rows to {path}", out.len());
    }

    if let Some(path) =
        args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)).cloned()
    {
        write_trace("em3d", Scale::Default, Variant::Custom, procs, std::path::Path::new(&path))
            .expect("write --trace file");
    }
}
