//! Merging per-node event buffers into one machine-wide timeline, plus
//! the derived views: summary tables and the wait graph.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{EventKind, Hook, TraceEvent, NO_REGION};

/// One node's drained event buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    /// The emitting node's rank.
    pub rank: usize,
    /// Events lost to ring overflow on this node.
    pub dropped: u64,
    /// The surviving events, in emission order (virtual-time monotone:
    /// a node's clock never goes backwards).
    pub events: Vec<TraceEvent>,
}

/// The merged trace of a whole run.
#[derive(Debug, Clone, Default)]
pub struct MachineTrace {
    /// Per-node buffers, indexed by rank.
    pub nodes: Vec<NodeTrace>,
}

/// A node still blocked when its trace ended, and what it was stuck on.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedWait {
    /// The stuck node.
    pub rank: usize,
    /// The wait description passed to the poll loop.
    pub what: String,
    /// Virtual time at which the wait began.
    pub since: u64,
    /// The innermost hook still open around the wait, if any.
    pub hook: Option<&'static str>,
    /// The region that hook targeted, if any.
    pub region: Option<u64>,
    /// The protocol that hook dispatched to, if any.
    pub proto: Option<&'static str>,
}

/// Per-(protocol, hook) aggregate in a [`TraceSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct HookRow {
    /// Protocol name the hook dispatched to.
    pub proto: &'static str,
    /// Hook label (the opcode name for `handle` spans).
    pub hook: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Total virtual time inside the span (inclusive of nesting), ns.
    pub time_ns: u64,
}

/// Per-(from-protocol, to-protocol) switch aggregate in a
/// [`TraceSummary`]: how many adaptive protocol switches moved a space
/// between this ordered pair of protocols, across all nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchRow {
    /// Protocol switched away from.
    pub from: &'static str,
    /// Protocol switched to.
    pub to: &'static str,
    /// Number of switch commits over this pair.
    pub count: u64,
}

/// Per-message-tag aggregate in a [`TraceSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TagRow {
    /// The message tag.
    pub tag: &'static str,
    /// Wire envelopes filed under this tag. A coalesced batch counts
    /// once, under its *first* sub-message's tag, so per-tag wire counts
    /// are approximate when batches mix tags (the machine-wide total is
    /// exact).
    pub msgs: u64,
    /// Logical sends with this tag, counted from `Pack` events — exact
    /// and deterministic regardless of how coalescing grouped the
    /// messages into envelopes.
    pub logical: u64,
    /// Logical bytes (payload + one per-message header) for this tag,
    /// from `Pack` events; like `logical`, independent of the wire
    /// grouping.
    pub bytes: u64,
}

/// Aggregates derived from a merged trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Hook spans by (protocol, hook label), sorted by descending time.
    pub hooks: Vec<HookRow>,
    /// Sent messages by tag, sorted by descending bytes.
    pub tags: Vec<TagRow>,
    /// Adaptive protocol switches grouped per (from, to) protocol pair,
    /// sorted by descending count.
    pub switches: Vec<SwitchRow>,
    /// Total events across all nodes.
    pub events: u64,
    /// Total events dropped to ring overflow.
    pub dropped: u64,
    /// Access annotations absorbed by the per-region fast mask. These
    /// never open a hook span (that is the point of the fast path), so
    /// they cannot be derived from events — callers supply the count
    /// from the run's `OpCounters` via [`TraceSummary::with_fast_hits`].
    pub fast_hits: u64,
    /// Conformance violations recorded in the trace
    /// ([`EventKind::Violation`] events across all nodes).
    pub violations: u64,
}

impl MachineTrace {
    /// Total events across all nodes.
    pub fn event_count(&self) -> usize {
        self.nodes.iter().map(|n| n.events.len()).sum()
    }

    /// Total `Send` events across all nodes — one per *wire* envelope
    /// (equals the machine's wire-messages counter when no ring
    /// overflowed).
    pub fn send_count(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| &n.events)
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .count() as u64
    }

    /// Total logical messages carried by all `Send` events (sum of each
    /// wire envelope's sub-message count).
    pub fn logical_send_count(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| &n.events)
            .filter_map(|e| match e.kind {
                EventKind::Send { subs, .. } => Some(subs as u64),
                _ => None,
            })
            .sum()
    }

    /// The machine-wide timeline: every event paired with its rank,
    /// ordered by virtual time. The merge is stable per node (a node's
    /// own order is preserved) and breaks cross-node ties by rank — the
    /// only sound rule, since equal virtual stamps on different nodes
    /// are causally unordered.
    pub fn merged(&self) -> Vec<(usize, &TraceEvent)> {
        let mut all: Vec<(usize, usize, &TraceEvent)> = Vec::with_capacity(self.event_count());
        for n in &self.nodes {
            all.extend(n.events.iter().enumerate().map(|(i, e)| (n.rank, i, e)));
        }
        all.sort_by_key(|(rank, i, e)| (e.t, *rank, *i));
        all.into_iter().map(|(rank, _, e)| (rank, e)).collect()
    }

    /// Reduce the trace to per-protocol hook and per-tag message tables.
    pub fn summary(&self) -> TraceSummary {
        let mut hooks: HashMap<(&'static str, &'static str), (u64, u64)> = HashMap::new();
        let mut tags: HashMap<&'static str, (u64, u64, u64)> = HashMap::new();
        let mut switches: HashMap<(&'static str, &'static str), u64> = HashMap::new();
        let mut dropped = 0;
        let mut violations = 0;
        for n in &self.nodes {
            dropped += n.dropped;
            // Open spans per node: (hook, proto, label, enter time).
            let mut open: Vec<(Hook, &'static str, &'static str, u64)> = Vec::new();
            for e in &n.events {
                match &e.kind {
                    EventKind::Send { tag, .. } => {
                        tags.entry(tag).or_insert((0, 0, 0)).0 += 1;
                    }
                    EventKind::Pack { tag, bytes, .. } => {
                        let row = tags.entry(tag).or_insert((0, 0, 0));
                        row.1 += 1;
                        row.2 += *bytes as u64;
                    }
                    EventKind::HookEnter { hook, proto, detail, .. } => {
                        let label = if detail.is_empty() { hook.name() } else { *detail };
                        open.push((*hook, proto, label, e.t));
                    }
                    EventKind::HookExit { hook, .. } => {
                        // Ring overflow can orphan an exit; skip unmatched.
                        if let Some(pos) = open.iter().rposition(|(h, ..)| h == hook) {
                            let (_, proto, label, t0) = open.remove(pos);
                            let row = hooks.entry((proto, label)).or_insert((0, 0));
                            row.0 += 1;
                            row.1 += e.t.saturating_sub(t0);
                        }
                    }
                    EventKind::Switch { from, to, .. } => {
                        *switches.entry((from, to)).or_insert(0) += 1;
                    }
                    EventKind::Violation { .. } => violations += 1,
                    _ => {}
                }
            }
        }
        let mut hooks: Vec<HookRow> = hooks
            .into_iter()
            .map(|((proto, hook), (count, time_ns))| HookRow { proto, hook, count, time_ns })
            .collect();
        hooks.sort_by(|a, b| b.time_ns.cmp(&a.time_ns).then(a.hook.cmp(b.hook)));
        let mut tags: Vec<TagRow> = tags
            .into_iter()
            .map(|(tag, (msgs, logical, bytes))| TagRow { tag, msgs, logical, bytes })
            .collect();
        tags.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.tag.cmp(b.tag)));
        let mut switches: Vec<SwitchRow> =
            switches.into_iter().map(|((from, to), count)| SwitchRow { from, to, count }).collect();
        switches
            .sort_by(|a, b| b.count.cmp(&a.count).then(a.from.cmp(b.from)).then(a.to.cmp(b.to)));
        TraceSummary {
            hooks,
            tags,
            switches,
            events: self.event_count() as u64,
            dropped,
            fast_hits: 0,
            violations,
        }
    }

    /// Nodes whose trace ends inside a poll loop, with the hook and
    /// region they were stuck on — the wait-graph view that turns a
    /// wedged or crashed run into a diagnosis.
    pub fn wait_graph(&self) -> Vec<BlockedWait> {
        let mut out = Vec::new();
        for n in &self.nodes {
            let mut blocks: Vec<(&str, u64)> = Vec::new();
            let mut hooks: Vec<(&'static str, u64, &'static str)> = Vec::new();
            for e in &n.events {
                match &e.kind {
                    EventKind::Block { what } => blocks.push((what, e.t)),
                    EventKind::Unblock { what } => {
                        if let Some(pos) = blocks.iter().rposition(|(w, _)| *w == &**what) {
                            blocks.remove(pos);
                        }
                    }
                    EventKind::HookEnter { hook, region, proto, .. } => {
                        hooks.push((hook.name(), *region, proto));
                    }
                    EventKind::HookExit { .. } => {
                        hooks.pop();
                    }
                    _ => {}
                }
            }
            if let Some((what, since)) = blocks.last() {
                let inner = hooks.last();
                out.push(BlockedWait {
                    rank: n.rank,
                    what: what.to_string(),
                    since: *since,
                    hook: inner.map(|(h, _, _)| *h),
                    region: inner.and_then(|(_, r, _)| (*r != NO_REGION).then_some(*r)),
                    proto: inner.map(|(_, _, p)| *p),
                });
            }
        }
        out
    }

    /// Human-readable wait-graph dump (empty string when nothing is
    /// blocked at trace end).
    pub fn wait_graph_report(&self) -> String {
        let blocked = self.wait_graph();
        if blocked.is_empty() {
            return String::new();
        }
        let mut s = String::from("blocked at end of trace:\n");
        for b in &blocked {
            let _ = write!(s, "  node {:<3} waiting for: {} (since {} ns", b.rank, b.what, b.since);
            if let Some(h) = b.hook {
                let _ = write!(s, ", inside {}", h);
                if let Some(p) = b.proto {
                    let _ = write!(s, " of protocol {p}");
                }
                if let Some(r) = b.region {
                    let _ = write!(s, " on region r{}.{}", r >> 48, r & ((1 << 48) - 1));
                }
            }
            s.push_str(")\n");
        }
        s
    }
}

impl TraceSummary {
    /// Attach the run's fast-hit count (from `OpCounters`) so the render
    /// shows how many annotations the fast mask absorbed.
    pub fn with_fast_hits(mut self, hits: u64) -> Self {
        self.fast_hits = hits;
        self
    }

    /// Render the summary as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "trace: {} events ({} dropped)", self.events, self.dropped);
        if self.fast_hits > 0 {
            let _ = writeln!(s, "fast-path hits: {} (absorbed before dispatch)", self.fast_hits);
        }
        if self.violations > 0 {
            let _ = writeln!(s, "CONFORMANCE VIOLATIONS: {}", self.violations);
        }
        if !self.hooks.is_empty() {
            let _ =
                writeln!(s, "{:<16} {:<14} {:>10} {:>14}", "protocol", "hook", "count", "time(ns)");
            for r in &self.hooks {
                let _ =
                    writeln!(s, "{:<16} {:<14} {:>10} {:>14}", r.proto, r.hook, r.count, r.time_ns);
            }
        }
        if !self.switches.is_empty() {
            let _ = writeln!(s, "{:<16} {:<16} {:>10}", "switch from", "to", "count");
            for r in &self.switches {
                let _ = writeln!(s, "{:<16} {:<16} {:>10}", r.from, r.to, r.count);
            }
        }
        if !self.tags.is_empty() {
            let _ = writeln!(
                s,
                "{:<16} {:>10} {:>10} {:>14}",
                "message tag", "wire", "logical", "bytes"
            );
            let (mut wire, mut logical) = (0u64, 0u64);
            for r in &self.tags {
                let _ =
                    writeln!(s, "{:<16} {:>10} {:>10} {:>14}", r.tag, r.msgs, r.logical, r.bytes);
                wire += r.msgs;
                logical += r.logical;
            }
            let _ = writeln!(
                s,
                "messages: {logical} logical in {wire} wire envelopes{}",
                if logical > wire { " (coalesced)" } else { "" }
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind as K;

    fn ev(t: u64, kind: K) -> TraceEvent {
        TraceEvent { t, kind }
    }

    fn enter(hook: Hook, region: u64, proto: &'static str, detail: &'static str) -> K {
        K::HookEnter { hook, region, space: 0, proto, detail }
    }

    fn exit(hook: Hook, region: u64, proto: &'static str, detail: &'static str) -> K {
        K::HookExit { hook, region, space: 0, proto, detail }
    }

    #[test]
    fn merge_orders_by_time_then_rank() {
        let t = MachineTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    dropped: 0,
                    events: vec![ev(5, K::Block { what: "a".into() })],
                },
                NodeTrace {
                    rank: 1,
                    dropped: 0,
                    events: vec![
                        ev(2, K::Block { what: "b".into() }),
                        ev(5, K::Unblock { what: "b".into() }),
                    ],
                },
            ],
        };
        let order: Vec<(usize, u64)> = t.merged().iter().map(|(r, e)| (*r, e.t)).collect();
        assert_eq!(order, vec![(1, 2), (0, 5), (1, 5)]);
    }

    #[test]
    fn summary_counts_hooks_and_tags() {
        let t = MachineTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                dropped: 2,
                events: vec![
                    ev(0, enter(Hook::StartRead, 7, "sc", "")),
                    // Three logical sends buffered, then flushed as one
                    // wire envelope...
                    ev(2, K::Pack { dst: 1, tag: "proto", bytes: 12 }),
                    ev(4, K::Pack { dst: 1, tag: "proto", bytes: 12 }),
                    ev(6, K::Pack { dst: 1, tag: "proto", bytes: 12 }),
                    ev(10, K::Send { dst: 1, tag: "proto", bytes: 32, subs: 3 }),
                    ev(30, exit(Hook::StartRead, 7, "sc", "")),
                    ev(31, enter(Hook::Handle, 7, "sc", "RREQ")),
                    ev(40, exit(Hook::Handle, 7, "sc", "RREQ")),
                    // ...and one uncoalesced send (its Pack and Send pair
                    // at the same instant).
                    ev(41, K::Pack { dst: 1, tag: "proto", bytes: 8 }),
                    ev(41, K::Send { dst: 1, tag: "proto", bytes: 8, subs: 1 }),
                ],
            }],
        };
        let s = t.summary();
        assert_eq!(s.dropped, 2);
        assert_eq!(s.events, 10);
        let sr = s.hooks.iter().find(|r| r.hook == "start_read").unwrap();
        assert_eq!((sr.count, sr.time_ns, sr.proto), (1, 30, "sc"));
        let h = s.hooks.iter().find(|r| r.hook == "RREQ").unwrap();
        assert_eq!((h.count, h.time_ns), (1, 9));
        assert_eq!(s.tags, vec![TagRow { tag: "proto", msgs: 2, logical: 4, bytes: 44 }]);
        assert_eq!(t.send_count(), 2);
        assert_eq!(t.logical_send_count(), 4);
        let rendered = s.render();
        assert!(rendered.contains("RREQ"));
        assert!(rendered.contains("4 logical in 2 wire envelopes (coalesced)"), "{rendered}");
    }

    #[test]
    fn summary_groups_switches_per_protocol_pair() {
        let sw = |from, to, epoch| K::Switch { region: NO_REGION, space: 1, from, to, epoch };
        let t = MachineTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    dropped: 0,
                    events: vec![
                        ev(10, sw("SC", "StaticUpdate", 1)),
                        ev(20, sw("StaticUpdate", "SC", 2)),
                        ev(30, sw("SC", "StaticUpdate", 3)),
                    ],
                },
                NodeTrace {
                    rank: 1,
                    dropped: 0,
                    events: vec![ev(12, sw("SC", "StaticUpdate", 1))],
                },
            ],
        };
        let s = t.summary();
        assert_eq!(
            s.switches,
            vec![
                SwitchRow { from: "SC", to: "StaticUpdate", count: 3 },
                SwitchRow { from: "StaticUpdate", to: "SC", count: 1 },
            ]
        );
        let rendered = s.render();
        assert!(rendered.contains("switch from"), "{rendered}");
        assert!(rendered.contains("StaticUpdate"), "{rendered}");
    }

    #[test]
    fn summary_counts_and_renders_violations() {
        let t = MachineTrace {
            nodes: vec![NodeTrace {
                rank: 0,
                dropped: 0,
                events: vec![
                    ev(5, K::Violation { region: 7, what: "write outside a section".into() }),
                    ev(9, K::Violation { region: 7, what: "write outside a section".into() }),
                ],
            }],
        };
        let s = t.summary();
        assert_eq!(s.violations, 2);
        assert!(s.render().contains("CONFORMANCE VIOLATIONS: 2"), "{}", s.render());
        assert_eq!(MachineTrace::default().summary().violations, 0);
    }

    #[test]
    fn wait_graph_reports_open_blocks_with_context() {
        let t = MachineTrace {
            nodes: vec![
                NodeTrace {
                    rank: 0,
                    dropped: 0,
                    events: vec![
                        ev(0, K::Block { what: "x".into() }),
                        ev(9, K::Unblock { what: "x".into() }),
                    ],
                },
                NodeTrace {
                    rank: 1,
                    dropped: 0,
                    events: vec![
                        ev(1, enter(Hook::StartWrite, (2u64 << 48) | 4, "mig", "")),
                        ev(3, K::Block { what: "write grant".into() }),
                    ],
                },
            ],
        };
        let w = t.wait_graph();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].rank, 1);
        assert_eq!(w[0].what, "write grant");
        assert_eq!(w[0].hook, Some("start_write"));
        assert_eq!(w[0].proto, Some("mig"));
        assert_eq!(w[0].region, Some((2u64 << 48) | 4));
        let report = t.wait_graph_report();
        assert!(report.contains("node 1"), "{report}");
        assert!(report.contains("r2.4"), "{report}");
        assert!(report.contains("start_write"), "{report}");
    }
}
