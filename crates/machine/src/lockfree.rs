//! Lock-free published values with deferred reclamation.
//!
//! [`LfCell`] is a write-rarely / read-often cell shared by every node of
//! a machine: readers never take a lock (two atomic counter bumps and one
//! pointer load), writers swap a freshly-allocated node in and retire the
//! old value onto a chain that is freed only once no reader can possibly
//! hold it. It exists for machine-wide shared state on paths every node
//! polls — the failure diagnostics checked inside every blocked wait —
//! where a `Mutex` would put a 4096-way contention point into the idle
//! loop.
//!
//! The reclamation scheme is the counter-guarded retire chain of the
//! classic `AtomicCell` pattern (a degenerate epoch scheme with a single
//! global epoch): a reader advertises itself by incrementing `readers`
//! *before* loading the head pointer, so when a reclaimer observes
//! `readers == 0` no live reference to any retired node can exist — any
//! reader that arrives later starts from the *current* head, which is
//! never freed. Reclaim itself is serialized by a try-lock flag and
//! detaches the retire chain with an atomic swap, so two concurrent
//! reclaimers cannot free the same node twice. Values are handed out as
//! `Arc<T>` clones, which keeps a loaded value alive independently of the
//! cell's own churn.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

struct LfNode<T> {
    value: Arc<T>,
    /// The previously-published node (retire chain), written once right
    /// after this node is swapped in; null until then and for the oldest
    /// node.
    next: AtomicPtr<LfNode<T>>,
}

/// A lock-free cell holding an `Arc<T>`, safe to read from any thread.
pub struct LfCell<T> {
    head: AtomicPtr<LfNode<T>>,
    readers: AtomicUsize,
    reclaiming: AtomicBool,
}

// The cell hands out Arc<T> clones across threads; T itself is only ever
// read through shared references.
unsafe impl<T: Send + Sync> Send for LfCell<T> {}
unsafe impl<T: Send + Sync> Sync for LfCell<T> {}

impl<T> LfCell<T> {
    /// A cell initially publishing `value`.
    pub fn new(value: T) -> Self {
        let node = Box::into_raw(Box::new(LfNode {
            value: Arc::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        LfCell {
            head: AtomicPtr::new(node),
            readers: AtomicUsize::new(0),
            reclaiming: AtomicBool::new(false),
        }
    }

    /// Read the current value (an `Arc` clone; never blocks).
    pub fn load(&self) -> Arc<T> {
        // Advertise *before* loading the pointer: any reclaimer that
        // observes `readers == 0` after this point sees our increment, so
        // every node we can reach from `head` stays allocated while we
        // hold the guard.
        self.readers.fetch_add(1, Ordering::SeqCst);
        let p = self.head.load(Ordering::SeqCst);
        // SAFETY: `p` was the published head while our reader guard was
        // held; heads are only freed through the retire chain, which is
        // never walked while `readers > 0` (and the current head is never
        // on it).
        let value = unsafe { (*p).value.clone() };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        self.try_reclaim();
        value
    }

    /// Publish a new value. Readers racing this call observe either the
    /// old or the new value, never a torn one.
    pub fn store(&self, value: T) {
        let node = Box::into_raw(Box::new(LfNode {
            value: Arc::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let old = self.head.swap(node, Ordering::SeqCst);
        // Chain the dethroned head for deferred reclamation. Between the
        // swap and this store the chain below `old` is temporarily
        // unreachable from `node`; a reclaimer running in that window
        // simply frees nothing (its detach sees null), which is safe.
        // SAFETY: `node` is ours until published fully; `old` stays
        // allocated (it is on no free list yet).
        unsafe { (*node).next.store(old, Ordering::SeqCst) };
        self.try_reclaim();
    }

    /// Free retired nodes if no reader is active. Serialized by a
    /// try-lock so concurrent reclaimers cannot double-free; skipping on
    /// contention is fine (someone else is already sweeping, or the next
    /// operation will).
    fn try_reclaim(&self) {
        if self.readers.load(Ordering::SeqCst) != 0 {
            return;
        }
        if self
            .reclaiming
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        if self.readers.load(Ordering::SeqCst) == 0 {
            // No reader holds any pointer (readers increment before they
            // load `head`, so `readers == 0` means every outstanding load
            // has completed). Readers arriving from here on start at the
            // current head, which we never free — only the chain *behind*
            // it. Detaching with a swap makes this sweep the exclusive
            // owner of the chain even if `head` moves concurrently.
            let h = self.head.load(Ordering::SeqCst);
            // SAFETY: the current head is always allocated.
            let mut p = unsafe { (*h).next.swap(ptr::null_mut(), Ordering::SeqCst) };
            while !p.is_null() {
                // SAFETY: nodes on a detached chain are unreachable from
                // `head` and owned solely by this sweep.
                let node = unsafe { Box::from_raw(p) };
                p = node.next.load(Ordering::SeqCst);
            }
        }
        self.reclaiming.store(false, Ordering::SeqCst);
    }
}

impl<T> Drop for LfCell<T> {
    fn drop(&mut self) {
        // Exclusive access: free the head and whatever retire chain the
        // last sweep left behind.
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: `&mut self` guarantees no readers or writers.
            let node = unsafe { Box::from_raw(p) };
            p = node.next.load(Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_latest_store() {
        let c = LfCell::new(1u64);
        assert_eq!(*c.load(), 1);
        c.store(2);
        assert_eq!(*c.load(), 2);
        for i in 3..100 {
            c.store(i);
        }
        assert_eq!(*c.load(), 99);
    }

    #[test]
    fn loaded_arc_outlives_replacement() {
        let c = LfCell::new(String::from("first"));
        let held = c.load();
        for i in 0..50 {
            c.store(format!("gen {i}"));
        }
        assert_eq!(*held, "first", "an Arc handed out survives any churn");
        assert_eq!(*c.load(), "gen 49");
    }

    #[test]
    fn concurrent_readers_and_writers_agree_on_published_values() {
        let c = Arc::new(LfCell::new(0u64));
        let top = 2_000u64;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..20_000 {
                        let v = *c.load();
                        // Published values are monotone per writer program
                        // order; with one writer they are globally monotone.
                        assert!(v >= last, "time ran backwards: {v} < {last}");
                        last = v;
                    }
                });
            }
            scope.spawn({
                let c = Arc::clone(&c);
                move || {
                    for i in 1..=top {
                        c.store(i);
                    }
                }
            });
        });
        assert_eq!(*c.load(), top);
    }

    #[test]
    fn drop_frees_retired_chain_without_reclaim() {
        // Store repeatedly while a reader guard effect is simulated by
        // never calling load (so no reclaim runs from the read side);
        // Drop must still free everything (checked under sanitizers; here
        // it must at least not crash).
        let c = LfCell::new(vec![0u8; 64]);
        for i in 0..256 {
            c.store(vec![i as u8; 64]);
        }
        drop(c);
    }
}
