//! The default protocol: sequentially-consistent, home-based invalidation.
//!
//! This is the CRL-class MSI protocol the paper's default space runs
//! ("a sequentially consistent invalidation-based protocol", §3.1), and the
//! protocol both systems run in the Figure 7a comparison.
//!
//! Directory state lives at the region's home: a sharer bitmask and an
//! exclusive `owner` (or -1, meaning the home master copy is valid). At
//! most one *round* (recall or invalidation sweep) is in flight per region;
//! requests that arrive mid-round are parked in the entry's blocked queue
//! and replayed when the region quiesces. Invalidations and recalls that
//! arrive while the target node has an access section open are deferred to
//! the matching `end_*` (a region in active use is never yanked mid-read,
//! which is how region-based DSMs reconcile handler asynchrony with
//! section semantics).

use ace_core::{AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry};

use crate::auxbits::{self, BUSY, INV_PENDING, RECALL_PENDING, WANTED};
use crate::states::*;

/// Wire opcodes (interpreted only by this protocol).
pub mod op {
    /// Remote → home: request a read (shared) copy.
    pub const RREQ: u16 = 1;
    /// Remote → home: request an exclusive copy.
    pub const WREQ: u16 = 2;
    /// Home → remote: data grant, shared.
    pub const DATA_S: u16 = 3;
    /// Home → remote: data grant, exclusive.
    pub const DATA_X: u16 = 4;
    /// Home → sharer: invalidate your copy.
    pub const INV: u16 = 5;
    /// Sharer → home: invalidation acknowledged.
    pub const INV_ACK: u16 = 6;
    /// Home → owner: return the exclusive copy.
    pub const RECALL: u16 = 7;
    /// Owner → home: exclusive data coming home (recall response).
    pub const WB_DATA: u16 = 8;
    /// Sharer → home: dropping my shared copy (protocol flush).
    pub const FLUSH_S: u16 = 9;
    /// Owner → home: flushing my exclusive copy home (protocol flush).
    pub const FLUSH_X: u16 = 10;
    /// Home → remote: flush acknowledged.
    pub const FLUSH_ACK: u16 = 11;

    /// Trace label for an opcode.
    pub fn name(op: u16) -> &'static str {
        match op {
            RREQ => "rreq",
            WREQ => "wreq",
            DATA_S => "data_s",
            DATA_X => "data_x",
            INV => "inv",
            INV_ACK => "inv_ack",
            RECALL => "recall",
            WB_DATA => "wb_data",
            FLUSH_S => "flush_s",
            FLUSH_X => "flush_x",
            FLUSH_ACK => "flush_ack",
            _ => "op",
        }
    }
}

/// The sequentially-consistent invalidation protocol.
#[derive(Default)]
pub struct SeqInvalidate;

impl SeqInvalidate {
    /// Boxed constructor for registry use.
    pub fn new() -> Self {
        SeqInvalidate
    }

    fn set_bit(e: &RegionEntry, bit: u64) {
        e.aux.set(e.aux.get() | bit);
    }

    fn clear_bit(e: &RegionEntry, bit: u64) {
        e.aux.set(e.aux.get() & !bit);
    }

    fn has_bit(e: &RegionEntry, bit: u64) -> bool {
        e.aux.get() & bit != 0
    }

    /// Home side: replay requests parked during a round.
    fn drain_blocked(&self, rt: &AceRt, e: &RegionEntry) {
        let parked: Vec<(u16, u16, u64)> = e.blocked.borrow_mut().drain(..).collect();
        for (from, opc, arg) in parked {
            self.handle(
                rt,
                e,
                ProtoMsg { region: e.id, op: opc, from, arg, data: None },
                from as usize,
            );
        }
    }

    /// Home side: start an invalidation sweep of every sharer except
    /// `except`. Returns the number of invalidations outstanding.
    ///
    /// The sweep is a pure fan-out with no intervening wait: every INV is
    /// handed to the transport back to back, so under coalescing the whole
    /// wave sits in the per-destination buffers and departs together at the
    /// acquire's single `"sharer invalidations"` wait (or the WREQ
    /// handler's return to the poll loop). One write acquire sweeps one
    /// region, so each sharer receives exactly one INV — distinct
    /// destinations bound the envelope merging here — but any other
    /// pending traffic to a sharer (a DATA grant from a drained queue, a
    /// concurrent sweep of a second region with an overlapping sharer set)
    /// rides the same wire envelope. Contrast `dyn_update::push_round`,
    /// whose cross-region UPDs to a common sharer batch heavily.
    fn sweep_sharers(&self, rt: &AceRt, e: &RegionEntry, except: Option<usize>) -> u32 {
        let mut n = 0;
        for s in e.sharer_ranks() {
            if Some(s) == except {
                continue;
            }
            rt.send_proto(s, e.id, op::INV, 0, None);
            n += 1;
        }
        if let Some(x) = except {
            if e.is_sharer(x) {
                e.drop_sharer(x);
            }
        }
        e.pending.set(e.pending.get() + n);
        n
    }

    /// Home side: grant an exclusive copy to `to`.
    fn grant_exclusive(&self, rt: &AceRt, e: &RegionEntry, to: usize) {
        e.sharers.clear();
        e.owner.set(to as i32);
        rt.send_proto(to, e.id, op::DATA_X, 0, Some(e.clone_data()));
    }

    /// Home side of `start_read`/`start_write`: wait until the master copy
    /// is valid at home (recalling an exclusive owner if necessary) and no
    /// directory round is in flight.
    fn home_acquire_master(&self, rt: &AceRt, e: &RegionEntry) {
        loop {
            if e.owner.get() == -1 && !Self::has_bit(e, BUSY) {
                return;
            }
            if e.owner.get() != -1 && !Self::has_bit(e, BUSY) {
                Self::set_bit(e, BUSY);
                rt.send_proto(e.owner.get() as usize, e.id, op::RECALL, 0, None);
            }
            rt.wait("home master recall", || !Self::has_bit(e, BUSY));
        }
    }

    /// Remote side: honour a deferred or immediate invalidation.
    fn do_invalidate(&self, rt: &AceRt, e: &RegionEntry) {
        e.st.set(R_INVALID);
        rt.send_proto(e.id.home(), e.id, op::INV_ACK, 0, None);
    }

    /// Remote side: honour a deferred or immediate recall.
    fn do_recall(&self, rt: &AceRt, e: &RegionEntry) {
        e.st.set(R_INVALID);
        rt.send_proto(e.id.home(), e.id, op::WB_DATA, 0, Some(e.clone_data()));
    }

    /// Recompute the entry's fast mask from its current state. Called at
    /// the end of every hook and handler, so the mask is always a pure
    /// function of directory/cache state. Invariant: a set bit means the
    /// corresponding hook, run right now, would send nothing and mutate
    /// nothing — so the runtime may skip it (CRL's in-cache fast path).
    fn refresh_fast(&self, rt: &AceRt, e: &RegionEntry) {
        let mut fast = Actions::empty();
        if e.is_home_of(rt.rank()) {
            // Home start hooks are no-ops while the master is valid here
            // and no directory round is in flight; start_write further
            // needs an empty sharer list (no invalidation sweep).
            if e.owner.get() == -1 && !Self::has_bit(e, BUSY) {
                fast = fast.union(Actions::START_READ);
                if e.sharers.is_empty() {
                    fast = fast.union(Actions::START_WRITE);
                }
            }
            // Home end hooks only replay parked requests.
            if e.blocked.borrow().is_empty() {
                fast = fast.union(Actions::END_READ).union(Actions::END_WRITE);
            }
        } else {
            // Remote start hooks hit while a valid copy is cached.
            match e.st.get() {
                R_SHARED => fast = fast.union(Actions::START_READ),
                R_EXCL => fast = fast.union(Actions::START_READ).union(Actions::START_WRITE),
                _ => {}
            }
            // Remote end hooks only honour deferred directory actions.
            if !Self::has_bit(e, INV_PENDING) && !Self::has_bit(e, RECALL_PENDING) {
                fast = fast.union(Actions::END_READ).union(Actions::END_WRITE);
            }
        }
        e.fast.set(fast);
    }
}

impl Protocol for SeqInvalidate {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn op_name(&self, op: u16) -> &'static str {
        op::name(op)
    }

    // Sequential consistency forbids reordering protocol calls (§4.2).
    fn optimizable(&self) -> bool {
        false
    }

    // Sequential consistency: one writer, no concurrent readers during a
    // write (stated explicitly, though it matches the trait default —
    // this is the protocol's declared contract, not an omission).
    fn grants(&self) -> GrantSet {
        GrantSet::exclusive()
    }

    fn on_create(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn on_map(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn adopt(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn start_read(&self, rt: &AceRt, e: &RegionEntry) {
        self.slow_start_read(rt, e);
        self.refresh_fast(rt, e);
    }

    fn end_read(&self, rt: &AceRt, e: &RegionEntry) {
        self.slow_end_read(rt, e);
        self.refresh_fast(rt, e);
    }

    fn start_write(&self, rt: &AceRt, e: &RegionEntry) {
        self.slow_start_write(rt, e);
        self.refresh_fast(rt, e);
    }

    fn end_write(&self, rt: &AceRt, e: &RegionEntry) {
        // Exclusive copies are retained until recalled; only honour
        // deferred directory actions.
        self.slow_end_read(rt, e);
        self.refresh_fast(rt, e);
    }

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, src: usize) {
        self.handle_msg(rt, e, msg, src);
        self.refresh_fast(rt, e);
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        self.slow_flush(rt, e);
        // Hand the region to the next protocol slow: the adopting
        // protocol declares its own fast states in `adopt`.
        e.fast.set(Actions::empty());
    }
}

/// Slow-path hook bodies (run when the fast mask misses) and the wire
/// handler, split from the trait impl so each public hook pairs its body
/// with a fast-mask refresh.
impl SeqInvalidate {
    fn slow_start_read(&self, rt: &AceRt, e: &RegionEntry) {
        if e.is_home_of(rt.rank()) {
            if e.owner.get() != -1 || Self::has_bit(e, BUSY) {
                rt.counters_mut(|c| c.read_misses += 1);
                self.home_acquire_master(rt, e);
            }
            return;
        }
        match e.st.get() {
            R_SHARED | R_EXCL => {}
            R_INVALID => {
                rt.counters_mut(|c| c.read_misses += 1);
                Self::set_bit(e, WANTED);
                e.st.set(R_WAIT_READ);
                rt.send_proto(e.id.home(), e.id, op::RREQ, 0, None);
                rt.wait("read copy", || e.st.get() == R_SHARED);
                Self::clear_bit(e, WANTED);
            }
            other => panic!("start_read in unexpected state {other}"),
        }
    }

    fn slow_end_read(&self, rt: &AceRt, e: &RegionEntry) {
        if e.is_home_of(rt.rank()) {
            if !e.busy() && !Self::has_bit(e, BUSY) && !e.blocked.borrow().is_empty() {
                self.drain_blocked(rt, e);
            }
            return;
        }
        if !e.busy() && Self::has_bit(e, INV_PENDING) {
            Self::clear_bit(e, INV_PENDING);
            self.do_invalidate(rt, e);
        }
        if !e.busy() && Self::has_bit(e, RECALL_PENDING) {
            Self::clear_bit(e, RECALL_PENDING);
            self.do_recall(rt, e);
        }
    }

    fn slow_start_write(&self, rt: &AceRt, e: &RegionEntry) {
        if e.is_home_of(rt.rank()) {
            if e.owner.get() != -1 || Self::has_bit(e, BUSY) || !e.sharers.is_empty() {
                rt.counters_mut(|c| c.write_misses += 1);
            }
            self.home_acquire_master(rt, e);
            if !e.sharers.is_empty() {
                Self::set_bit(e, BUSY);
                self.sweep_sharers(rt, e, None);
                rt.wait("sharer invalidations", || e.pending.get() == 0);
                Self::clear_bit(e, BUSY);
                // Parked requests stay parked until end_write drains them:
                // granting a copy now would let a reader see the master
                // mid-write-section.
            }
            return;
        }
        match e.st.get() {
            R_EXCL => {}
            R_SHARED | R_INVALID => {
                rt.counters_mut(|c| c.write_misses += 1);
                Self::set_bit(e, WANTED);
                e.st.set(R_WAIT_WRITE);
                rt.send_proto(e.id.home(), e.id, op::WREQ, 0, None);
                rt.wait("exclusive copy", || e.st.get() == R_EXCL);
                Self::clear_bit(e, WANTED);
            }
            other => panic!("start_write in unexpected state {other}"),
        }
    }

    fn handle_msg(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, _src: usize) {
        let from = msg.from as usize;
        match msg.op {
            // ---------------- home side ----------------
            op::RREQ => {
                if e.is_home_of(rt.rank()) && e.busy() {
                    // Home itself is inside an access section: defer, the
                    // matching end_* drains the queue.
                    e.blocked.borrow_mut().push_back((msg.from, msg.op, msg.arg));
                } else if Self::has_bit(e, BUSY) {
                    e.blocked.borrow_mut().push_back((msg.from, msg.op, msg.arg));
                } else if e.owner.get() != -1 {
                    Self::set_bit(e, BUSY);
                    rt.send_proto(e.owner.get() as usize, e.id, op::RECALL, 0, None);
                    e.blocked.borrow_mut().push_back((msg.from, msg.op, msg.arg));
                } else {
                    e.add_sharer(from);
                    rt.send_proto(from, e.id, op::DATA_S, 0, Some(e.clone_data()));
                }
            }
            op::WREQ => {
                if (e.is_home_of(rt.rank()) && e.busy()) || Self::has_bit(e, BUSY) {
                    e.blocked.borrow_mut().push_back((msg.from, msg.op, msg.arg));
                } else if e.owner.get() != -1 {
                    Self::set_bit(e, BUSY);
                    rt.send_proto(e.owner.get() as usize, e.id, op::RECALL, 0, None);
                    e.blocked.borrow_mut().push_back((msg.from, msg.op, msg.arg));
                } else if self.sweep_sharers(rt, e, Some(from)) > 0 {
                    Self::set_bit(e, BUSY);
                    e.aux.set(auxbits::with_grantee(e.aux.get(), from));
                } else {
                    self.grant_exclusive(rt, e, from);
                }
            }
            op::INV_ACK => {
                debug_assert!(e.pending.get() > 0);
                e.pending.set(e.pending.get() - 1);
                if e.pending.get() == 0 {
                    if let Some(g) = auxbits::grantee(e.aux.get()) {
                        e.aux.set(auxbits::clear_grantee(e.aux.get()));
                        self.grant_exclusive(rt, e, g);
                        Self::clear_bit(e, BUSY);
                        self.drain_blocked(rt, e);
                    }
                    // Otherwise a home-local start_write is waiting on
                    // pending == 0 and clears BUSY itself.
                }
            }
            op::WB_DATA | op::FLUSH_X => {
                e.install_shared(msg.data.expect("writeback carries data"));
                e.owner.set(-1);
                Self::clear_bit(e, BUSY);
                if msg.op == op::FLUSH_X {
                    rt.send_proto(from, e.id, op::FLUSH_ACK, 0, None);
                }
                self.drain_blocked(rt, e);
            }
            op::FLUSH_S => {
                e.drop_sharer(from);
                rt.send_proto(from, e.id, op::FLUSH_ACK, 0, None);
            }
            // ---------------- remote side ----------------
            op::DATA_S => {
                e.install_shared(msg.data.expect("grant carries data"));
                e.st.set(R_SHARED);
            }
            op::DATA_X => {
                e.install_shared(msg.data.expect("grant carries data"));
                e.st.set(R_EXCL);
            }
            op::INV => match e.st.get() {
                R_SHARED if e.busy() || Self::has_bit(e, WANTED) => Self::set_bit(e, INV_PENDING),
                R_SHARED => self.do_invalidate(rt, e),
                // We already requested an upgrade or dropped the copy; the
                // data here is dead either way — just acknowledge.
                R_WAIT_WRITE | R_INVALID | R_WAIT_READ => {
                    rt.send_proto(e.id.home(), e.id, op::INV_ACK, 0, None);
                }
                other => panic!("INV in unexpected state {other}"),
            },
            op::RECALL => match e.st.get() {
                R_EXCL if e.busy() || Self::has_bit(e, WANTED) => Self::set_bit(e, RECALL_PENDING),
                R_EXCL => self.do_recall(rt, e),
                other => panic!("RECALL in unexpected state {other}"),
            },
            op::FLUSH_ACK => {
                e.aux.set(e.aux.get() & !(1 << 8)); // flush-wait bit, see flush()
            }
            other => panic!("SC: unknown opcode {other}"),
        }
    }

    fn slow_flush(&self, rt: &AceRt, e: &RegionEntry) {
        const FLUSH_WAIT: u64 = 1 << 8;
        if e.is_home_of(rt.rank()) {
            // Remote copies flush themselves; the change_protocol barrier
            // orders their acks before the swap.
            return;
        }
        match e.st.get() {
            R_INVALID => {}
            R_SHARED => {
                e.aux.set(e.aux.get() | FLUSH_WAIT);
                e.st.set(R_INVALID);
                rt.send_proto(e.id.home(), e.id, op::FLUSH_S, 0, None);
                rt.wait("flush ack", || e.aux.get() & FLUSH_WAIT == 0);
            }
            R_EXCL => {
                e.aux.set(e.aux.get() | FLUSH_WAIT);
                let data = e.clone_data();
                e.st.set(R_INVALID);
                rt.send_proto(e.id.home(), e.id, op::FLUSH_X, 0, Some(data));
                rt.wait("flush ack", || e.aux.get() & FLUSH_WAIT == 0);
            }
            other => panic!("flush in transient state {other}"),
        }
        e.aux.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, CostModel, RegionId};
    use std::rc::Rc;

    fn sc() -> Rc<dyn Protocol> {
        Rc::new(SeqInvalidate)
    }

    /// Allocate one region at node 0 and share its id with everyone.
    fn shared_region(rt: &AceRt, words: usize) -> RegionId {
        let s = rt.new_space(sc());
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc_words(s, words).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        rid
    }

    #[test]
    fn remote_read_sees_home_write() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let rid = shared_region(rt, 2);
            if rt.rank() == 0 {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[1] = 77);
                rt.end_write(rid);
            }
            rt.machine_barrier();
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[1]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![77, 77]);
    }

    #[test]
    fn home_read_recalls_remote_exclusive() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            if rt.rank() == 1 {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] = 123);
                rt.end_write(rid);
            }
            rt.machine_barrier();
            if rt.rank() == 0 {
                rt.start_read(rid);
                let v = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                v
            } else {
                0
            }
        });
        assert_eq!(r.results[0], 123);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let r = run_ace(4, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            // Everyone reads (populating sharer list).
            rt.start_read(rid);
            rt.end_read(rid);
            rt.machine_barrier();
            // Node 3 writes.
            if rt.rank() == 3 {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] = 5);
                rt.end_write(rid);
            }
            rt.machine_barrier();
            // Everyone rereads; must see the write (their copies were
            // invalidated, so they refetch through home).
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![5; 4]);
    }

    #[test]
    fn invalidation_sweeps_are_equivalent_under_coalescing() {
        // SC's acquires are synchronous — every sweep is followed by a
        // wait that flushes it — so coalescing must not change what any
        // node observes, and logical traffic must be bit-identical between
        // the two transports.
        let run = |coalesce: bool| {
            run_ace(4, CostModel::free(), move |rt| {
                rt.set_coalescing(coalesce);
                let rid = shared_region(rt, 1);
                for round in 0..6u64 {
                    // Everyone reads (populating the sharer list), then one
                    // node's write acquire sweeps the other three.
                    rt.start_read(rid);
                    rt.end_read(rid);
                    rt.machine_barrier();
                    if rt.rank() as u64 == round % 4 {
                        rt.start_write(rid);
                        rt.with_mut::<u64, _>(rid, |d| d[0] = round + 1);
                        rt.end_write(rid);
                    }
                    rt.machine_barrier();
                }
                rt.start_read(rid);
                let v = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                v
            })
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.results, vec![6; 4]);
        assert_eq!(on.results, off.results);
        assert_eq!(on.stats.total_msgs(), off.stats.total_msgs(), "same logical traffic");
        assert_eq!(on.stats.total_bytes(), off.stats.total_bytes());
        assert!(on.stats.total_wire_msgs() <= on.stats.total_msgs());
        assert_eq!(off.stats.total_wire_msgs(), off.stats.total_msgs());
    }

    #[test]
    fn serial_increments_under_lock_sum_correctly() {
        const PER_NODE: u64 = 20;
        let n = 4;
        let r = run_ace(n, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            for _ in 0..PER_NODE {
                rt.lock(rid);
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] += 1);
                rt.end_write(rid);
                rt.unlock(rid);
            }
            rt.machine_barrier();
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![PER_NODE * n as u64; 4]);
    }

    #[test]
    fn ping_pong_writes_alternate() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            let mut last = 0;
            for round in 0..10u64 {
                // Writer alternates; the other node reads after a barrier.
                if round % 2 == rt.rank() as u64 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] = round + 1);
                    rt.end_write(rid);
                }
                rt.machine_barrier();
                rt.start_read(rid);
                last = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                assert_eq!(last, round + 1);
                rt.machine_barrier();
            }
            last
        });
        assert_eq!(r.results, vec![10, 10]);
    }

    #[test]
    fn flush_returns_exclusive_data_home() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let s = rt.new_space(sc());
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc_words(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            if rt.rank() == 1 {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] = 42);
                rt.end_write(rid);
            }
            rt.machine_barrier();
            // Changing to a fresh SC protocol forces the flush path.
            rt.change_protocol(s, sc());
            if rt.rank() == 0 {
                rt.start_read(rid);
                let v = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                v
            } else {
                42
            }
        });
        assert_eq!(r.results, vec![42, 42]);
    }

    #[test]
    fn concurrent_mixed_readers_writers_converge() {
        // A stress test: every node alternates reads and locked
        // read-modify-writes with no barriers in between; at the end the
        // counter equals the number of locked increments.
        const INCS: u64 = 15;
        let n = 6;
        let r = run_ace(n, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            for i in 0..INCS {
                rt.lock(rid);
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] += 1);
                rt.end_write(rid);
                rt.unlock(rid);
                if i % 3 == 0 {
                    rt.start_read(rid);
                    let v = rt.with::<u64, _>(rid, |d| d[0]);
                    rt.end_read(rid);
                    assert!(v > i);
                }
            }
            rt.machine_barrier();
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![INCS * n as u64; 6]);
    }
}
