//! Ablation benches: protocol-dispatch indirection cost and the
//! latency-sensitivity of the update-protocol advantage.

use ace_core::{run_ace, CostModel};
use ace_protocols::{NullProtocol, SeqInvalidate};
use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;

/// The dispatch-vs-direct gap the paper blames for BSC's tie (§5.1).
fn dispatch_indirection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/dispatch");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("dispatched", |b| {
        b.iter(|| {
            run_ace(1, CostModel::cm5(), |rt| {
                let s = rt.new_space(Rc::new(NullProtocol));
                let r = rt.gmalloc::<u64>(s, 1);
                rt.map(r);
                for _ in 0..1000 {
                    rt.start_read(r);
                    rt.end_read(r);
                }
                rt.node().now()
            })
            .sim_ns
        })
    });
    g.bench_function("direct", |b| {
        b.iter(|| {
            run_ace(1, CostModel::cm5(), |rt| {
                let s = rt.new_space(Rc::new(NullProtocol));
                let r = rt.gmalloc::<u64>(s, 1);
                rt.map(r);
                let p = NullProtocol;
                for _ in 0..1000 {
                    rt.start_read_direct(r, &p);
                    rt.end_read_direct(r, &p);
                }
                rt.node().now()
            })
            .sim_ns
        })
    });
    g.finish();
}

/// Coherence-miss round trip vs hit under the default protocol.
fn miss_vs_hit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/sc_miss");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("read_hit_1000", |b| {
        b.iter(|| {
            run_ace(1, CostModel::cm5(), |rt| {
                let s = rt.new_space(Rc::new(SeqInvalidate::new()));
                let r = rt.gmalloc::<u64>(s, 8);
                rt.map(r);
                for _ in 0..1000 {
                    rt.start_read(r);
                    rt.end_read(r);
                }
                rt.node().now()
            })
            .sim_ns
        })
    });
    g.bench_function("read_miss_invalidate_ping_pong_100", |b| {
        b.iter(|| {
            run_ace(2, CostModel::cm5(), |rt| {
                let s = rt.new_space(Rc::new(SeqInvalidate::new()));
                let r = if rt.rank() == 0 {
                    ace_core::RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 8).0])[0])
                } else {
                    ace_core::RegionId(rt.bcast(0, &[])[0])
                };
                rt.map(r);
                for i in 0..100u64 {
                    if i % 2 == rt.rank() as u64 {
                        rt.start_write(r);
                        rt.end_write(r);
                    }
                    rt.machine_barrier();
                    rt.start_read(r);
                    rt.end_read(r);
                    rt.machine_barrier();
                }
            })
            .sim_ns
        })
    });
    g.finish();
}

criterion_group!(benches, dispatch_indirection, miss_vs_hit);
criterion_main!(benches);
