//! The system configuration file (Figure 1's output).
//!
//! The paper registers protocols with a Tcl script that writes a "system
//! configuration file ... used by the Ace compiler to determine the
//! protocols available and the names of the functions used by the
//! protocol". We keep the same information and a textual form close to
//! Figure 1:
//!
//! ```text
//! protocol Update {
//!     StartRead  null
//!     EndRead    null
//!     StartWrite defined
//!     EndWrite   defined
//!     Barrier    defined
//!     Lock       default
//!     Unlock     default
//!     Optimizable yes
//! }
//! ```
//!
//! [`SystemConfig::builtin`] generates the file from the live protocol
//! registry, then parses it back — so the compiler consumes exactly the
//! declared metadata, as in the paper's toolchain.

use std::collections::HashMap;

use ace_core::Actions;
use ace_protocols::registry::{all_protocols, ProtocolInfo};
use ace_protocols::ProtoSpec;

/// Compiler-visible registration record for one protocol.
#[derive(Debug, Clone)]
pub struct ProtoEntry {
    /// The protocol selector.
    pub spec: ProtoSpec,
    /// Whether the compiler may move/merge its calls.
    pub optimizable: bool,
    /// Hooks declared null.
    pub null_actions: Actions,
}

/// The parsed system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    entries: HashMap<String, ProtoEntry>,
}

impl SystemConfig {
    /// Render a configuration file for the given registry entries.
    pub fn render(infos: &[ProtocolInfo]) -> String {
        let mut out = String::new();
        let point = |n: Actions, bit: Actions| if n.contains(bit) { "null" } else { "defined" };
        for info in infos {
            out.push_str(&format!("protocol {} {{\n", info.name));
            let n = info.null_actions;
            out.push_str(&format!("    Map        {}\n", point(n, Actions::MAP)));
            out.push_str(&format!("    Unmap      {}\n", point(n, Actions::UNMAP)));
            out.push_str(&format!("    StartRead  {}\n", point(n, Actions::START_READ)));
            out.push_str(&format!("    EndRead    {}\n", point(n, Actions::END_READ)));
            out.push_str(&format!("    StartWrite {}\n", point(n, Actions::START_WRITE)));
            out.push_str(&format!("    EndWrite   {}\n", point(n, Actions::END_WRITE)));
            out.push_str(&format!("    Barrier    {}\n", point(n, Actions::BARRIER)));
            out.push_str(&format!("    Lock       {}\n", point(n, Actions::LOCK)));
            out.push_str(&format!("    Unlock     {}\n", point(n, Actions::UNLOCK)));
            out.push_str(&format!(
                "    Optimizable {}\n",
                if info.optimizable { "yes" } else { "no" }
            ));
            out.push_str("}\n");
        }
        out
    }

    /// Parse a configuration file.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed lines or unknown protocol names.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = HashMap::new();
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        while let Some(line) = lines.next() {
            let Some(rest) = line.strip_prefix("protocol ") else {
                return Err(format!("expected 'protocol NAME {{', found '{line}'"));
            };
            let name = rest.trim_end_matches('{').trim().to_string();
            let spec = ProtoSpec::by_name(&name)
                .ok_or_else(|| format!("unknown protocol '{name}' in configuration"))?;
            let mut null_actions = Actions::empty();
            let mut optimizable = false;
            loop {
                let Some(body) = lines.next() else {
                    return Err(format!("unterminated protocol block for {name}"));
                };
                if body == "}" {
                    break;
                }
                let mut it = body.split_whitespace();
                let key = it.next().unwrap_or("");
                let val = it.next().unwrap_or("");
                let bit = match key {
                    "Map" => Some(Actions::MAP),
                    "Unmap" => Some(Actions::UNMAP),
                    "StartRead" => Some(Actions::START_READ),
                    "EndRead" => Some(Actions::END_READ),
                    "StartWrite" => Some(Actions::START_WRITE),
                    "EndWrite" => Some(Actions::END_WRITE),
                    "Barrier" => Some(Actions::BARRIER),
                    "Lock" => Some(Actions::LOCK),
                    "Unlock" => Some(Actions::UNLOCK),
                    "Optimizable" => {
                        optimizable = val == "yes";
                        None
                    }
                    other => return Err(format!("unknown point '{other}' in protocol {name}")),
                };
                if let Some(bit) = bit {
                    if val == "null" {
                        null_actions = null_actions.union(bit);
                    }
                }
            }
            entries.insert(name, ProtoEntry { spec, optimizable, null_actions });
        }
        Ok(SystemConfig { entries })
    }

    /// The configuration generated from the live registry — what the
    /// benchmarks compile against.
    pub fn builtin() -> Self {
        Self::parse(&Self::render(&all_protocols())).expect("builtin registry renders validly")
    }

    /// Look up a protocol by registered name.
    pub fn get(&self, name: &str) -> Option<&ProtoEntry> {
        self.entries.get(name)
    }

    /// Look up by spec.
    pub fn by_spec(&self, spec: ProtoSpec) -> Option<&ProtoEntry> {
        self.entries.values().find(|e| e.spec == spec)
    }

    /// Whether `spec` is registered optimizable.
    pub fn optimizable(&self, spec: ProtoSpec) -> bool {
        self.by_spec(spec).map(|e| e.optimizable).unwrap_or(false)
    }

    /// Null-action mask for `spec`.
    pub fn null_actions(&self, spec: ProtoSpec) -> Actions {
        self.by_spec(spec).map(|e| e.null_actions).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_round_trips() {
        let cfg = SystemConfig::builtin();
        assert!(!cfg.optimizable(ProtoSpec::Sc));
        assert!(cfg.optimizable(ProtoSpec::StaticUpdate));
        assert!(cfg.null_actions(ProtoSpec::StaticUpdate).contains(Actions::START_READ));
        assert!(cfg.get("SC").is_some());
        assert!(cfg.get("Nope").is_none());
    }

    #[test]
    fn parse_rejects_unknown_protocol() {
        assert!(SystemConfig::parse("protocol Bogus {\n}\n").is_err());
    }

    #[test]
    fn parse_rejects_unknown_point() {
        let r = SystemConfig::parse("protocol SC {\nFlurb null\n}\n");
        assert!(r.is_err());
    }

    #[test]
    fn figure1_style_entry() {
        let cfg = SystemConfig::parse(
            "protocol Update {\nStartRead null\nEndRead null\nOptimizable yes\n}\n",
        )
        .unwrap();
        let e = cfg.get("Update").unwrap();
        assert!(e.optimizable);
        assert!(e.null_actions.contains(Actions::START_READ));
        assert!(!e.null_actions.contains(Actions::END_WRITE));
    }
}
