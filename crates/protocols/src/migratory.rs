//! Migratory protocol: a single copy follows its accessors.
//!
//! For data that is read-modify-written by one processor at a time (the
//! classic "migratory" access pattern of Bennett et al., cited in §2.2),
//! acquiring exclusive ownership on *every* access — including reads —
//! halves the message count versus an invalidation protocol, which pays a
//! read miss followed by a separate upgrade.
//!
//! Implementation: the home node keeps the directory (`owner`, or -1 when
//! the master copy is home). Any access on a non-owner requests the single
//! copy through home, which recalls it from the current owner if needed.
//! The machinery reuses the SC protocol's round discipline: one round in
//! flight per region, later requests parked in the blocked queue.

use ace_core::{AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry};

use crate::auxbits::{BUSY, WANTED};
use crate::states::*;

/// Wire opcodes.
pub mod op {
    /// Remote → home: give me the (exclusive) copy.
    pub const MREQ: u16 = 1;
    /// Home → remote: the copy, with ownership.
    pub const MDATA: u16 = 2;
    /// Home → owner: send the copy home.
    pub const RECALL: u16 = 3;
    /// Owner → home: copy coming home.
    pub const WB: u16 = 4;
    /// Owner → home: flushing ownership home (protocol change).
    pub const FLUSH_X: u16 = 5;
    /// Home → remote: flush acknowledged.
    pub const FLUSH_ACK: u16 = 6;

    /// Trace label for an opcode.
    pub fn name(op: u16) -> &'static str {
        match op {
            MREQ => "mreq",
            MDATA => "mdata",
            RECALL => "recall",
            WB => "wb",
            FLUSH_X => "flush_x",
            FLUSH_ACK => "flush_ack",
            _ => "op",
        }
    }
}

const RECALL_PENDING: u64 = 1 << 2;
const FLUSH_WAIT: u64 = 1 << 8;

/// The migratory protocol.
#[derive(Default)]
pub struct Migratory;

impl Migratory {
    /// Constructor for registry use.
    pub fn new() -> Self {
        Migratory
    }

    fn acquire(&self, rt: &AceRt, e: &RegionEntry) {
        if e.is_home_of(rt.rank()) {
            loop {
                if e.owner.get() == -1 && e.aux.get() & BUSY == 0 {
                    return;
                }
                if e.owner.get() != -1 && e.aux.get() & BUSY == 0 {
                    e.aux.set(e.aux.get() | BUSY);
                    rt.send_proto(e.owner.get() as usize, e.id, op::RECALL, 0, None);
                }
                rt.wait("migratory recall", || e.aux.get() & BUSY == 0);
            }
        }
        if e.st.get() == R_EXCL {
            return;
        }
        rt.counters_mut(|c| c.read_misses += 1);
        e.aux.set(e.aux.get() | WANTED);
        e.st.set(R_WAIT_WRITE);
        rt.send_proto(e.id.home(), e.id, op::MREQ, 0, None);
        rt.wait("migratory copy", || e.st.get() == R_EXCL);
        e.aux.set(e.aux.get() & !WANTED);
    }

    fn drain_blocked(&self, rt: &AceRt, e: &RegionEntry) {
        let parked: Vec<(u16, u16, u64)> = e.blocked.borrow_mut().drain(..).collect();
        for (from, opc, arg) in parked {
            self.handle(
                rt,
                e,
                ProtoMsg { region: e.id, op: opc, from, arg, data: None },
                from as usize,
            );
        }
    }

    /// Recompute the entry's fast mask. Starts are no-ops when the copy
    /// is already where it needs to be: the master is quiescent at home,
    /// or this node holds it exclusively with no recall in flight. Ends
    /// are no-ops unless there is deferred work — parked requests to
    /// drain at home, a pending recall to honor remotely.
    fn refresh_fast(&self, rt: &AceRt, e: &RegionEntry) {
        let mut fast = Actions::empty();
        if e.is_home_of(rt.rank()) {
            if e.owner.get() == -1 && e.aux.get() & BUSY == 0 {
                fast = fast.union(Actions::START_READ).union(Actions::START_WRITE);
            }
            if e.blocked.borrow().is_empty() && e.aux.get() & BUSY == 0 {
                fast = fast.union(Actions::END_READ).union(Actions::END_WRITE);
            }
        } else {
            if e.st.get() == R_EXCL && e.aux.get() & RECALL_PENDING == 0 {
                fast = fast.union(Actions::START_READ).union(Actions::START_WRITE);
            }
            if e.aux.get() & RECALL_PENDING == 0 {
                fast = fast.union(Actions::END_READ).union(Actions::END_WRITE);
            }
        }
        e.fast.set(fast);
    }
}

impl Protocol for Migratory {
    fn name(&self) -> &'static str {
        "Migratory"
    }

    fn op_name(&self, op: u16) -> &'static str {
        op::name(op)
    }

    fn optimizable(&self) -> bool {
        false // read-modify-write sections must stay where they are
    }

    fn null_actions(&self) -> Actions {
        Actions::END_READ.union(Actions::END_WRITE).union(Actions::UNMAP)
    }

    // The region lives wholly on whichever node holds it: sections are
    // exclusive by construction (stated explicitly, though it matches
    // the trait default, because the checker treats this as the
    // protocol's declared contract).
    fn grants(&self) -> GrantSet {
        GrantSet::exclusive()
    }

    fn on_create(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn on_map(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn start_read(&self, rt: &AceRt, e: &RegionEntry) {
        self.acquire(rt, e);
        self.refresh_fast(rt, e);
    }

    fn end_read(&self, rt: &AceRt, e: &RegionEntry) {
        if e.is_home_of(rt.rank()) {
            if !e.busy() && e.aux.get() & BUSY == 0 && !e.blocked.borrow().is_empty() {
                self.drain_blocked(rt, e);
            }
        } else if !e.busy() && e.aux.get() & RECALL_PENDING != 0 {
            e.aux.set(e.aux.get() & !RECALL_PENDING);
            e.st.set(R_INVALID);
            rt.send_proto(e.id.home(), e.id, op::WB, 0, Some(e.clone_data()));
        }
        self.refresh_fast(rt, e);
    }

    fn start_write(&self, rt: &AceRt, e: &RegionEntry) {
        self.acquire(rt, e);
        self.refresh_fast(rt, e);
    }

    fn end_write(&self, rt: &AceRt, e: &RegionEntry) {
        self.end_read(rt, e);
    }

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, _src: usize) {
        let from = msg.from as usize;
        match msg.op {
            // home side
            op::MREQ => {
                if e.is_home_of(rt.rank()) && e.busy() {
                    // Home is inside its own access section; defer until
                    // the matching end_* drains the queue.
                    e.blocked.borrow_mut().push_back((msg.from, msg.op, msg.arg));
                } else if e.aux.get() & BUSY != 0 {
                    e.blocked.borrow_mut().push_back((msg.from, msg.op, msg.arg));
                } else if e.owner.get() != -1 {
                    e.aux.set(e.aux.get() | BUSY);
                    rt.send_proto(e.owner.get() as usize, e.id, op::RECALL, 0, None);
                    e.blocked.borrow_mut().push_back((msg.from, msg.op, msg.arg));
                } else {
                    e.owner.set(from as i32);
                    rt.send_proto(from, e.id, op::MDATA, 0, Some(e.clone_data()));
                }
            }
            op::WB | op::FLUSH_X => {
                e.install_shared(msg.data.expect("writeback carries data"));
                e.owner.set(-1);
                e.aux.set(e.aux.get() & !BUSY);
                if msg.op == op::FLUSH_X {
                    rt.send_proto(from, e.id, op::FLUSH_ACK, 0, None);
                }
                self.drain_blocked(rt, e);
            }
            // remote side
            op::MDATA => {
                e.install_shared(msg.data.expect("grant carries data"));
                e.st.set(R_EXCL);
            }
            op::RECALL => match e.st.get() {
                R_EXCL if e.busy() || e.aux.get() & WANTED != 0 => {
                    e.aux.set(e.aux.get() | RECALL_PENDING)
                }
                R_EXCL => {
                    e.st.set(R_INVALID);
                    rt.send_proto(e.id.home(), e.id, op::WB, 0, Some(e.clone_data()));
                }
                other => panic!("migratory RECALL in state {other}"),
            },
            op::FLUSH_ACK => {
                e.aux.set(e.aux.get() & !FLUSH_WAIT);
            }
            other => panic!("Migratory: unknown opcode {other}"),
        }
        self.refresh_fast(rt, e);
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) {
            if e.st.get() == R_EXCL {
                e.aux.set(e.aux.get() | FLUSH_WAIT);
                let data = e.clone_data();
                e.st.set(R_INVALID);
                rt.send_proto(e.id.home(), e.id, op::FLUSH_X, 0, Some(data));
                rt.wait("migratory flush ack", || e.aux.get() & FLUSH_WAIT == 0);
            }
            e.aux.set(0);
        }
        // Hand the region to the next protocol slow; it declares its own
        // fast states in `adopt`.
        e.fast.set(Actions::empty());
    }

    fn adopt(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, CostModel, RegionId};
    use std::rc::Rc;

    fn shared_region(rt: &AceRt, words: usize) -> RegionId {
        let s = rt.new_space(Rc::new(Migratory));
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc_words(s, words).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        rid
    }

    #[test]
    fn copy_migrates_and_accumulates() {
        // Each node in turn increments the counter; ownership migrates.
        let n = 4;
        let r = run_ace(n, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            for round in 0..n {
                if round == rt.rank() {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] += 10);
                    rt.end_write(rid);
                }
                rt.machine_barrier();
            }
            if rt.rank() == 2 {
                rt.start_read(rid);
                let v = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                v
            } else {
                40
            }
        });
        assert_eq!(r.results, vec![40; 4]);
    }

    #[test]
    fn read_acquires_ownership_too() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            if rt.rank() == 1 {
                rt.start_read(rid);
                rt.end_read(rid);
                let e = rt.entry(rid);
                e.st.get()
            } else {
                R_EXCL
            }
        });
        assert_eq!(r.results[1], R_EXCL);
    }

    #[test]
    fn contended_increments_serialize() {
        // No locks: migratory read-modify-write sections serialize through
        // ownership transfer, so concurrent increments never lose updates
        // *within a section*.
        let n = 4;
        const PER: u64 = 10;
        let r = run_ace(n, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            for _ in 0..PER {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] += 1);
                rt.end_write(rid);
            }
            rt.machine_barrier();
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![PER * n as u64; 4]);
    }
}
