//! Figure 7 computations: per-benchmark runs on both runtimes and under
//! both protocol assignments.

use ace_apps::runner::{launch_ace_with, launch_crl_with, RunOutcome};
use ace_apps::{barnes, bsc, em3d, tsp, water, Variant};
use ace_core::{CheckMode, CostModel, MachineBuilder, Spmd, TraceConfig};

/// The five benchmarks, in the paper's order.
pub const APPS: [&str; 5] = ["barnes", "bsc", "em3d", "tsp", "water"];

/// Workload scale for the harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast inputs for CI-style runs.
    Small,
    /// Inputs near Table 3 (Barnes scaled to 2048 bodies so a laptop
    /// regenerates the figure in minutes; pass `--paper` for 16,384).
    Default,
    /// The full Table 3 inputs.
    Paper,
}

fn em3d_params(s: Scale) -> em3d::Params {
    match s {
        Scale::Small => em3d::Params::small(),
        Scale::Default => em3d::Params {
            e_nodes: 400,
            h_nodes: 400,
            degree: 6,
            pct_remote: 20,
            steps: 20,
            seed: 7,
            hoist_maps: false,
        },
        Scale::Paper => em3d::Params::paper(),
    }
}

fn barnes_params(s: Scale) -> barnes::Params {
    match s {
        Scale::Small => barnes::Params::small(),
        Scale::Default => barnes::Params { bodies: 1024, steps: 2, theta: 1.0, seed: 3 },
        Scale::Paper => barnes::Params::paper(),
    }
}

fn bsc_params(s: Scale) -> bsc::Params {
    match s {
        Scale::Small => bsc::Params::small(),
        Scale::Default => bsc::Params { nblocks: 12, block: 16, band: 4, seed: 5 },
        Scale::Paper => bsc::Params::paper(),
    }
}

fn tsp_params(s: Scale) -> tsp::Params {
    match s {
        Scale::Small => tsp::Params::small(),
        Scale::Default => tsp::Params { cities: 10, seed: 11 },
        Scale::Paper => tsp::Params::paper(),
    }
}

fn water_params(s: Scale) -> water::Params {
    match s {
        Scale::Small => water::Params::small(),
        Scale::Default => water::Params { molecules: 96, steps: 2, seed: 23 },
        Scale::Paper => water::Params::paper(),
    }
}

/// The standard machine for figure runs: cm5 costs, `nprocs` nodes.
pub fn fig_machine(nprocs: usize) -> MachineBuilder {
    Spmd::builder().nprocs(nprocs).cost(CostModel::cm5())
}

/// Run one benchmark on the Ace runtime.
pub fn run_ace_app(app: &str, scale: Scale, v: Variant, nprocs: usize) -> RunOutcome {
    run_ace_app_on(app, scale, v, fig_machine(nprocs))
}

/// Run one benchmark on the Ace runtime on a fully-configured machine
/// (tracing, watchdog, ...).
pub fn run_ace_app_on(app: &str, scale: Scale, v: Variant, builder: MachineBuilder) -> RunOutcome {
    run_ace_app_coalesce(app, scale, v, builder, true)
}

/// Run one benchmark on the Ace runtime with the coalescing transport
/// forced on or off (`AceRt::set_coalescing`). The `-nocoal`
/// configurations in the figure tables come through here; everything else
/// uses the runtime default (on).
pub fn run_ace_app_coalesce(
    app: &str,
    scale: Scale,
    v: Variant,
    builder: MachineBuilder,
    coalesce: bool,
) -> RunOutcome {
    let pre = move |d: &ace_apps::AceDsm| {
        if !coalesce {
            d.rt().set_coalescing(false);
        }
    };
    match app {
        "em3d" => {
            let p = em3d_params(scale);
            launch_ace_with(builder, move |d| {
                pre(d);
                em3d::run(d, &p, v)
            })
        }
        "barnes" => {
            let p = barnes_params(scale);
            launch_ace_with(builder, move |d| {
                pre(d);
                barnes::run(d, &p, v)
            })
        }
        "bsc" => {
            let p = bsc_params(scale);
            launch_ace_with(builder, move |d| {
                pre(d);
                bsc::run(d, &p, v)
            })
        }
        "tsp" => {
            let p = tsp_params(scale);
            launch_ace_with(builder, move |d| {
                pre(d);
                tsp::run(d, &p, v)
            })
        }
        "water" => {
            let p = water_params(scale);
            launch_ace_with(builder, move |d| {
                pre(d);
                water::run(d, &p, v)
            })
        }
        other => panic!("unknown app {other}"),
    }
}

/// Run one benchmark on the CRL baseline (always the fixed SC protocol).
pub fn run_crl_app(app: &str, scale: Scale, nprocs: usize) -> RunOutcome {
    run_crl_app_on(app, scale, fig_machine(nprocs))
}

/// Run one benchmark on the CRL baseline on a fully-configured machine.
pub fn run_crl_app_on(app: &str, scale: Scale, builder: MachineBuilder) -> RunOutcome {
    match app {
        "em3d" => {
            let p = em3d_params(scale);
            launch_crl_with(builder, move |d| em3d::run(d, &p, Variant::Sc))
        }
        "barnes" => {
            let p = barnes_params(scale);
            launch_crl_with(builder, move |d| barnes::run(d, &p, Variant::Sc))
        }
        "bsc" => {
            let p = bsc_params(scale);
            launch_crl_with(builder, move |d| bsc::run(d, &p, Variant::Sc))
        }
        "tsp" => {
            let p = tsp_params(scale);
            launch_crl_with(builder, move |d| tsp::run(d, &p, Variant::Sc))
        }
        "water" => {
            let p = water_params(scale);
            launch_crl_with(builder, move |d| water::run(d, &p, Variant::Sc))
        }
        other => panic!("unknown app {other}"),
    }
}

/// Re-run one app traced and write its Chrome `trace_event` JSON to
/// `path` (loadable in Perfetto / `chrome://tracing`). Prints the
/// per-protocol summary table to stdout and returns the traced outcome.
pub fn write_trace(
    app: &str,
    scale: Scale,
    v: Variant,
    nprocs: usize,
    path: &std::path::Path,
) -> std::io::Result<RunOutcome> {
    let out = run_ace_app_on(app, scale, v, fig_machine(nprocs).trace(TraceConfig::on()));
    let trace = out.trace.as_ref().expect("traced run carries a trace");
    std::fs::write(path, trace.to_chrome_json())?;
    println!("\n== trace: {app} ({nprocs} procs) -> {} ==", path.display());
    println!(
        "{} events, {} logical messages in {} wire envelopes; open the file in https://ui.perfetto.dev",
        trace.event_count(),
        trace.logical_send_count(),
        trace.send_count()
    );
    print!("{}", trace.summary().with_fast_hits(out.counters.fast_hits).render());
    Ok(out)
}

/// Accounting summary of one benchmark configuration over `runs`
/// repetitions. Logical message and byte counts are deterministic
/// (identical across repetitions); wall-clock keeps the minimum, the
/// usual low-noise estimator for perf tracking. Simulated time and the
/// wire-envelope count carry a little run-to-run jitter (which messages
/// share a coalesced envelope rides on wall-clock arrival order inside
/// waits), so both report the last repetition.
#[derive(Debug, Clone, Copy, Default)]
pub struct VariantStats {
    /// Simulated completion time, ns.
    pub sim_ns: u64,
    /// Best wall-clock duration over the repetitions, ns.
    pub wall_ns: u64,
    /// Total logical messages across all nodes.
    pub msgs: u64,
    /// Total wire envelopes across all nodes (`<= msgs`; the gap is what
    /// coalescing saved).
    pub wire_msgs: u64,
    /// Total payload bytes across all nodes.
    pub bytes: u64,
    /// Protocol switches committed across all nodes (`change_protocol`
    /// handovers plus adaptive-engine flush-point switches).
    pub switches: u64,
}

impl VariantStats {
    /// Simulated time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.sim_ns as f64 / 1e6
    }
}

fn averaged(mut run: impl FnMut() -> RunOutcome, runs: usize) -> VariantStats {
    let mut out = VariantStats { wall_ns: u64::MAX, ..Default::default() };
    for _ in 0..runs.max(1) {
        let r = run();
        out.sim_ns = r.sim_ns;
        out.msgs = r.msgs;
        out.wire_msgs = r.wire_msgs;
        out.bytes = r.bytes;
        out.switches = r.counters.switches;
        out.wall_ns = out.wall_ns.min(r.wall.as_nanos() as u64);
    }
    out
}

/// One row of Figure 7a: Ace vs CRL, both under SC (averaged over `runs`
/// repetitions, like the paper's average of three runs).
pub struct Fig7aRow {
    /// Benchmark name.
    pub app: String,
    /// Ace simulated time, ms.
    pub ace_ms: f64,
    /// CRL simulated time, ms.
    pub crl_ms: f64,
    /// CRL/Ace ratio (> 1 means Ace is faster).
    pub ratio: f64,
    /// Full accounting for the Ace run.
    pub ace: VariantStats,
    /// Full accounting for the CRL run.
    pub crl: VariantStats,
    /// Full accounting for the Ace run under the adaptive engine (CRL has
    /// no counterpart; the row shows what runtime protocol selection does
    /// to the same-source comparison).
    pub adaptive: VariantStats,
}

/// Compute Figure 7a.
pub fn fig7a(scale: Scale, nprocs: usize, runs: usize) -> Vec<Fig7aRow> {
    APPS.iter()
        .map(|app| {
            let ace = averaged(|| run_ace_app(app, scale, Variant::Sc, nprocs), runs);
            let crl = averaged(|| run_crl_app(app, scale, nprocs), runs);
            let adaptive = averaged(|| run_ace_app(app, scale, Variant::Adaptive, nprocs), runs);
            Fig7aRow {
                app: app.to_string(),
                ace_ms: ace.sim_ms(),
                crl_ms: crl.sim_ms(),
                ratio: crl.sim_ms() / ace.sim_ms(),
                ace,
                crl,
                adaptive,
            }
        })
        .collect()
}

/// One row of Figure 7b: SC vs application-specific protocols in Ace,
/// each also run with the coalescing transport disabled so the tables
/// (and CI) can attribute how much of the win is message batching.
pub struct Fig7bRow {
    /// Benchmark name.
    pub app: String,
    /// SC simulated time, ms.
    pub sc_ms: f64,
    /// Custom-protocol simulated time, ms.
    pub custom_ms: f64,
    /// Speedup from the custom protocols.
    pub speedup: f64,
    /// Full accounting for the SC run.
    pub sc: VariantStats,
    /// Full accounting for the custom-protocol run.
    pub custom: VariantStats,
    /// SC with `set_coalescing(false)`.
    pub sc_nocoal: VariantStats,
    /// Custom protocols with `set_coalescing(false)`.
    pub custom_nocoal: VariantStats,
    /// Adaptive-engine simulated time, ms.
    pub adaptive_ms: f64,
    /// Full accounting for the adaptive run.
    pub adaptive: VariantStats,
}

/// One row of the conformance-checker overhead table: a benchmark run
/// check-off and check-on (`CheckMode::Fail`) on otherwise identical
/// machines. The vector-clock piggyback and the checker's bookkeeping
/// charge nothing to the cost model, so the simulated-time column is
/// expected to move only by the shutdown-time history gather (plus the
/// usual scheduling jitter); the wall-clock column is where the real
/// overhead shows.
pub struct CheckRow {
    /// Benchmark name.
    pub app: String,
    /// Protocol assignment the overhead was measured under.
    pub variant: Variant,
    /// Accounting with the checker off.
    pub off: VariantStats,
    /// Accounting with the checker on (`CheckMode::Fail`).
    pub on: VariantStats,
    /// Conformance violations counted in the checked runs (a completed
    /// `Fail` run implies 0 — the first violation panics).
    pub violations: u64,
}

impl CheckRow {
    /// Simulated-time overhead of the checker, as a percentage.
    pub fn sim_overhead_pct(&self) -> f64 {
        (self.on.sim_ns as f64 / self.off.sim_ns as f64 - 1.0) * 100.0
    }

    /// Wall-clock overhead of the checker, as a percentage.
    pub fn wall_overhead_pct(&self) -> f64 {
        (self.on.wall_ns as f64 / self.off.wall_ns as f64 - 1.0) * 100.0
    }
}

/// Measure conformance-checker overhead for the named apps, all three
/// protocol assignments each — adaptive included, so every engine switch
/// sequence the benchmarks exercise is certified violation-free under
/// `CheckMode::Fail`.
pub fn check_overhead(apps: &[&str], scale: Scale, nprocs: usize, runs: usize) -> Vec<CheckRow> {
    let mut rows = Vec::new();
    for app in apps {
        for v in [Variant::Sc, Variant::Custom, Variant::Adaptive] {
            let off = averaged(|| run_ace_app(app, scale, v, nprocs), runs);
            let violations = std::cell::Cell::new(0);
            let on = averaged(
                || {
                    let r =
                        run_ace_app_on(app, scale, v, fig_machine(nprocs).check(CheckMode::Fail));
                    violations.set(violations.get() + r.violations);
                    r
                },
                runs,
            );
            rows.push(CheckRow {
                app: app.to_string(),
                variant: v,
                off,
                on,
                violations: violations.get(),
            });
        }
    }
    rows
}

/// Compute Figure 7b.
pub fn fig7b(scale: Scale, nprocs: usize, runs: usize) -> Vec<Fig7bRow> {
    APPS.iter()
        .map(|app| {
            let coal = |v, on| {
                averaged(|| run_ace_app_coalesce(app, scale, v, fig_machine(nprocs), on), runs)
            };
            let sc = coal(Variant::Sc, true);
            let cu = coal(Variant::Custom, true);
            let ad = coal(Variant::Adaptive, true);
            let sc_nocoal = coal(Variant::Sc, false);
            let custom_nocoal = coal(Variant::Custom, false);
            Fig7bRow {
                app: app.to_string(),
                sc_ms: sc.sim_ms(),
                custom_ms: cu.sim_ms(),
                speedup: sc.sim_ms() / cu.sim_ms(),
                sc,
                custom: cu,
                sc_nocoal,
                custom_nocoal,
                adaptive_ms: ad.sim_ms(),
                adaptive: ad,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_small_has_expected_shape() {
        let rows = fig7a(Scale::Small, 4, 1);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.ace_ms > 0.0 && r.crl_ms > 0.0, "{}", r.app);
        }
    }

    #[test]
    fn em3d_region_cache_hit_rate_is_high() {
        // The EM3D compute loop touches a small per-node working set of
        // regions over and over; the inline lookup cache should absorb
        // nearly all of it.
        let out = run_ace_app("em3d", Scale::Small, Variant::Custom, 4);
        let rate = out.counters.region_cache_hit_rate().expect("EM3D performs region lookups");
        assert!(
            rate > 0.9,
            "EM3D should hit the inline region cache: rate {rate:.3} ({} hits / {} misses)",
            out.counters.region_cache_hits,
            out.counters.region_cache_misses
        );
    }

    #[test]
    fn fig7b_small_custom_never_much_slower() {
        let rows = fig7b(Scale::Small, 4, 1);
        for r in &rows {
            assert!(
                r.speedup > 0.7,
                "{}: custom protocols should not badly regress ({})",
                r.app,
                r.speedup
            );
        }
    }
}
