//! Stress and failure-injection tests: contention storms, protocol
//! changes under live sharing, URC-eviction churn, and the runtime's
//! misuse diagnostics.

use ace::core::{run_ace, CostModel, RegionId};
use ace::crl::CrlRt;
use ace::machine::Spmd;
use ace::protocols::{make, ProtoSpec};

#[test]
fn sc_contention_storm_converges() {
    // 8 nodes hammer 4 regions with locked increments and unlocked reads,
    // no barriers mid-storm: the MSI state machine must neither wedge nor
    // lose an update.
    const INCS: u64 = 30;
    let r = run_ace(8, CostModel::free(), |rt| {
        let s = rt.new_space(make(ProtoSpec::Sc));
        let regions: Vec<RegionId> = if rt.rank() == 0 {
            let ids: Vec<u64> = (0..4).map(|_| rt.gmalloc::<u64>(s, 1).0).collect();
            rt.bcast(0, &ids).iter().map(|&x| RegionId(x)).collect()
        } else {
            rt.bcast(0, &[]).iter().map(|&x| RegionId(x)).collect()
        };
        for &r in &regions {
            rt.map(r);
        }
        for i in 0..INCS {
            let r = regions[(i as usize + rt.rank()) % regions.len()];
            rt.lock(r);
            rt.start_write(r);
            rt.with_mut::<u64, _>(r, |d| d[0] += 1);
            rt.end_write(r);
            rt.unlock(r);
            // Interleave unsynchronized reads on another region.
            let q = regions[(i as usize + rt.rank() + 1) % regions.len()];
            rt.start_read(q);
            rt.with::<u64, _>(q, |d| d[0]);
            rt.end_read(q);
        }
        rt.machine_barrier();
        let mut total = 0;
        for &r in &regions {
            rt.start_read(r);
            total += rt.with::<u64, _>(r, |d| d[0]);
            rt.end_read(r);
        }
        total
    });
    assert!(r.results.iter().all(|&t| t == INCS * 8));
}

#[test]
fn change_protocol_between_every_phase() {
    // Cycle a live, shared data structure through five protocols; every
    // transition must preserve contents and subsequent semantics.
    let chain = [
        ProtoSpec::DynUpdate,
        ProtoSpec::StaticUpdate,
        ProtoSpec::Sc,
        ProtoSpec::HomeOwned,
        ProtoSpec::Sc,
    ];
    let r = run_ace(4, CostModel::free(), move |rt| {
        let s = rt.new_space(make(ProtoSpec::Sc));
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 2).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        rt.barrier(s);
        let mut expected = 0;
        for (round, proto) in chain.iter().enumerate() {
            rt.change_protocol(s, make(*proto));
            if rt.rank() == 0 {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] = round as u64 + 10);
                rt.end_write(rid);
            }
            rt.barrier(s);
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            assert_eq!(v, round as u64 + 10, "stale read under {proto:?}");
            expected = v;
            rt.barrier(s);
        }
        expected
    });
    assert!(r.results.iter().all(|&v| v == 14));
}

#[test]
fn crl_urc_churn_with_tiny_cache() {
    // A 2-entry URC forces an eviction (with a coherence flush) on almost
    // every unmap; data must survive the churn.
    let r = Spmd::builder().nprocs(3).cost(CostModel::free()).run(|node| {
        let crl = CrlRt::with_urc_capacity(node, 2);
        let ids: Vec<RegionId> = if crl.rank() == 0 {
            let ids: Vec<u64> = (0..12)
                .map(|i| {
                    let r = crl.create_words(1);
                    crl.map(r);
                    crl.start_write(r);
                    crl.with_mut::<u64, _>(r, |d| d[0] = i * 3 + 1);
                    crl.end_write(r);
                    crl.unmap(r);
                    r.0
                })
                .collect();
            crl.bcast(0, &ids).iter().map(|&x| RegionId(x)).collect()
        } else {
            crl.bcast(0, &[]).iter().map(|&x| RegionId(x)).collect()
        };
        crl.barrier();
        let mut sum = 0;
        for _ in 0..3 {
            for &rid in &ids {
                crl.map(rid);
                crl.start_read(rid);
                sum += crl.with::<u64, _>(rid, |d| d[0]);
                crl.end_read(rid);
                crl.unmap(rid);
            }
        }
        crl.barrier();
        crl.inner().shutdown();
        sum
    });
    let want: u64 = 3 * (0..12).map(|i| i * 3 + 1).sum::<u64>();
    assert!(r.results.iter().all(|&s| s == want));
}

#[test]
fn many_spaces_and_protocols_coexist() {
    // One space per protocol, all live at once, all coherent.
    let specs = [
        ProtoSpec::Sc,
        ProtoSpec::DynUpdate,
        ProtoSpec::StaticUpdate,
        ProtoSpec::HomeOwned,
        ProtoSpec::Pipelined,
        ProtoSpec::Migratory,
    ];
    let r = run_ace(4, CostModel::free(), move |rt| {
        let spaces: Vec<_> = specs.iter().map(|p| rt.new_space(make(*p))).collect();
        let mut region_of = Vec::new();
        for &sp in &spaces {
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<f64>(sp, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            region_of.push(rid);
        }
        for &sp in &spaces {
            rt.barrier(sp);
        }
        if rt.rank() == 0 {
            for (k, &rid) in region_of.iter().enumerate() {
                rt.start_write(rid);
                rt.with_mut::<f64, _>(rid, |d| d[0] = (k + 1) as f64 * 2.5);
                rt.end_write(rid);
            }
        }
        for &sp in &spaces {
            rt.barrier(sp);
        }
        let mut sum = 0.0;
        for &rid in &region_of {
            rt.start_read(rid);
            sum += rt.with::<f64, _>(rid, |d| d[0]);
            rt.end_read(rid);
        }
        for &sp in &spaces {
            rt.barrier(sp);
        }
        sum
    });
    let want: f64 = (1..=6).map(|k| k as f64 * 2.5).sum();
    assert!(r.results.iter().all(|&s| s == want));
}

#[test]
#[should_panic(expected = "not known on node")]
fn unmapped_access_is_diagnosed() {
    run_ace(1, CostModel::free(), |rt| {
        rt.start_read(RegionId::new(0, 1234));
    });
}

#[test]
#[should_panic(expected = "at most")]
fn oversized_machine_is_rejected() {
    run_ace(ace::machine::MAX_NODES + 1, CostModel::free(), |_| ());
}
