//! The Ace runtime: a region-based software DSM with *customizable
//! coherence protocols*.
//!
//! This crate reproduces the runtime system of §4.1 of the paper. Shared
//! data lives in **regions** — arbitrarily-sized, user-granularity units of
//! coherence — allocated from **spaces**. A space is the paper's high-level
//! abstraction for associating a protocol with a data structure: every
//! region belongs to exactly one space, and all coherence actions on the
//! region dispatch through the space to its current [`Protocol`].
//!
//! The programming model is the paper's annotation set (Figure 3):
//!
//! | paper             | here                         |
//! |-------------------|------------------------------|
//! | `Ace_NewSpace`    | [`AceRt::new_space`]         |
//! | `Ace_GMalloc`     | [`AceRt::gmalloc`]           |
//! | `Ace_ChangeProtocol` | [`AceRt::change_protocol`]|
//! | `ACE_MAP` / `ACE_UNMAP` | [`AceRt::map`] / [`AceRt::unmap`] |
//! | `ACE_START_READ` / `ACE_END_READ` | [`AceRt::start_read`] / [`AceRt::end_read`] |
//! | `ACE_START_WRITE` / `ACE_END_WRITE` | [`AceRt::start_write`] / [`AceRt::end_write`] |
//! | `Ace_Barrier`     | [`AceRt::barrier`]           |
//! | `Ace_Lock` / `Ace_UnLock` | [`AceRt::lock`] / [`AceRt::unlock`] |
//!
//! Protocols implement *full access control* (§2.1): hooks before and after
//! reads and writes, at map/unmap, and at synchronization points, plus an
//! active-message handler for their wire protocol.

mod check;
pub mod counters;
pub mod error;
pub mod ids;
pub mod msg;
pub mod protocol;
pub mod region;
pub mod rt;
pub mod space;

pub use ace_machine::pod::{self, Pod};
pub use ace_machine::{
    validate_chrome_trace, CheckMode, ChromeCheck, CoalescePolicy, ConfigError, CostModel,
    Envelope, EventKind, ExecBackend, Hook, MachineBuilder, MachineTrace, Node, NodeTrace, RankRun,
    SockAddr, SocketCfg, Spmd, SpmdResult, TraceConfig, TraceEvent, TraceSummary, TransportKind,
    MAX_NODES,
};
pub use counters::OpCounters;
pub use error::{AceError, ConformanceKind, SectionRecord};
pub use ids::{RegionId, SpaceId};
pub use msg::{AceMsg, ProtoMsg};
pub use protocol::{Actions, GrantSet, Protocol};
pub use region::{RegionEntry, Sharers};
pub use rt::{AceRt, DEFAULT_COALESCE, REMOTE_INVALID, REMOTE_SHARED};
pub use space::SpaceEntry;

/// Run an SPMD Ace program on `nprocs` simulated processors.
///
/// Each node gets a fresh [`AceRt`] over its [`Node`]. The runtime appends a
/// machine-wide shutdown barrier after `f` returns so the quiescence
/// contract of the substrate holds. For non-default machine configuration
/// (tracing, watchdog, drain batch) use [`run_ace_with`] with a
/// [`MachineBuilder`].
pub fn run_ace<R, F>(nprocs: usize, cost: CostModel, f: F) -> SpmdResult<R>
where
    R: Send,
    F: Fn(&AceRt) -> R + Sync,
{
    run_ace_with(Spmd::builder().nprocs(nprocs).cost(cost), f)
}

/// Run an SPMD Ace program on a fully-configured [`MachineBuilder`].
///
/// Same shutdown-barrier contract as [`run_ace`]; this is the entry point
/// for traced runs:
///
/// ```
/// use ace_core::{run_ace_with, CostModel, Spmd, TraceConfig};
///
/// let r = run_ace_with(
///     Spmd::builder().nprocs(2).cost(CostModel::cm5()).trace(TraceConfig::on()),
///     |rt| rt.rank(),
/// );
/// assert!(r.trace.is_some());
/// ```
pub fn run_ace_with<R, F>(builder: MachineBuilder, f: F) -> SpmdResult<R>
where
    R: Send,
    F: Fn(&AceRt) -> R + Sync,
{
    builder.run(|node| {
        let rt = AceRt::new(node);
        let r = f(&rt);
        rt.shutdown();
        r
    })
}

/// Run ONE rank of a multi-process Ace machine in this OS process.
///
/// The builder must select `TransportKind::Socket` with a concrete
/// rendezvous address; the other ranks are peer processes calling
/// `run_ace_rank` with the same machine size and address (rank 0 hosts the
/// rendezvous). Same shutdown-barrier contract as [`run_ace`], so all
/// processes leave together. Configuration problems come back as
/// [`AceError::Config`] before any socket is opened.
pub fn run_ace_rank<R, F>(
    builder: MachineBuilder,
    rank: usize,
    f: F,
) -> Result<RankRun<R>, AceError>
where
    F: FnOnce(&AceRt) -> R,
{
    Ok(builder.spawn_rank(rank, |node| {
        let rt = AceRt::new(node);
        let r = f(&rt);
        rt.shutdown();
        r
    })?)
}
