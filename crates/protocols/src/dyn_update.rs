//! Dynamic update protocol: writes propagated to sharers immediately.
//!
//! The paper's §3.3 plugs this library into EM3D for a 3.5× speedup over
//! invalidation, and §5.2 uses it for Barnes-Hut bodies. Mapping a remote
//! region *joins* it: home adds the node to the sharer list and sends the
//! current data. After every write section, the writer ships the region
//! home; home installs it and forwards it to all other sharers. As the
//! paper notes (§6), "a writer need not acquire exclusive access before
//! proceeding with a write, as long as the result of the write is
//! propagated to all sharers" — that assertion is what shrinks this
//! protocol's state space relative to the SC protocol.
//!
//! Ack accounting is exact: every update round gets a per-region sequence
//! number at home; sharers acknowledge home naming that round, and home
//! notifies the writer (`ROUND_DONE`) only when the round's last ack is
//! in. The barrier hook waits until this node's outstanding rounds drain,
//! so every write issued before a barrier is applied machine-wide before
//! any node passes that barrier.

use ace_core::{AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry, SpaceEntry};

use crate::states::*;

/// Wire opcodes.
pub mod op {
    /// Remote → home: join the sharer set, reply with data.
    pub const JOIN: u16 = 1;
    /// Home → remote: current data (join reply).
    pub const DATA: u16 = 2;
    /// Writer → home: new region contents after a write section.
    pub const UPD_HOME: u16 = 3;
    /// Home → sharer: updated region contents (`arg` = writer rank).
    pub const UPD: u16 = 4;
    /// Sharer → home: update applied (`arg` = round sequence number).
    pub const UPD_ACK: u16 = 5;
    /// Home → writer: your update round is fully applied.
    pub const ROUND_DONE: u16 = 6;
    /// Remote → home: leaving the sharer set (flush).
    pub const LEAVE: u16 = 7;
    /// Home → remote: leave acknowledged.
    pub const LEAVE_ACK: u16 = 8;

    /// Trace label for an opcode.
    pub fn name(op: u16) -> &'static str {
        match op {
            JOIN => "join",
            DATA => "data",
            UPD_HOME => "upd_home",
            UPD => "upd",
            UPD_ACK => "upd_ack",
            ROUND_DONE => "round_done",
            LEAVE => "leave",
            LEAVE_ACK => "leave_ack",
            _ => "op",
        }
    }
}

/// Aux bits (remote side).
const JOINED: u64 = 1 << 4;
const FLUSH_WAIT: u64 = 1 << 8;

/// The dynamic update protocol.
#[derive(Default)]
pub struct DynamicUpdate;

impl DynamicUpdate {
    /// Constructor for registry use.
    pub fn new() -> Self {
        DynamicUpdate
    }

    fn join(&self, rt: &AceRt, e: &RegionEntry) {
        e.st.set(R_WAIT_READ);
        rt.send_proto(e.id.home(), e.id, op::JOIN, 0, None);
        rt.wait("update join", || e.st.get() == R_SHARED);
        e.aux.set(e.aux.get() | JOINED);
    }

    /// Home side: push one update round on behalf of `writer`: assign a
    /// round number, forward new contents to every sharer except the
    /// writer, and record the round if any acks are expected. Returns
    /// whether the round completed immediately (no sharers to update).
    ///
    /// This is the protocol's fan-out hot path, and it is written to let
    /// the transport's per-destination coalescing do its work: the UPDs
    /// of one round — and of *every* round started from the same handler
    /// or write burst, across regions — are plain `send_proto` calls
    /// with no intervening wait, so cross-region UPDs bound for the same
    /// sharer batch into shared wire envelopes (one latency, one header)
    /// and go out when the writer blocks in `barrier`'s
    /// "update rounds drain" wait or a buffer reaches its threshold.
    fn push_round(&self, rt: &AceRt, e: &RegionEntry, writer: usize) -> bool {
        let seq = (e.aux.get() >> 16) as u16;
        e.aux.set((e.aux.get() & 0xFFFF) | (((seq as u64).wrapping_add(1) & 0xFFFF) << 16));
        // One snapshot shared across the whole fan-out: O(sharers)
        // refcount bumps instead of O(sharers) deep copies.
        let snapshot = e.share_data();
        let mut n = 0u64;
        for s in e.sharer_ranks() {
            if s == writer {
                continue;
            }
            rt.send_proto(s, e.id, op::UPD, seq as u64, Some(snapshot.clone()));
            n += 1;
        }
        if n == 0 {
            return true;
        }
        e.blocked.borrow_mut().push_back((writer as u16, seq, n));
        false
    }

    fn add_outstanding(rt: &AceRt, e: &RegionEntry, delta: i64) {
        let s = rt.space(e.space);
        let v = s.outstanding.get() as i64 + delta;
        debug_assert!(v >= 0, "outstanding underflow");
        s.outstanding.set(v as u64);
    }

    /// Recompute the entry's fast mask from its current state.
    /// `end_read` is an unconditional no-op; the start hooks are no-ops
    /// whenever a writable copy is already present (home, or a joined
    /// sharer — writers need no exclusivity under update propagation).
    /// `end_write` always starts an update round, so it is never fast.
    fn refresh_fast(&self, rt: &AceRt, e: &RegionEntry) {
        let mut fast = Actions::END_READ;
        if e.is_home_of(rt.rank()) || e.st.get() == R_SHARED {
            fast = fast.union(Actions::START_READ).union(Actions::START_WRITE);
        }
        e.fast.set(fast);
    }
}

impl Protocol for DynamicUpdate {
    fn name(&self) -> &'static str {
        "Update"
    }

    fn op_name(&self, op: u16) -> &'static str {
        op::name(op)
    }

    fn optimizable(&self) -> bool {
        true
    }

    fn null_actions(&self) -> Actions {
        Actions::END_READ.union(Actions::UNMAP)
    }

    // An update protocol: writers push new values to every standing copy,
    // so readers keep sections open while a writer writes, and multiple
    // writers (of disjoint data, ordered by the application) may overlap.
    fn grants(&self) -> GrantSet {
        GrantSet::concurrent()
    }

    fn on_create(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn on_map(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) && e.st.get() == R_INVALID {
            rt.counters_mut(|c| c.read_misses += 1);
            self.join(rt, e);
        }
        self.refresh_fast(rt, e);
    }

    fn start_read(&self, rt: &AceRt, e: &RegionEntry) {
        // Normally a hit: updates arrive pushed. Joins lazily after a
        // protocol change without a fresh map.
        if !e.is_home_of(rt.rank()) && e.st.get() == R_INVALID {
            rt.counters_mut(|c| c.read_misses += 1);
            self.join(rt, e);
        }
        self.refresh_fast(rt, e);
    }

    fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn start_write(&self, rt: &AceRt, e: &RegionEntry) {
        // No exclusivity needed; just make sure we hold a copy to write
        // into.
        self.start_read(rt, e);
    }

    fn end_write(&self, rt: &AceRt, e: &RegionEntry) {
        Self::add_outstanding(rt, e, 1);
        if e.is_home_of(rt.rank()) {
            if self.push_round(rt, e, rt.rank()) {
                Self::add_outstanding(rt, e, -1);
            }
        } else {
            rt.send_proto(e.id.home(), e.id, op::UPD_HOME, 0, Some(e.clone_data()));
        }
    }

    fn barrier(&self, rt: &AceRt, s: &SpaceEntry) {
        rt.wait("update rounds drain", || s.outstanding.get() == 0);
        rt.space_barrier(s);
    }

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, _src: usize) {
        let from = msg.from as usize;
        match msg.op {
            // ---------------- home side ----------------
            op::JOIN => {
                e.add_sharer(from);
                rt.send_proto(from, e.id, op::DATA, 0, Some(e.clone_data()));
            }
            op::UPD_HOME => {
                e.install_shared(msg.data.expect("update carries data"));
                if self.push_round(rt, e, from) {
                    rt.send_proto(from, e.id, op::ROUND_DONE, 0, None);
                }
            }
            op::LEAVE => {
                e.drop_sharer(from);
                rt.send_proto(from, e.id, op::LEAVE_ACK, 0, None);
            }
            op::UPD_ACK => {
                // Home side: retire one ack of round `msg.arg`.
                let mut done: Option<u16> = None;
                {
                    let mut q = e.blocked.borrow_mut();
                    let idx = q
                        .iter()
                        .position(|&(_, seq, _)| seq == msg.arg as u16)
                        .expect("ack for unknown update round");
                    q[idx].2 -= 1;
                    if q[idx].2 == 0 {
                        done = Some(q[idx].0);
                        q.remove(idx);
                    }
                }
                if let Some(writer) = done {
                    if writer as usize == rt.rank() {
                        Self::add_outstanding(rt, e, -1);
                    } else {
                        rt.send_proto(writer as usize, e.id, op::ROUND_DONE, 0, None);
                    }
                }
            }
            // ---------------- writer side ----------------
            op::ROUND_DONE => {
                Self::add_outstanding(rt, e, -1);
            }
            // ---------------- sharer side ----------------
            op::DATA => {
                e.install_shared(msg.data.expect("join reply carries data"));
                e.st.set(R_SHARED);
            }
            op::UPD => {
                e.install_shared(msg.data.expect("update carries data"));
                if e.st.get() != R_INVALID {
                    e.st.set(R_SHARED);
                }
                rt.send_proto(e.id.home(), e.id, op::UPD_ACK, msg.arg, None);
            }
            op::LEAVE_ACK => {
                e.aux.set(e.aux.get() & !FLUSH_WAIT);
            }
            other => panic!("Update: unknown opcode {other}"),
        }
        self.refresh_fast(rt, e);
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        // Hand the region to the next protocol slow; it declares its own
        // fast states in `adopt`.
        e.fast.set(Actions::empty());
        if e.is_home_of(rt.rank()) {
            return;
        }
        if e.aux.get() & JOINED != 0 || e.st.get() == R_SHARED {
            e.aux.set((e.aux.get() | FLUSH_WAIT) & !JOINED);
            e.st.set(R_INVALID);
            rt.send_proto(e.id.home(), e.id, op::LEAVE, 0, None);
            rt.wait("leave ack", || e.aux.get() & FLUSH_WAIT == 0);
        }
        e.aux.set(0);
    }

    fn adopt(&self, rt: &AceRt, e: &RegionEntry) {
        // Rejoin regions this node still has mapped.
        if !e.is_home_of(rt.rank()) && e.mapped.get() > 0 {
            self.join(rt, e);
        }
        self.refresh_fast(rt, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, CostModel, RegionId};
    use std::rc::Rc;

    fn upd() -> Rc<dyn Protocol> {
        Rc::new(DynamicUpdate)
    }

    fn shared_region(rt: &AceRt, words: usize) -> RegionId {
        let s = rt.new_space(upd());
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc_words(s, words).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        rid
    }

    #[test]
    fn home_write_pushes_to_all_sharers() {
        let r = run_ace(4, CostModel::free(), |rt| {
            let rid = shared_region(rt, 2);
            rt.machine_barrier(); // everyone joined at map
            if rt.rank() == 0 {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[1] = 9);
                rt.end_write(rid);
            }
            rt.barrier(rt.entry(rid).space);
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[1]);
            rt.end_read(rid);
            (v, rt.counters().read_misses)
        });
        for (rank, (v, misses)) in r.results.iter().enumerate() {
            assert_eq!(*v, 9, "rank {rank}");
            // Exactly one miss (the join at map); the update was pushed.
            assert_eq!(*misses, if rank == 0 { 0 } else { 1 });
        }
    }

    #[test]
    fn remote_write_round_trips_through_home() {
        let r = run_ace(3, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            rt.machine_barrier();
            if rt.rank() == 2 {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] = 31);
                rt.end_write(rid);
            }
            rt.barrier(rt.entry(rid).space);
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![31, 31, 31]);
    }

    #[test]
    fn reads_after_join_are_hits() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            rt.machine_barrier();
            let before = rt.counters().proto_msgs;
            for _ in 0..50 {
                rt.start_read(rid);
                rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
            }
            rt.counters().proto_msgs - before
        });
        // No protocol traffic at all for pure reads.
        assert_eq!(r.results, vec![0, 0]);
    }

    #[test]
    fn producer_consumer_iterations_stay_fresh() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let rid = shared_region(rt, 1);
            let sid = rt.entry(rid).space;
            rt.machine_barrier();
            let mut seen = Vec::new();
            for i in 0..8u64 {
                if rt.rank() == 0 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] = i * 10);
                    rt.end_write(rid);
                }
                rt.barrier(sid);
                rt.start_read(rid);
                seen.push(rt.with::<u64, _>(rid, |d| d[0]));
                rt.end_read(rid);
                rt.barrier(sid);
            }
            seen
        });
        let want: Vec<u64> = (0..8).map(|i| i * 10).collect();
        assert_eq!(r.results[0], want);
        assert_eq!(r.results[1], want);
    }

    #[test]
    fn cross_region_updates_share_wire_envelopes() {
        // The tentpole's first fan-out hot path: a home node writing many
        // regions shared by the same remote pushes one UPD per region, and
        // the transport batches those cross-region UPDs into shared wire
        // envelopes. Logical traffic and results must not change; wire
        // traffic must drop.
        let run = |coalesce: bool| {
            run_ace(2, CostModel::free(), move |rt| {
                rt.set_coalescing(coalesce);
                let s = rt.new_space(upd());
                let mut rids = Vec::new();
                for _ in 0..16 {
                    let rid = if rt.rank() == 0 {
                        RegionId(rt.bcast(0, &[rt.gmalloc_words(s, 1).0])[0])
                    } else {
                        RegionId(rt.bcast(0, &[])[0])
                    };
                    rt.map(rid);
                    rids.push(rid);
                }
                rt.machine_barrier();
                if rt.rank() == 0 {
                    // One write burst across all regions with no wait in
                    // between: nothing forces the per-region UPDs onto
                    // separate wire envelopes.
                    for (i, rid) in rids.iter().enumerate() {
                        rt.start_write(*rid);
                        rt.with_mut::<u64, _>(*rid, |d| d[0] = i as u64 + 1);
                        rt.end_write(*rid);
                    }
                }
                rt.barrier(s);
                let mut sum = 0;
                for rid in &rids {
                    rt.start_read(*rid);
                    sum += rt.with::<u64, _>(*rid, |d| d[0]);
                    rt.end_read(*rid);
                }
                sum
            })
        };
        let off = run(false);
        let on = run(true);
        let want: u64 = (1..=16).sum();
        assert_eq!(off.results, vec![want, want]);
        assert_eq!(on.results, vec![want, want]);
        assert_eq!(off.stats.total_msgs(), on.stats.total_msgs(), "same logical traffic");
        assert_eq!(
            off.stats.total_wire_msgs(),
            off.stats.total_msgs(),
            "coalescing off: one wire envelope per logical message"
        );
        assert!(
            on.stats.total_wire_msgs() < on.stats.total_msgs(),
            "UPD fan-out should batch: {} wire vs {} logical",
            on.stats.total_wire_msgs(),
            on.stats.total_msgs()
        );
    }

    #[test]
    fn many_writers_converge_through_home_order() {
        // Each node writes its own slot; after the space barrier every
        // node sees every slot.
        let n = 5;
        let r = run_ace(n, CostModel::free(), |rt| {
            let rid = shared_region(rt, n);
            let sid = rt.entry(rid).space;
            rt.machine_barrier();
            rt.start_write(rid);
            rt.with_mut::<u64, _>(rid, |d| d[rt.rank()] = rt.rank() as u64 + 1);
            rt.end_write(rid);
            rt.barrier(sid);
            rt.start_read(rid);
            let sum = rt.with::<u64, _>(rid, |d| d.iter().sum::<u64>());
            rt.end_read(rid);
            sum
        });
        // NOTE: concurrent whole-region updates race (last write wins per
        // slot ordering through home), but each node wrote a distinct slot
        // *of its own copy*, so the final contents depend on interleaving.
        // The only guaranteed slot is the last writer's. This documents
        // the protocol's relaxed semantics: sums must be at least one
        // slot's worth.
        for sum in r.results {
            assert!(sum >= 1, "at least the final update survives");
        }
    }
}
