//! SPMD launcher: run one closure on every simulated processor.
//!
//! Machines are configured through [`Spmd::builder`], which gathers every
//! knob — processor count, cost model, watchdog, drain batch, tracing,
//! transport — into a [`MachineBuilder`] instead of the former scattered
//! per-node mutators.
//!
//! Two launch shapes exist:
//!
//! * [`MachineBuilder::run`] — the whole machine in this process, one OS
//!   thread per rank, on either transport backend ([`TransportKind`]).
//! * [`MachineBuilder::spawn_rank`] — exactly one rank in this process,
//!   over the socket transport; the other ranks are other OS processes
//!   meeting at the configured rendezvous address.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ace_trace::{MachineTrace, NodeTrace, TraceConfig};

use crate::cost::CostModel;
use crate::envelope::MsgSize;
use crate::node::{
    CheckMode, CoalescePolicy, Node, NodeSetup, DEFAULT_DRAIN_BATCH, DEFAULT_WATCHDOG,
};
use crate::sched::{default_workers, ExecBackend, Scheduler, SlotHandle, MUX_STACK_BYTES};
use crate::stats::{MachineStats, NodeStats};
use crate::transport::{
    ConfigError, FailBoard, InProcTransport, SockAddr, SocketCfg, SocketTransport, Transport,
    TransportKind, WireCodec, SOCKET_MAX_RANKS,
};
use crate::MAX_NODES;

/// Outcome of an SPMD run: per-node results, counters, and both clocks.
#[derive(Debug)]
pub struct SpmdResult<R> {
    /// Per-node return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-node communication counters.
    pub stats: MachineStats,
    /// Simulated completion time (max final virtual clock), nanoseconds.
    pub sim_ns: u64,
    /// Real elapsed time of the whole run.
    pub wall: Duration,
    /// The merged event trace, when the builder enabled tracing.
    pub trace: Option<MachineTrace>,
}

/// Outcome of a single-rank launch ([`MachineBuilder::spawn_rank`]): this
/// process's slice of a multi-process machine.
#[derive(Debug)]
pub struct RankRun<R> {
    /// The rank this process ran.
    pub rank: usize,
    /// Total ranks in the machine.
    pub nprocs: usize,
    /// The closure's return value.
    pub result: R,
    /// This rank's communication counters.
    pub stats: NodeStats,
    /// Real elapsed time, including the bootstrap handshake.
    pub wall: Duration,
    /// This rank's event trace, when the builder enabled tracing.
    pub trace: Option<MachineTrace>,
}

/// The simulated machine. Entry point for configuring and launching runs:
/// `Spmd::builder().nprocs(8).cost(CostModel::cm5()).run(f)`.
pub struct Spmd;

impl Spmd {
    /// Start configuring a machine. Defaults: 1 processor, CM-5 cost
    /// model, in-process transport, tracing off, default watchdog and
    /// drain batch.
    pub fn builder() -> MachineBuilder {
        MachineBuilder::new()
    }
}

/// Configuration for a machine, built via [`Spmd::builder`].
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    nprocs: usize,
    cost: CostModel,
    trace: TraceConfig,
    watchdog: Duration,
    drain_batch: usize,
    coalesce: CoalescePolicy,
    check: CheckMode,
    det_seed: Option<u64>,
    backend: ExecBackend,
    workers: Option<usize>,
    transport: TransportKind,
}

impl Default for MachineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-rank transport seed moved into a node's thread; the endpoint
/// itself is constructed on that thread.
enum NodeSeed<M> {
    InProc(InProcTransport<M>),
    Socket(SocketCfg),
}

/// Extract a panic payload's message for failure propagation.
fn panic_message(e: &(dyn std::any::Any + Send)) -> &str {
    e.downcast_ref::<String>()
        .map(|s| s.as_str())
        .or_else(|| e.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic>")
}

impl MachineBuilder {
    /// A builder with the defaults described on [`Spmd::builder`].
    pub fn new() -> Self {
        MachineBuilder {
            nprocs: 1,
            cost: CostModel::cm5(),
            trace: TraceConfig::off(),
            watchdog: DEFAULT_WATCHDOG,
            drain_batch: DEFAULT_DRAIN_BATCH,
            coalesce: CoalescePolicy::Off,
            check: CheckMode::Off,
            det_seed: None,
            backend: ExecBackend::default(),
            workers: None,
            transport: TransportKind::InProc,
        }
    }

    /// Number of simulated processors (1..=[`MAX_NODES`]).
    pub fn nprocs(mut self, n: usize) -> Self {
        self.nprocs = n;
        self
    }

    /// The cost model charging virtual time for computation and messages.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Event-tracing configuration (off by default; see `ace_trace`).
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = cfg;
        self
    }

    /// How long a blocked node waits before panicking as wedged.
    pub fn watchdog(mut self, d: Duration) -> Self {
        self.watchdog = d;
        self
    }

    /// Channel drain burst size (1 = unbatched reception).
    pub fn drain_batch(mut self, n: usize) -> Self {
        assert!(n >= 1, "drain batch must be at least 1");
        self.drain_batch = n;
        self
    }

    /// Initial per-destination send-coalescing policy (off by default at
    /// the substrate level; nodes can switch at runtime with
    /// [`Node::set_coalesce`]).
    pub fn coalesce(mut self, policy: CoalescePolicy) -> Self {
        self.coalesce = policy;
        self
    }

    /// Runtime conformance-checking mode (off by default). `Log` records
    /// violations and keeps going; `Fail` panics on the first one. The
    /// machine layer carries the mode and the vector-clock piggyback; the
    /// runtime above it performs the access-control checks.
    pub fn check(mut self, mode: CheckMode) -> Self {
        self.check = mode;
        self
    }

    /// Install the seeded deterministic inbox scheduler: ready messages
    /// pop in `(arrival, seeded hash)` order instead of wall-clock arrival
    /// order, so a run that reported a violation can be replayed. Per-pair
    /// FIFO delivery is preserved. Best-effort: see `Node::pop_inbox`.
    /// Incompatible with the socket transport ([`ConfigError`]).
    pub fn deterministic(mut self, seed: u64) -> Self {
        self.det_seed = Some(seed);
        self
    }

    /// How simulated nodes map onto OS execution (see [`ExecBackend`]).
    /// `Threads` (the default) runs every node as a free OS thread;
    /// `Multiplexed` gates execution through a worker-sized slot pool and
    /// shrinks per-node stacks, which is what makes 256–4096-node machines
    /// practical on a desktop.
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Width of the execution-slot pool under [`ExecBackend::Multiplexed`]
    /// (default: one slot per host core). Ignored under `Threads`.
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one worker slot");
        self.workers = Some(n);
        self
    }

    /// Which wire substrate the machine runs on (see [`TransportKind`]);
    /// in-process channels by default. Incompatible combinations are
    /// rejected eagerly by [`MachineBuilder::validate`] rather than at
    /// some blocking point deep in a run.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Check the configuration for incompatible knob combinations. Called
    /// by every launch entry point; exposed so callers can surface a
    /// typed error instead of a panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if matches!(self.transport, TransportKind::Socket(_)) {
            if self.det_seed.is_some() {
                return Err(ConfigError::SocketDeterministic);
            }
            if matches!(self.backend, ExecBackend::Multiplexed) {
                return Err(ConfigError::SocketMultiplexed);
            }
            if self.nprocs > SOCKET_MAX_RANKS {
                return Err(ConfigError::SocketRanks {
                    nprocs: self.nprocs,
                    max: SOCKET_MAX_RANKS,
                });
            }
        }
        Ok(())
    }

    fn node_setup(&self) -> NodeSetup {
        NodeSetup {
            watchdog: self.watchdog,
            drain_batch: self.drain_batch,
            trace: self.trace.clone(),
            coalesce: self.coalesce,
            check: self.check,
            det_seed: self.det_seed,
        }
    }

    /// Launch `nprocs` simulated processors, each running `f` with its own
    /// [`Node`], in the single-program-multiple-data style of the paper
    /// ("a single user thread per processor (SPMD)", §3.1).
    ///
    /// The closure must uphold the quiescence contract: when it returns on
    /// one node, no other node may still require service from it. The
    /// runtimes enforce this by ending every program with a machine-wide
    /// barrier.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero or exceeds [`MAX_NODES`], if the
    /// configuration is invalid ([`MachineBuilder::try_run`] returns the
    /// typed error instead), or if any node's closure panics. When several
    /// nodes die (one crashes and its blocked peers then fail with "peer
    /// exited"), the panic propagated is the *first* node that died — the
    /// root cause, not a symptom.
    pub fn run<M, R, F>(&self, f: F) -> SpmdResult<R>
    where
        M: MsgSize + WireCodec + Send + 'static,
        R: Send,
        F: Fn(&Node<M>) -> R + Sync,
    {
        match self.try_run(f) {
            Ok(r) => r,
            Err(e) => panic!("invalid machine configuration: {e}"),
        }
    }

    /// [`MachineBuilder::run`] with eager configuration validation as a
    /// typed error instead of a panic.
    pub fn try_run<M, R, F>(&self, f: F) -> Result<SpmdResult<R>, ConfigError>
    where
        M: MsgSize + WireCodec + Send + 'static,
        R: Send,
        F: Fn(&Node<M>) -> R + Sync,
    {
        self.validate()?;
        Ok(self.run_inner(f))
    }

    fn run_inner<M, R, F>(&self, f: F) -> SpmdResult<R>
    where
        M: MsgSize + WireCodec + Send + 'static,
        R: Send,
        F: Fn(&Node<M>) -> R + Sync,
    {
        let nprocs = self.nprocs;
        assert!(nprocs >= 1, "need at least one node");
        assert!(nprocs <= MAX_NODES, "at most {MAX_NODES} nodes supported");

        let cost = Arc::new(self.cost.clone());
        let setup = self.node_setup();
        let board = Arc::new(FailBoard::new());
        // One failure board and (in-process) one shared sender table:
        // every node clones an `Arc`, so wiring an n-node machine is
        // O(n), not n copies of n senders.
        let seeds: Vec<NodeSeed<M>> = match &self.transport {
            TransportKind::InProc => {
                InProcTransport::mesh(nprocs, &board).into_iter().map(NodeSeed::InProc).collect()
            }
            TransportKind::Socket(cfg) => {
                // Resolve `Auto` once so every rank of this loopback run
                // meets at the same generated rendezvous path.
                let cfg = cfg.resolved();
                (0..nprocs).map(|_| NodeSeed::Socket(cfg.clone())).collect()
            }
        };
        let sched = match self.backend {
            ExecBackend::Threads => None,
            ExecBackend::Multiplexed => {
                Some(Arc::new(Scheduler::new(self.workers.unwrap_or_else(default_workers))))
            }
        };

        let start = Instant::now();
        type Outcome<R> = (R, NodeStats, Option<NodeTrace>);
        let mut outcomes: Vec<Option<Outcome<R>>> = Vec::with_capacity(nprocs);
        for _ in 0..nprocs {
            outcomes.push(None);
        }

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nprocs);
            for (rank, seed) in seeds.into_iter().enumerate() {
                let board = Arc::clone(&board);
                let sched = sched.clone();
                let cost = Arc::clone(&cost);
                let setup = &setup;
                let f = &f;
                let mut builder = std::thread::Builder::new().name(format!("node-{rank}"));
                if sched.is_some() {
                    // Multiplexed machines run thousands of mostly-parked
                    // threads; shrink their stacks from the platform default
                    // (often 8 MiB) so the address-space bill stays sane.
                    builder = builder.stack_size(MUX_STACK_BYTES);
                }
                let handle = builder
                    .spawn_scoped(scope, move || {
                        // Under Multiplexed, hold an execution slot for the
                        // whole computation except the channel parks inside
                        // `recv_timeout` (the yield points). The final
                        // release is idempotent, so it is safe no matter
                        // where a panic unwound from.
                        let slot = sched.as_ref().map(|s| Rc::new(SlotHandle::new(Arc::clone(s))));
                        if let Some(s) = &slot {
                            s.acquire();
                        }
                        // The endpoint is parked here so the failure path
                        // below can broadcast through it even though it is
                        // constructed inside the catch_unwind closure.
                        let ep: RefCell<Option<Rc<dyn Transport<M>>>> = RefCell::new(None);
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            let transport: Rc<dyn Transport<M>> = match seed {
                                NodeSeed::InProc(t) => Rc::new(t),
                                NodeSeed::Socket(cfg) => Rc::new(
                                    SocketTransport::establish(
                                        rank,
                                        nprocs,
                                        &cfg,
                                        Arc::clone(&board),
                                    )
                                    .unwrap_or_else(|e| {
                                        panic!("socket transport bootstrap failed: {e}")
                                    }),
                                ),
                            };
                            *ep.borrow_mut() = Some(Rc::clone(&transport));
                            let node = Node::new(
                                rank,
                                nprocs,
                                Rc::clone(&transport),
                                cost,
                                slot.clone(),
                                setup,
                            );
                            let r = f(&node);
                            let stats = node.stats();
                            let trace = node.take_trace();
                            transport.shutdown();
                            (r, stats, trace)
                        }));
                        if let Some(s) = &slot {
                            s.release();
                        }
                        match out {
                            Ok(out) => out,
                            Err(e) => {
                                // Publish rank + message (first writer wins)
                                // so blocked peers fail fast naming the root
                                // cause, then let the panic continue into
                                // the join below.
                                let msg = panic_message(e.as_ref());
                                board.record(rank, msg.to_string());
                                if let Some(t) = ep.borrow().as_ref() {
                                    t.signal_failure(rank, msg);
                                }
                                std::panic::resume_unwind(e);
                            }
                        }
                    })
                    .expect("spawn node thread");
                handles.push(handle);
            }
            let mut failures: Vec<(usize, String)> = Vec::new();
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(out) => outcomes[rank] = Some(out),
                    Err(e) => failures.push((rank, panic_message(e.as_ref()).to_string())),
                }
            }
            if !failures.is_empty() {
                let culprit = board.failed_rank();
                let (rank, msg) =
                    failures.iter().find(|(r, _)| *r as isize == culprit).unwrap_or(&failures[0]);
                panic!("node {rank} panicked: {msg}");
            }
        });

        let wall = start.elapsed();
        let mut results = Vec::with_capacity(nprocs);
        let mut stats = MachineStats::default();
        let mut node_traces = Vec::new();
        for out in outcomes {
            let (r, s, t) = out.expect("node produced no result");
            results.push(r);
            stats.nodes.push(s);
            if let Some(t) = t {
                node_traces.push(t);
            }
        }
        let trace = self.trace.enabled.then_some(MachineTrace { nodes: node_traces });
        let sim_ns = stats.sim_time();
        SpmdResult { results, stats, sim_ns, wall, trace }
    }

    /// Launch exactly one rank of a **multi-process** socket machine in
    /// this process, blocking until its closure returns. The other
    /// `nprocs - 1` ranks are expected to be peer OS processes calling
    /// `spawn_rank` with the same machine size and rendezvous address
    /// (rank 0 hosts the rendezvous).
    ///
    /// Requires `.transport(TransportKind::Socket(..))` with a concrete
    /// rendezvous address — every incompatibility is reported eagerly as
    /// a [`ConfigError`] before any socket exists.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap handshake fails or times out, or if `f`
    /// panics (after broadcasting the failure to peer processes, so their
    /// blocked ranks fail fast naming this rank).
    pub fn spawn_rank<M, R, F>(&self, rank: usize, f: F) -> Result<RankRun<R>, ConfigError>
    where
        M: MsgSize + WireCodec + Send + 'static,
        F: FnOnce(&Node<M>) -> R,
    {
        self.validate()?;
        let cfg = match &self.transport {
            TransportKind::Socket(c) => c.clone(),
            TransportKind::InProc => return Err(ConfigError::SpawnRankNeedsSocket),
        };
        if matches!(cfg.rendezvous, SockAddr::Auto) {
            return Err(ConfigError::RendezvousUnspecified);
        }
        if rank >= self.nprocs {
            return Err(ConfigError::RankOutOfRange { rank, nprocs: self.nprocs });
        }
        let start = Instant::now();
        let board = Arc::new(FailBoard::new());
        let setup = self.node_setup();
        let cost = Arc::new(self.cost.clone());
        let transport: Rc<dyn Transport<M>> = Rc::new(
            SocketTransport::establish(rank, self.nprocs, &cfg, Arc::clone(&board))
                .unwrap_or_else(|e| panic!("rank {rank}: socket transport bootstrap failed: {e}")),
        );
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let node = Node::new(rank, self.nprocs, Rc::clone(&transport), cost, None, &setup);
            let r = f(&node);
            let stats = node.stats();
            let trace = node.take_trace();
            (r, stats, trace)
        }));
        match out {
            Ok((result, stats, trace)) => {
                transport.shutdown();
                Ok(RankRun {
                    rank,
                    nprocs: self.nprocs,
                    result,
                    stats,
                    wall: start.elapsed(),
                    trace: trace.map(|t| MachineTrace { nodes: vec![t] }),
                })
            }
            Err(e) => {
                let msg = panic_message(e.as_ref()).to_string();
                board.record(rank, msg.clone());
                transport.signal_failure(rank, &msg);
                std::panic::resume_unwind(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_trace::EventKind;

    #[test]
    fn every_rank_runs_once() {
        let r =
            Spmd::builder().nprocs(8).cost(CostModel::free()).run::<(), _, _>(|node| node.rank());
        assert_eq!(r.results, (0..8).collect::<Vec<_>>());
        assert_eq!(r.stats.nodes.len(), 8);
        assert!(r.trace.is_none(), "tracing is off by default");
    }

    #[test]
    fn sim_time_is_max_clock() {
        let r = Spmd::builder().nprocs(4).cost(CostModel::free()).run::<(), _, _>(|node| {
            node.charge(node.rank() as u64 * 1000);
        });
        assert_eq!(r.sim_ns, 3000);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_nodes_rejected() {
        Spmd::builder().nprocs(MAX_NODES + 1).cost(CostModel::free()).run::<(), _, _>(|_| {});
    }

    #[test]
    #[should_panic(expected = "node 2 panicked: boom")]
    fn panics_propagate_with_rank() {
        Spmd::builder().nprocs(4).cost(CostModel::free()).run::<(), _, _>(|node| {
            if node.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "node 1 panicked: boom")]
    fn peer_death_reports_root_cause() {
        // Node 1 crashes while node 0 is blocked waiting on it. Node 0 must
        // detect the death promptly (well under the watchdog) and the
        // propagated panic must name the crashing node, not the waiter.
        let start = Instant::now();
        let r = std::panic::catch_unwind(|| {
            Spmd::builder().nprocs(2).cost(CostModel::free()).run::<u64, _, _>(|node| {
                if node.rank() == 1 {
                    panic!("boom");
                }
                node.poll_until("a message that never comes", |_, _| {}, || false);
            })
        });
        assert!(r.is_err());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "peer death took {:?} to detect; watchdog should not be involved",
            start.elapsed()
        );
        std::panic::resume_unwind(r.unwrap_err());
    }

    #[test]
    fn all_to_all_ring() {
        // Every node sends its rank to every other node and sums receipts.
        let n = 6usize;
        let r = Spmd::builder().nprocs(n).cost(CostModel::cm5()).run::<u64, _, _>(|node| {
            for dst in 0..n {
                if dst != node.rank() {
                    node.send(dst, node.rank() as u64 + 1);
                }
            }
            let acc = std::cell::Cell::new((0u64, 0usize));
            node.poll_until(
                "ring receipts",
                |_, env| {
                    let (sum, cnt) = acc.get();
                    acc.set((sum + env.msg, cnt + 1));
                },
                || acc.get().1 == n - 1,
            );
            acc.get().0
        });
        let total: u64 = (1..=n as u64).sum();
        for (rank, got) in r.results.iter().enumerate() {
            assert_eq!(*got, total - (rank as u64 + 1));
        }
    }

    #[test]
    fn traced_run_records_message_events() {
        let cost = CostModel::cm5();
        let r = Spmd::builder().nprocs(2).cost(cost).trace(TraceConfig::on()).run::<u64, _, _>(
            |node| {
                if node.rank() == 0 {
                    node.send(1, 42u64);
                } else {
                    let got = std::cell::Cell::new(0u64);
                    node.poll_until("payload", |_, env| got.set(env.msg), || got.get() != 0);
                }
            },
        );
        let trace = r.trace.expect("tracing was enabled");
        assert_eq!(trace.nodes.len(), 2);
        // Send/Recv events are per wire envelope; with coalescing off the
        // wire and logical totals coincide.
        assert_eq!(trace.send_count(), r.stats.total_wire_msgs());
        assert_eq!(r.stats.total_wire_msgs(), r.stats.total_msgs());
        let n1 = &trace.nodes[1];
        assert!(n1.events.iter().any(|e| matches!(e.kind, EventKind::Recv { src: 0, .. })));
        assert!(n1.events.iter().any(|e| matches!(e.kind, EventKind::Block { .. })));
        assert!(n1.events.iter().any(|e| matches!(e.kind, EventKind::Unblock { .. })));
        // Per-node virtual-time monotonicity (clocks never run backwards).
        for n in &trace.nodes {
            assert!(n.events.windows(2).all(|w| w[0].t <= w[1].t));
        }
        // The export round-trips through the validator.
        let check = ace_trace::validate_chrome_trace(&trace.to_chrome_json()).unwrap();
        assert_eq!(check.flow_starts, r.stats.total_wire_msgs());
        assert_eq!(check.flows_matched, r.stats.total_wire_msgs());
    }

    #[test]
    fn overflowed_ring_still_exports_valid_flows() {
        // A capacity-2 ring on both nodes evicts most Send events on the
        // sender while recvs referencing them may survive on the receiver
        // (and vice versa). The Chrome export must not emit dangling flow
        // ends for the orphaned recvs — the validator now rejects them.
        let r = Spmd::builder()
            .nprocs(2)
            .cost(CostModel::cm5())
            .trace(TraceConfig::with_capacity(2))
            .run::<u64, _, _>(|node| {
                if node.rank() == 0 {
                    for i in 0..10u64 {
                        node.send(1, i + 1);
                    }
                } else {
                    let seen = std::cell::Cell::new(0u64);
                    node.poll_until(
                        "10 msgs",
                        |_, _| seen.set(seen.get() + 1),
                        || seen.get() == 10,
                    );
                }
            });
        let trace = r.trace.expect("tracing was enabled");
        assert!(
            trace.nodes.iter().any(|n| n.dropped > 0),
            "test premise: the ring must actually overflow"
        );
        let check = ace_trace::validate_chrome_trace(&trace.to_chrome_json())
            .expect("overflowed trace must still export valid flows");
        assert!(check.flow_ends <= check.flow_starts);
        assert_eq!(check.flows_matched, check.flow_ends, "every emitted arrow has both ends");
    }

    #[test]
    fn deterministic_scheduler_replays_and_preserves_fifo() {
        // Five senders race two messages each at node 0, which only starts
        // popping after everything has arrived: the pop order is then
        // decided entirely by the seeded scheduler, so two runs with the
        // same seed must agree, and per-source order must stay FIFO.
        let run = |seed: u64| {
            let r = Spmd::builder()
                .nprocs(6)
                .cost(CostModel::cm5())
                .deterministic(seed)
                .run::<u64, _, _>(|node| {
                    if node.rank() == 0 {
                        std::thread::sleep(Duration::from_millis(100));
                        let order = std::cell::RefCell::new(Vec::new());
                        node.poll_until(
                            "10 msgs",
                            |_, env| order.borrow_mut().push((env.src, env.msg)),
                            || order.borrow().len() == 10,
                        );
                        order.into_inner()
                    } else {
                        node.send(0, node.rank() as u64 * 10 + 1);
                        node.send(0, node.rank() as u64 * 10 + 2);
                        Vec::new()
                    }
                });
            r.results[0].clone()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay the same pop order");
        for src in 1..=5usize {
            let msgs: Vec<u64> = a.iter().filter(|(s, _)| *s == src).map(|(_, m)| *m).collect();
            assert_eq!(
                msgs,
                vec![src as u64 * 10 + 1, src as u64 * 10 + 2],
                "per-source FIFO must be preserved"
            );
        }
    }

    #[test]
    fn coalesced_traced_run_draws_one_flow_per_wire_message() {
        // Five logical sends under FlushOnWait become one wire envelope:
        // one Send event carrying subs=5, one flow arrow, one Recv.
        let r = Spmd::builder()
            .nprocs(2)
            .cost(CostModel::cm5())
            .trace(TraceConfig::on())
            .coalesce(CoalescePolicy::FlushOnWait)
            .run::<u64, _, _>(|node| {
                if node.rank() == 0 {
                    for i in 0..5 {
                        node.send(1, i + 1);
                    }
                    node.flush_coalesced();
                } else {
                    let seen = std::cell::Cell::new(0u64);
                    node.poll_until("5 msgs", |_, _| seen.set(seen.get() + 1), || seen.get() == 5);
                }
            });
        assert_eq!(r.stats.total_msgs(), 5);
        assert_eq!(r.stats.total_wire_msgs(), 1);
        let trace = r.trace.expect("tracing was enabled");
        assert_eq!(trace.send_count(), 1);
        let subs: Vec<u32> = trace.nodes[0]
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Send { subs, .. } => Some(subs),
                _ => None,
            })
            .collect();
        assert_eq!(subs, vec![5]);
        let check = ace_trace::validate_chrome_trace(&trace.to_chrome_json()).unwrap();
        assert_eq!(check.flow_starts, 1);
        assert_eq!(check.flows_matched, 1);
    }

    // --- socket transport through the full builder/node stack ---

    #[test]
    fn socket_loopback_all_to_all() {
        let n = 4usize;
        let r = Spmd::builder()
            .nprocs(n)
            .cost(CostModel::cm5())
            .transport(TransportKind::socket_loopback())
            .run::<u64, _, _>(|node| {
                for dst in 0..n {
                    if dst != node.rank() {
                        node.send(dst, node.rank() as u64 + 1);
                    }
                }
                let acc = std::cell::Cell::new((0u64, 0usize));
                node.poll_until(
                    "ring receipts",
                    |_, env| {
                        let (sum, cnt) = acc.get();
                        acc.set((sum + env.msg, cnt + 1));
                    },
                    || acc.get().1 == n - 1,
                );
                acc.get().0
            });
        let total: u64 = (1..=n as u64).sum();
        for (rank, got) in r.results.iter().enumerate() {
            assert_eq!(*got, total - (rank as u64 + 1));
        }
        // Logical counts match the in-process machine; byte accounting
        // uses the socket framing header instead of the simulated one.
        assert_eq!(r.stats.total_msgs(), (n * (n - 1)) as u64);
        assert_eq!(
            r.stats.nodes[0].bytes_sent,
            (n - 1) as u64 * (8 + crate::transport::SOCKET_HEADER_BYTES as u64)
        );
    }

    #[test]
    fn socket_coalesced_batches_cross_the_wire() {
        // Coalescing must flow through the socket framing unchanged:
        // 5 logical messages, one wire envelope, delivered in order.
        let r = Spmd::builder()
            .nprocs(2)
            .cost(CostModel::cm5())
            .transport(TransportKind::socket_loopback())
            .coalesce(CoalescePolicy::FlushOnWait)
            .run::<u64, _, _>(|node| {
                if node.rank() == 0 {
                    for i in 0..5 {
                        node.send(1, i + 1);
                    }
                    node.flush_coalesced();
                    Vec::new()
                } else {
                    let seen = std::cell::RefCell::new(Vec::new());
                    node.poll_until(
                        "5 msgs",
                        |_, env| seen.borrow_mut().push(env.msg),
                        || seen.borrow().len() == 5,
                    );
                    seen.into_inner()
                }
            });
        assert_eq!(r.results[1], vec![1, 2, 3, 4, 5]);
        assert_eq!(r.stats.total_msgs(), 5);
        assert_eq!(r.stats.total_wire_msgs(), 1);
    }

    #[test]
    #[should_panic(expected = "node 1 panicked: boom")]
    fn socket_peer_death_reports_root_cause() {
        // Same contract as in-process: a rank dying over sockets must be
        // detected promptly by blocked peers via the Failed broadcast,
        // and the propagated panic names the root cause.
        let start = Instant::now();
        let r = std::panic::catch_unwind(|| {
            Spmd::builder()
                .nprocs(2)
                .cost(CostModel::free())
                .transport(TransportKind::socket_loopback())
                .run::<u64, _, _>(|node| {
                    if node.rank() == 1 {
                        panic!("boom");
                    }
                    node.poll_until("a message that never comes", |_, _| {}, || false);
                })
        });
        assert!(r.is_err());
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "socket peer death took {:?} to detect",
            start.elapsed()
        );
        std::panic::resume_unwind(r.unwrap_err());
    }

    // --- eager rejection of incompatible configurations (one per combo) ---

    fn socket_builder() -> MachineBuilder {
        Spmd::builder().nprocs(2).transport(TransportKind::socket_loopback())
    }

    #[test]
    fn socket_plus_deterministic_rejected_eagerly() {
        let b = socket_builder().deterministic(7);
        assert_eq!(b.validate(), Err(ConfigError::SocketDeterministic));
        assert_eq!(
            b.try_run::<u64, _, _>(|_| ()).err(),
            Some(ConfigError::SocketDeterministic),
            "try_run must reject before spawning anything"
        );
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn socket_plus_deterministic_panics_in_run() {
        socket_builder().deterministic(7).run::<u64, _, _>(|_| ());
    }

    #[test]
    fn socket_plus_multiplexed_rejected_eagerly() {
        let b = socket_builder().backend(ExecBackend::Multiplexed);
        assert_eq!(b.validate(), Err(ConfigError::SocketMultiplexed));
    }

    #[test]
    fn socket_beyond_rank_cap_rejected_eagerly() {
        let b = socket_builder().nprocs(SOCKET_MAX_RANKS + 1);
        assert_eq!(
            b.validate(),
            Err(ConfigError::SocketRanks { nprocs: SOCKET_MAX_RANKS + 1, max: SOCKET_MAX_RANKS })
        );
    }

    #[test]
    fn spawn_rank_requires_socket_transport() {
        let err = Spmd::builder().nprocs(2).spawn_rank::<u64, _, _>(0, |_| ()).err();
        assert_eq!(err, Some(ConfigError::SpawnRankNeedsSocket));
    }

    #[test]
    fn spawn_rank_rejects_out_of_range_rank() {
        let b = Spmd::builder()
            .nprocs(2)
            .transport(TransportKind::Socket(SocketCfg::unix("/tmp/ace-test-never-used.sock")));
        let err = b.spawn_rank::<u64, _, _>(5, |_| ()).err();
        assert_eq!(err, Some(ConfigError::RankOutOfRange { rank: 5, nprocs: 2 }));
    }

    #[test]
    fn spawn_rank_rejects_auto_rendezvous() {
        let err = socket_builder().spawn_rank::<u64, _, _>(0, |_| ()).err();
        assert_eq!(err, Some(ConfigError::RendezvousUnspecified));
    }
}
