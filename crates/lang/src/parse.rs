//! Recursive-descent parser for Ace-C.

use crate::ast::*;
use crate::lex::{Sp, Tok};

struct P<'a> {
    toks: &'a [Sp],
    pos: usize,
}

/// Parse a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns a message with the offending line.
pub fn parse(toks: &[Sp]) -> Result<Unit, String> {
    let mut p = P { toks, pos: 0 };
    let mut unit = Unit::default();
    while !p.at(&Tok::Eof) {
        if p.at(&Tok::KwStruct) && p.peek_is_struct_def() {
            unit.structs.push(p.struct_def()?);
        } else {
            unit.funcs.push(p.func()?);
        }
    }
    Ok(unit)
}

impl<'a> P<'a> {
    fn cur(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at(&self, t: &Tok) -> bool {
        self.cur() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> Result<(), String> {
        if self.at(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("line {}: expected {:?}, found {:?}", self.line(), t, self.cur()))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(format!("line {}: expected identifier, found {other:?}", self.line())),
        }
    }

    /// `struct Name {` begins a definition; `struct Name *` is a type use.
    fn peek_is_struct_def(&self) -> bool {
        matches!(self.toks.get(self.pos + 2).map(|s| &s.tok), Some(Tok::LBrace))
    }

    fn struct_def(&mut self) -> Result<StructDef, String> {
        self.eat(&Tok::KwStruct)?;
        let name = self.ident()?;
        self.eat(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.at(&Tok::RBrace) {
            let ty = self.ty()?;
            let fname = self.ident()?;
            self.eat(&Tok::Semi)?;
            fields.push((ty, fname));
        }
        self.eat(&Tok::RBrace)?;
        self.eat(&Tok::Semi)?;
        Ok(StructDef { name, fields })
    }

    /// Parse a type: `[shared] (int|double|void|space|struct N) *?`
    fn ty(&mut self) -> Result<Ty, String> {
        let shared = if self.at(&Tok::KwShared) {
            self.pos += 1;
            true
        } else {
            false
        };
        let base = match self.bump() {
            Tok::KwInt => Ty::Int,
            Tok::KwDouble => Ty::Double,
            Tok::KwVoid => Ty::Void,
            Tok::KwSpace => Ty::Space,
            Tok::KwStruct => Ty::Struct(self.ident()?),
            other => return Err(format!("line {}: expected type, found {other:?}", self.line())),
        };
        if self.at(&Tok::Star) {
            self.pos += 1;
            if !shared {
                return Err(format!(
                    "line {}: only pointers to shared data are supported (write `shared T*`)",
                    self.line()
                ));
            }
            Ok(Ty::SharedPtr(Box::new(base)))
        } else {
            if shared {
                return Err(format!(
                    "line {}: `shared` scalars must be accessed through regions; declare `shared T*`",
                    self.line()
                ));
            }
            Ok(base)
        }
    }

    fn looks_like_type(&self) -> bool {
        matches!(
            self.cur(),
            Tok::KwInt | Tok::KwDouble | Tok::KwVoid | Tok::KwSpace | Tok::KwShared | Tok::KwStruct
        )
    }

    fn func(&mut self) -> Result<Func, String> {
        let line = self.line();
        let ret = self.ty()?;
        let name = self.ident()?;
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                let ty = self.ty()?;
                let pname = self.ident()?;
                params.push((ty, pname));
                if self.at(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Func { name, ret, params, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, String> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, String> {
        let line = self.line();
        match self.cur() {
            Tok::KwIf => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then_blk = self.block()?;
                let else_blk = if self.at(&Tok::KwElse) {
                    self.pos += 1;
                    if self.at(&Tok::KwIf) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_blk, else_blk })
            }
            Tok::KwWhile => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwFor => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let init = Box::new(self.simple_stmt()?);
                self.eat(&Tok::Semi)?;
                let cond = self.expr()?;
                self.eat(&Tok::Semi)?;
                let step = Box::new(self.simple_stmt()?);
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            Tok::KwReturn => {
                self.pos += 1;
                if self.at(&Tok::Semi) {
                    self.pos += 1;
                    Ok(Stmt::Return(None, line))
                } else {
                    let e = self.expr()?;
                    self.eat(&Tok::Semi)?;
                    Ok(Stmt::Return(Some(e), line))
                }
            }
            Tok::KwBreak => {
                self.pos += 1;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Break(line))
            }
            Tok::KwContinue => {
                self.pos += 1;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.eat(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// A declaration, assignment, or expression statement (no trailing `;`).
    fn simple_stmt(&mut self) -> Result<Stmt, String> {
        let line = self.line();
        if self.looks_like_type() {
            let ty = self.ty()?;
            let name = self.ident()?;
            if self.at(&Tok::LBracket) {
                self.pos += 1;
                let len = match self.bump() {
                    Tok::Int(v) if v > 0 => v as usize,
                    other => {
                        return Err(format!(
                            "line {line}: local array length must be a positive literal, found {other:?}"
                        ))
                    }
                };
                self.eat(&Tok::RBracket)?;
                return Ok(Stmt::Decl { ty, name, array_len: Some(len), init: None, line });
            }
            let init = if self.at(&Tok::Assign) {
                self.pos += 1;
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl { ty, name, array_len: None, init, line });
        }
        // assignment or expression statement
        let e = self.expr()?;
        if self.at(&Tok::Assign) {
            self.pos += 1;
            let rhs = self.expr()?;
            let lhs = match e.kind {
                ExprKind::Var(n) => LValue::Var(n),
                ExprKind::Index(b, i) => LValue::Index(b, i),
                ExprKind::Member(b, f) => LValue::Member(b, f),
                ExprKind::Deref(b) => LValue::Deref(b),
                _ => return Err(format!("line {line}: invalid assignment target")),
            };
            return Ok(Stmt::Assign { lhs, rhs, line });
        }
        Ok(Stmt::Expr(e))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, String> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, String> {
        let mut e = self.and_expr()?;
        while self.at(&Tok::OrOr) {
            let line = self.line();
            self.pos += 1;
            let r = self.and_expr()?;
            e = Expr { kind: ExprKind::Bin(BinOp::Or, Box::new(e), Box::new(r)), line };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, String> {
        let mut e = self.cmp_expr()?;
        while self.at(&Tok::AndAnd) {
            let line = self.line();
            self.pos += 1;
            let r = self.cmp_expr()?;
            e = Expr { kind: ExprKind::Bin(BinOp::And, Box::new(e), Box::new(r)), line };
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, String> {
        let mut e = self.add_expr()?;
        loop {
            let op = match self.cur() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.pos += 1;
            let r = self.add_expr()?;
            e = Expr { kind: ExprKind::Bin(op, Box::new(e), Box::new(r)), line };
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> Result<Expr, String> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.cur() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.pos += 1;
            let r = self.mul_expr()?;
            e = Expr { kind: ExprKind::Bin(op, Box::new(e), Box::new(r)), line };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, String> {
        let mut e = self.unary()?;
        loop {
            let op = match self.cur() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            let line = self.line();
            self.pos += 1;
            let r = self.unary()?;
            e = Expr { kind: ExprKind::Bin(op, Box::new(e), Box::new(r)), line };
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, String> {
        let line = self.line();
        match self.cur() {
            Tok::Minus => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr { kind: ExprKind::Neg(Box::new(e)), line })
            }
            Tok::Not => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr { kind: ExprKind::Not(Box::new(e)), line })
            }
            Tok::Star => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr { kind: ExprKind::Deref(Box::new(e)), line })
            }
            Tok::LParen if self.cast_ahead() => {
                self.pos += 1;
                let ty = self.ty()?;
                self.eat(&Tok::RParen)?;
                let e = self.unary()?;
                Ok(Expr { kind: ExprKind::Cast(ty, Box::new(e)), line })
            }
            _ => self.postfix(),
        }
    }

    /// Is `( ... )` at the cursor a cast (starts with a type keyword)?
    fn cast_ahead(&self) -> bool {
        matches!(
            self.toks.get(self.pos + 1).map(|s| &s.tok),
            Some(
                Tok::KwInt
                    | Tok::KwDouble
                    | Tok::KwVoid
                    | Tok::KwSpace
                    | Tok::KwShared
                    | Tok::KwStruct
            )
        )
    }

    fn postfix(&mut self) -> Result<Expr, String> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.cur() {
                Tok::LBracket => {
                    self.pos += 1;
                    let idx = self.expr()?;
                    self.eat(&Tok::RBracket)?;
                    e = Expr { kind: ExprKind::Index(Box::new(e), Box::new(idx)), line };
                }
                Tok::Arrow => {
                    self.pos += 1;
                    let field = self.ident()?;
                    e = Expr { kind: ExprKind::Member(Box::new(e), field), line };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, String> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr { kind: ExprKind::Int(v), line }),
            Tok::Float(v) => Ok(Expr { kind: ExprKind::Float(v), line }),
            Tok::Str(s) => Ok(Expr { kind: ExprKind::Str(s), line }),
            Tok::Ident(name) => {
                if self.at(&Tok::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.at(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.at(&Tok::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    Ok(Expr { kind: ExprKind::Call(name, args), line })
                } else {
                    Ok(Expr { kind: ExprKind::Var(name), line })
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(format!("line {line}: unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_src(src: &str) -> Result<Unit, String> {
        parse(&lex(src)?)
    }

    #[test]
    fn minimal_main() {
        let u = parse_src("void main() { int x = 1; }").unwrap();
        assert_eq!(u.funcs.len(), 1);
        assert_eq!(u.funcs[0].name, "main");
    }

    #[test]
    fn table1_declarations() {
        // Table 1: pointer to shared integer; arrays through pointers.
        let u = parse_src(
            "void main() { shared int *p; shared double *a; a = (shared double*) gmalloc(s, 10); }",
        );
        assert!(u.is_ok(), "{u:?}");
    }

    #[test]
    fn struct_and_member() {
        let u = parse_src(
            "struct node { double val; int next; };
             double get(shared struct node *n) { return n->val; }
             void main() { }",
        )
        .unwrap();
        assert_eq!(u.structs[0].fields.len(), 2);
        assert_eq!(u.funcs[0].name, "get");
    }

    #[test]
    fn control_flow_forms() {
        let src = "void main() {
            int i;
            for (i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { continue; } else { }
                while (i > 5) { break; }
            }
            return;
        }";
        parse_src(src).unwrap();
    }

    #[test]
    fn rejects_local_pointers() {
        assert!(parse_src("void main() { int *p; }").is_err());
    }

    #[test]
    fn rejects_bare_shared_scalar() {
        assert!(parse_src("void main() { shared int x; }").is_err());
    }

    #[test]
    fn precedence_binds_mul_over_add() {
        let u = parse_src("void main() { int x = 1 + 2 * 3; }").unwrap();
        let Stmt::Decl { init: Some(e), .. } = &u.funcs[0].body[0] else { panic!() };
        let ExprKind::Bin(BinOp::Add, _, r) = &e.kind else { panic!("not add: {e:?}") };
        assert!(matches!(r.kind, ExprKind::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn casts_and_deref() {
        parse_src("void main() { shared int *p; int v = *p; p = (shared int*) bcast(0, (int)p); }")
            .unwrap();
    }
}
