//! The conformance checker (`ace-check`) against the real workloads and
//! against injected violations.
//!
//! Two halves. First, the clean bill of health: all five paper benchmarks
//! run to completion under `CheckMode::Fail` — where the first violation
//! panics the offending node — with zero violations counted, in both the
//! SC and custom-protocol variants. Second, the checker's teeth: a
//! deliberately unfenced no-op protocol (exclusive grants, hooks that
//! enforce nothing) lets tests commit each class of violation and assert
//! the exact structured [`AceError::Conformance`] report — region, node,
//! and offending action.

use std::rc::Rc;

use ace_apps::{barnes, bsc, em3d, tsp, water, AceDsm, Variant};
use ace_core::{
    run_ace_with, AceError, AceRt, CheckMode, ConformanceKind, CostModel, MachineBuilder, ProtoMsg,
    Protocol, RegionEntry, Spmd,
};

fn checked(nprocs: usize, mode: CheckMode) -> MachineBuilder {
    Spmd::builder().nprocs(nprocs).cost(CostModel::cm5()).check(mode)
}

/// Run one benchmark kernel under `CheckMode::Fail` on 4 nodes and assert
/// it finishes with a finite verification value and zero violations.
fn assert_conformant<F>(name: &str, f: F)
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    let r = run_ace_with(checked(4, CheckMode::Fail), |rt| {
        let d = AceDsm::new(rt);
        f(&d)
    });
    assert!(r.results[0].is_finite(), "{name}: lost its verification value");
    assert_eq!(r.stats.total_violations(), 0, "{name}: checker counted violations");
}

#[test]
fn em3d_runs_violation_free_under_fail() {
    for v in [Variant::Sc, Variant::Custom] {
        assert_conformant("em3d", |d| em3d::run(d, &em3d::Params::small(), v));
    }
}

#[test]
fn water_runs_violation_free_under_fail() {
    for v in [Variant::Sc, Variant::Custom] {
        assert_conformant("water", |d| water::run(d, &water::Params::small(), v));
    }
}

#[test]
fn barnes_runs_violation_free_under_fail() {
    for v in [Variant::Sc, Variant::Custom] {
        assert_conformant("barnes", |d| barnes::run(d, &barnes::Params::small(), v));
    }
}

#[test]
fn bsc_runs_violation_free_under_fail() {
    for v in [Variant::Sc, Variant::Custom] {
        assert_conformant("bsc", |d| bsc::run(d, &bsc::Params::small(), v));
    }
}

#[test]
fn tsp_runs_violation_free_under_fail() {
    for v in [Variant::Sc, Variant::Custom] {
        assert_conformant("tsp", |d| tsp::run(d, &tsp::Params::small(), v));
    }
}

/// A protocol that grants nothing and enforces nothing: every hook is a
/// no-op and `grants()` stays at the exclusive default. Data is always
/// locally valid (regions never migrate), so a test can commit any
/// access-control sin it likes and the only witness is the checker.
struct Unfenced;

impl Protocol for Unfenced {
    fn name(&self) -> &'static str {
        "unfenced"
    }
    fn start_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn start_write(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn end_write(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn handle(&self, _rt: &AceRt, _e: &RegionEntry, _msg: ProtoMsg, _src: usize) {}
    fn flush(&self, _rt: &AceRt, _e: &RegionEntry) {}
}

#[test]
fn read_outside_section_is_reported() {
    let r = checked(1, CheckMode::Log).run(|node| {
        let rt = AceRt::new(node);
        let s = rt.new_space(Rc::new(Unfenced));
        let rid = rt.gmalloc::<u64>(s, 1);
        rt.map(rid);
        let _ = rt.with::<u64, _>(rid, |m| m[0]);
        let v = rt.violations();
        rt.shutdown();
        (rid, v)
    });
    let (rid, v) = &r.results[0];
    assert_eq!(
        v.as_slice(),
        [AceError::Conformance {
            region: *rid,
            rank: 0,
            kind: ConformanceKind::AccessOutsideSection { action: "read" },
        }]
    );
}

#[test]
fn write_under_read_grant_is_reported() {
    let r = checked(1, CheckMode::Log).run(|node| {
        let rt = AceRt::new(node);
        let s = rt.new_space(Rc::new(Unfenced));
        let rid = rt.gmalloc::<u64>(s, 1);
        rt.map(rid);
        rt.start_read(rid);
        rt.with_mut::<u64, _>(rid, |m| m[0] = 7);
        rt.end_read(rid);
        let v = rt.violations();
        rt.shutdown();
        (rid, v)
    });
    let (rid, v) = &r.results[0];
    assert_eq!(
        v.as_slice(),
        [AceError::Conformance {
            region: *rid,
            rank: 0,
            kind: ConformanceKind::WriteUnderReadGrant,
        }]
    );
}

#[test]
fn write_outside_any_section_is_reported() {
    let r = checked(1, CheckMode::Log).run(|node| {
        let rt = AceRt::new(node);
        let s = rt.new_space(Rc::new(Unfenced));
        let rid = rt.gmalloc::<u64>(s, 1);
        rt.map(rid);
        rt.with_mut::<u64, _>(rid, |m| m[0] = 7);
        let v = rt.violations();
        rt.shutdown();
        (rid, v)
    });
    let (rid, v) = &r.results[0];
    assert_eq!(
        v.as_slice(),
        [AceError::Conformance {
            region: *rid,
            rank: 0,
            kind: ConformanceKind::WriteOutsideSection,
        }]
    );
}

#[test]
fn section_left_open_at_exit_is_reported() {
    let r = checked(1, CheckMode::Log).run(|node| {
        let rt = AceRt::new(node);
        let s = rt.new_space(Rc::new(Unfenced));
        let rid = rt.gmalloc::<u64>(s, 1);
        rt.map(rid);
        rt.start_write(rid);
        // Never closed: the shutdown sweep must flag the leak.
        rt.shutdown();
        (rid, rt.violations())
    });
    let (rid, v) = &r.results[0];
    assert_eq!(v.len(), 1, "exactly the leak: {v:?}");
    match &v[0] {
        AceError::Conformance {
            region,
            rank: 0,
            kind: ConformanceKind::SectionLeftOpen { write: true, .. },
        } => assert_eq!(region, rid),
        other => panic!("wrong report: {other}"),
    }
}

#[test]
fn concurrent_conflicting_sections_across_nodes_are_reported() {
    // Both nodes hold a write section on one region with no intervening
    // messages: vector-clock-concurrent, and never granted by the
    // exclusive `Unfenced` protocol. The analysis runs on node 0 over the
    // gathered section histories, so node 0 carries the report.
    let r = checked(2, CheckMode::Log).run(|node| {
        let rt = AceRt::new(node);
        let s = rt.new_space(Rc::new(Unfenced));
        let rid = if rt.rank() == 0 {
            let rid = rt.gmalloc::<u64>(s, 1);
            rt.bcast(0, &[rid.0])[0]
        } else {
            rt.bcast(0, &[])[0]
        };
        let rid = ace_core::RegionId(rid);
        rt.map(rid);
        rt.machine_barrier();
        rt.start_write(rid);
        rt.with_mut::<u64, _>(rid, |m| m[0] = rt.rank() as u64);
        rt.end_write(rid);
        rt.machine_barrier();
        rt.shutdown();
        (rid, rt.violations())
    });
    let (rid, v0) = &r.results[0];
    let (_, v1) = &r.results[1];
    assert!(v1.is_empty(), "only the analyzing node reports: {v1:?}");
    assert_eq!(v0.len(), 1, "exactly one conflict: {v0:?}");
    match &v0[0] {
        AceError::Conformance {
            region,
            kind: ConformanceKind::ConflictingSections { a, b },
            ..
        } => {
            assert_eq!(region, rid);
            assert!(a.write && b.write, "both sides are write sections: {a} / {b}");
            let mut ranks = [a.rank, b.rank];
            ranks.sort_unstable();
            assert_eq!(ranks, [0, 1]);
            assert_eq!(a.proto, "unfenced");
            // The section histories carry the timestamps the report
            // prints, so a human can line the two sections up.
            assert!(a.close_t >= a.open_t && b.close_t >= b.open_t);
        }
        other => panic!("wrong report: {other}"),
    }
    assert_eq!(r.stats.total_violations(), 1);
}

#[test]
fn causally_ordered_sections_do_not_conflict() {
    // Same two write sections, but separated by a machine barrier: the
    // barrier's messages carry vector clocks, so the sections are ordered
    // and the exclusive grant is honored.
    let r = checked(2, CheckMode::Log).run(|node| {
        let rt = AceRt::new(node);
        let s = rt.new_space(Rc::new(Unfenced));
        let rid = if rt.rank() == 0 {
            let rid = rt.gmalloc::<u64>(s, 1);
            rt.bcast(0, &[rid.0])[0]
        } else {
            rt.bcast(0, &[])[0]
        };
        let rid = ace_core::RegionId(rid);
        rt.map(rid);
        rt.machine_barrier();
        if rt.rank() == 0 {
            rt.start_write(rid);
            rt.with_mut::<u64, _>(rid, |m| m[0] = 1);
            rt.end_write(rid);
        }
        rt.machine_barrier();
        if rt.rank() == 1 {
            rt.start_write(rid);
            rt.with_mut::<u64, _>(rid, |m| m[0] = 2);
            rt.end_write(rid);
        }
        rt.machine_barrier();
        rt.shutdown();
        rt.violations()
    });
    assert!(r.results.iter().all(|v| v.is_empty()), "{:?}", r.results);
    assert_eq!(r.stats.total_violations(), 0);
}

#[test]
#[should_panic(expected = "conformance violation")]
fn fail_mode_panics_on_first_violation() {
    let _ = checked(1, CheckMode::Fail).run(|node| {
        let rt = AceRt::new(node);
        let s = rt.new_space(Rc::new(Unfenced));
        let rid = rt.gmalloc::<u64>(s, 1);
        rt.map(rid);
        let _ = rt.with::<u64, _>(rid, |m| m[0]);
        rt.shutdown();
    });
}
