//! Fetch-and-add counter protocol (TSP's job counter).
//!
//! §5.2: "In TSP, the improved performance is due to better management of
//! accesses to a counter that is used to assign jobs to processors." The
//! TSP source acquires the counter's lock, reads it, writes the
//! incremented value, and unlocks — five protocol operations, each a
//! potential round trip under the default protocol. This protocol
//! reinterprets that *same source code*: `lock` performs a single
//! fetch-and-add round trip at the home node and installs the fetched
//! value in the local copy; the read inside the section hits locally, the
//! write updates only the (ignored) local copy, and `unlock` is free.
//!
//! The region is interpreted as a single `u64` counter. The `stride` is
//! what home adds per acquisition; applications that advance the counter
//! by one per job use the default of 1.

use ace_core::{AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry};

/// Wire opcodes.
pub mod op {
    /// Remote → home: fetch current value and add `arg`.
    pub const FADD: u16 = 1;
    /// Home → remote: the pre-add value.
    pub const VALUE: u16 = 2;

    /// Trace label for an opcode.
    pub fn name(op: u16) -> &'static str {
        match op {
            FADD => "fadd",
            VALUE => "value",
            _ => "op",
        }
    }
}

const VALUE_WAIT: u64 = 1 << 9;

/// The fetch-and-add counter protocol.
pub struct FetchAddCounter {
    stride: u64,
}

impl Default for FetchAddCounter {
    fn default() -> Self {
        FetchAddCounter { stride: 1 }
    }
}

impl FetchAddCounter {
    /// Counter protocol advancing by 1 per `lock`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter protocol advancing by `stride` per `lock`.
    pub fn with_stride(stride: u64) -> Self {
        FetchAddCounter { stride }
    }
}

impl Protocol for FetchAddCounter {
    fn name(&self) -> &'static str {
        "FetchAdd"
    }

    fn op_name(&self, op: u16) -> &'static str {
        op::name(op)
    }

    fn optimizable(&self) -> bool {
        true
    }

    fn null_actions(&self) -> Actions {
        Actions::START_READ
            .union(Actions::END_READ)
            .union(Actions::START_WRITE)
            .union(Actions::END_WRITE)
            .union(Actions::UNLOCK)
            .union(Actions::UNMAP)
    }

    // Sections carry no coherence meaning here — mutation happens under
    // the lock, and lock holders serialize at the home — so any section
    // combination may overlap.
    fn grants(&self) -> GrantSet {
        GrantSet::concurrent()
    }

    // All four access hooks are unconditional no-ops (the protocol's work
    // happens in `lock`), so every access is fast in every state.
    fn on_create(&self, _rt: &AceRt, e: &RegionEntry) {
        e.fast.set(Actions::ACCESS);
    }

    fn on_map(&self, _rt: &AceRt, e: &RegionEntry) {
        e.fast.set(Actions::ACCESS);
    }

    fn adopt(&self, _rt: &AceRt, e: &RegionEntry) {
        e.fast.set(Actions::ACCESS);
    }

    fn start_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn start_write(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn end_write(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn lock(&self, rt: &AceRt, e: &RegionEntry) {
        rt.counters_mut(|c| c.locks += 1);
        if e.is_home_of(rt.rank()) {
            // The home reads the master in place. The locked section is
            // atomic with respect to remote fetch-and-adds because nothing
            // inside it polls the network (all its hooks are null), so the
            // application's `counter = counter + 1` write advances the
            // master exactly like a remote acquisition does.
            return;
        }
        e.aux.set(e.aux.get() | VALUE_WAIT);
        rt.send_proto(e.id.home(), e.id, op::FADD, self.stride, None);
        rt.wait("fetch-and-add value", || e.aux.get() & VALUE_WAIT == 0);
    }

    fn unlock(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, _src: usize) {
        let from = msg.from as usize;
        match msg.op {
            op::FADD => {
                let old = e.with_data_mut(|d| {
                    let old = d[0];
                    d[0] = old + msg.arg;
                    old
                });
                rt.send_proto(from, e.id, op::VALUE, old, None);
            }
            op::VALUE => {
                e.with_data_mut(|d| d[0] = msg.arg);
                e.aux.set(e.aux.get() & !VALUE_WAIT);
            }
            other => panic!("FetchAdd: unknown opcode {other}"),
        }
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) {
            e.st.set(crate::states::R_INVALID);
        }
        e.aux.set(0);
        e.fast.set(Actions::empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, CostModel, RegionId};
    use std::rc::Rc;

    fn setup(rt: &AceRt) -> RegionId {
        let s = rt.new_space(Rc::new(FetchAddCounter::new()));
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 1).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        rid
    }

    /// The TSP idiom: lock, read ticket, write ticket+1, unlock.
    fn take_ticket(rt: &AceRt, rid: RegionId) -> u64 {
        rt.lock(rid);
        rt.start_read(rid);
        let t = rt.with::<u64, _>(rid, |d| d[0]);
        rt.end_read(rid);
        rt.start_write(rid);
        rt.with_mut::<u64, _>(rid, |d| d[0] = t + 1);
        rt.end_write(rid);
        rt.unlock(rid);
        t
    }

    #[test]
    fn tickets_are_unique_and_dense() {
        const PER: usize = 25;
        let n = 4;
        let r = run_ace(n, CostModel::free(), |rt| {
            let rid = setup(rt);
            rt.machine_barrier();
            let mine: Vec<u64> = (0..PER).map(|_| take_ticket(rt, rid)).collect();
            rt.machine_barrier();
            mine
        });
        let mut all: Vec<u64> = r.results.into_iter().flatten().collect();
        all.sort_unstable();
        let want: Vec<u64> = (0..(PER * n) as u64).collect();
        assert_eq!(all, want, "every ticket issued exactly once");
    }

    #[test]
    fn one_round_trip_per_remote_acquisition() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let rid = setup(rt);
            rt.machine_barrier();
            let before = rt.node().stats().logical_msgs;
            if rt.rank() == 1 {
                for _ in 0..10 {
                    take_ticket(rt, rid);
                }
            }
            let sent = rt.node().stats().logical_msgs - before;
            rt.machine_barrier();
            sent
        });
        // Remote acquirer: exactly one FADD per ticket.
        assert_eq!(r.results[1], 10);
    }

    #[test]
    fn home_acquisitions_are_message_free() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let rid = setup(rt);
            rt.machine_barrier();
            let before = rt.node().stats().logical_msgs;
            if rt.rank() == 0 {
                for _ in 0..10 {
                    take_ticket(rt, rid);
                }
            }
            let sent = rt.node().stats().logical_msgs - before;
            rt.machine_barrier();
            sent
        });
        assert_eq!(r.results[0], 0);
    }
}
