//! Pipelined delta-write protocol (Water's inter-molecular phase).
//!
//! §5.2: "In Water, we improve performance by pipelining writes to a
//! molecule during the inter-molecular calculation phase". In that phase
//! every processor *accumulates* force contributions into many molecules.
//! Under an invalidation protocol each contribution ping-pongs exclusive
//! ownership; here a writer instead:
//!
//! 1. fetches a copy on first touch and snapshots it into a *twin*,
//! 2. writes locally as often as it likes,
//! 3. at `end_write`, sends home only the f64 *delta* against the twin and
//!    immediately continues (the write is pipelined, not awaited),
//! 4. at the space barrier, waits until homes have acknowledged all of its
//!    deltas ("a protocol for split-phase memory operations ... must check
//!    that all outstanding memory operations have completed", §2.1).
//!
//! Homes *add* incoming deltas into the master copy, so concurrent
//! contributions from different writers commute. After the barrier every
//! cached copy is invalidated; the next read refetches the accumulated
//! master. Region data is interpreted as `f64`s, matching its use for
//! force accumulation.

use ace_core::{AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry, SpaceEntry};

use crate::states::*;

/// Wire opcodes.
pub mod op {
    /// Remote → home: fetch a copy.
    pub const FETCH: u16 = 1;
    /// Home → remote: copy contents.
    pub const DATA: u16 = 2;
    /// Writer → home: f64 deltas to accumulate.
    pub const DELTA: u16 = 3;
    /// Home → writer: delta applied.
    pub const DELTA_ACK: u16 = 4;

    /// Trace label for an opcode.
    pub fn name(op: u16) -> &'static str {
        match op {
            FETCH => "fetch",
            DATA => "data",
            DELTA => "delta",
            DELTA_ACK => "delta_ack",
            _ => "op",
        }
    }
}

/// The pipelined delta-write protocol.
#[derive(Default)]
pub struct PipelinedWrite;

impl PipelinedWrite {
    /// Constructor for registry use.
    pub fn new() -> Self {
        PipelinedWrite
    }

    fn fetch(&self, rt: &AceRt, e: &RegionEntry) {
        rt.counters_mut(|c| c.read_misses += 1);
        e.st.set(R_WAIT_READ);
        rt.send_proto(e.id.home(), e.id, op::FETCH, 0, None);
        rt.wait("pipelined fetch", || e.st.get() == R_SHARED);
    }

    fn ensure_copy(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) && e.st.get() == R_INVALID {
            self.fetch(rt, e);
        }
    }

    /// Recompute the entry's fast mask. `end_read` is an unconditional
    /// no-op. Starts are no-ops once a copy is resident (and, for writes,
    /// the twin snapshot exists — the home writes the master directly and
    /// never twins). A remote `end_write` always ships a delta home, so it
    /// is only ever fast at home.
    fn refresh_fast(&self, rt: &AceRt, e: &RegionEntry) {
        let mut fast = Actions::END_READ;
        if e.is_home_of(rt.rank()) {
            fast = fast
                .union(Actions::START_READ)
                .union(Actions::START_WRITE)
                .union(Actions::END_WRITE);
        } else if e.st.get() != R_INVALID {
            fast = fast.union(Actions::START_READ);
            if e.twin.borrow().is_some() {
                fast = fast.union(Actions::START_WRITE);
            }
        }
        e.fast.set(fast);
    }
}

impl Protocol for PipelinedWrite {
    fn name(&self) -> &'static str {
        "Pipelined"
    }

    fn op_name(&self, op: u16) -> &'static str {
        op::name(op)
    }

    fn optimizable(&self) -> bool {
        true
    }

    fn null_actions(&self) -> Actions {
        Actions::END_READ.union(Actions::UNMAP)
    }

    // Pipelined updates deliberately relax consistency: writers stream
    // updates to standing copies without waiting, so overlapping
    // sections of any kind are part of the contract.
    fn grants(&self) -> GrantSet {
        GrantSet::concurrent()
    }

    fn on_create(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn on_map(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn start_read(&self, rt: &AceRt, e: &RegionEntry) {
        self.ensure_copy(rt, e);
        self.refresh_fast(rt, e);
    }

    fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn start_write(&self, rt: &AceRt, e: &RegionEntry) {
        self.ensure_copy(rt, e);
        if !e.is_home_of(rt.rank()) && e.twin.borrow().is_none() {
            *e.twin.borrow_mut() = Some(e.clone_data());
        }
        self.refresh_fast(rt, e);
    }

    fn end_write(&self, rt: &AceRt, e: &RegionEntry) {
        if e.is_home_of(rt.rank()) {
            return; // wrote the master directly
        }
        let delta: std::sync::Arc<[u64]> = {
            let data = e.data.borrow();
            let twin = e.twin.borrow();
            let twin = twin.as_deref().expect("write section had a twin");
            data.iter()
                .zip(twin.iter())
                .map(|(&d, &t)| (f64::from_bits(d) - f64::from_bits(t)).to_bits())
                .collect()
        };
        // The twin advances to the current local contents so the next
        // write section diffs only its own writes.
        *e.twin.borrow_mut() = Some(e.clone_data());
        let s = rt.space(e.space);
        s.outstanding.set(s.outstanding.get() + 1);
        rt.send_proto(e.id.home(), e.id, op::DELTA, 0, Some(delta));
    }

    fn barrier(&self, rt: &AceRt, s: &SpaceEntry) {
        // Drain our in-flight deltas, drop our cached copies (a local
        // action), then rendezvous once. Every other writer's deltas were
        // likewise acked before that writer arrived, so post-barrier
        // re-fetches observe the fully accumulated master.
        rt.wait("pipelined deltas drain", || s.outstanding.get() == 0);
        for e in rt.regions_of_space(s.id) {
            if !e.is_home_of(rt.rank()) {
                e.st.set(R_INVALID);
                *e.twin.borrow_mut() = None;
                self.refresh_fast(rt, &e);
            }
        }
        rt.space_barrier(s);
    }

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, _src: usize) {
        let from = msg.from as usize;
        match msg.op {
            // home side
            op::FETCH => {
                rt.send_proto(from, e.id, op::DATA, 0, Some(e.clone_data()));
            }
            op::DELTA => {
                let delta = msg.data.as_deref().expect("delta carries data");
                e.with_data_mut(|data| {
                    for (d, &x) in data.iter_mut().zip(delta.iter()) {
                        *d = (f64::from_bits(*d) + f64::from_bits(x)).to_bits();
                    }
                });
                rt.send_proto(from, e.id, op::DELTA_ACK, 0, None);
            }
            // writer side
            op::DELTA_ACK => {
                let s = rt.space(e.space);
                debug_assert!(s.outstanding.get() > 0);
                s.outstanding.set(s.outstanding.get() - 1);
            }
            // reader side
            op::DATA => {
                e.install_shared(msg.data.expect("fetch reply carries data"));
                e.st.set(R_SHARED);
            }
            other => panic!("Pipelined: unknown opcode {other}"),
        }
        self.refresh_fast(rt, e);
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        // Deltas already in flight are drained by change_protocol's
        // outstanding wait; local copies just drop.
        if !e.is_home_of(rt.rank()) {
            e.st.set(R_INVALID);
            *e.twin.borrow_mut() = None;
        }
        e.aux.set(0);
        // Hand the region to the next protocol slow; it declares its own
        // fast states in `adopt`.
        e.fast.set(Actions::empty());
    }

    fn adopt(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, CostModel, RegionId, SpaceId};
    use std::rc::Rc;

    fn setup(rt: &AceRt, words: usize) -> (SpaceId, RegionId) {
        let s = rt.new_space(Rc::new(PipelinedWrite));
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc::<f64>(s, words).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        (s, rid)
    }

    #[test]
    fn concurrent_accumulation_sums_exactly() {
        // Every node adds its (rank+1) into slot 0 five times; after the
        // barrier the master holds the full sum — no update is lost even
        // though no node ever held exclusive access.
        let n = 4;
        let r = run_ace(n, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 4);
            rt.barrier(s);
            for _ in 0..5 {
                rt.start_write(rid);
                rt.with_mut::<f64, _>(rid, |d| d[0] += (rt.rank() + 1) as f64);
                rt.end_write(rid);
            }
            rt.barrier(s);
            rt.start_read(rid);
            let v = rt.with::<f64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            v
        });
        let want = 5.0 * (1 + 2 + 3 + 4) as f64;
        assert_eq!(r.results, vec![want; 4]);
    }

    #[test]
    fn deltas_are_pipelined_not_awaited() {
        // end_write returns immediately; outstanding acks are nonzero
        // until the barrier.
        let r = run_ace(2, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 1);
            rt.barrier(s);
            let mut saw_outstanding = false;
            if rt.rank() == 1 {
                for _ in 0..10 {
                    rt.start_write(rid);
                    rt.with_mut::<f64, _>(rid, |d| d[0] += 1.0);
                    rt.end_write(rid);
                    if rt.space(s).outstanding.get() > 0 {
                        saw_outstanding = true;
                    }
                }
            }
            rt.barrier(s);
            saw_outstanding || rt.rank() == 0
        });
        assert!(r.results.iter().all(|&x| x));
    }

    #[test]
    fn reads_refetch_after_barrier() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 1);
            rt.barrier(s);
            if rt.rank() == 0 {
                // Home writes master directly.
                rt.start_write(rid);
                rt.with_mut::<f64, _>(rid, |d| d[0] = 6.5);
                rt.end_write(rid);
            }
            rt.barrier(s);
            rt.start_read(rid);
            let v = rt.with::<f64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![6.5, 6.5]);
    }

    #[test]
    fn twin_isolates_successive_sections() {
        // Two successive write sections from the same node must not
        // double-send the first section's contribution.
        let r = run_ace(2, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 1);
            rt.barrier(s);
            if rt.rank() == 1 {
                rt.start_write(rid);
                rt.with_mut::<f64, _>(rid, |d| d[0] += 3.0);
                rt.end_write(rid);
                rt.start_write(rid);
                rt.with_mut::<f64, _>(rid, |d| d[0] += 4.0);
                rt.end_write(rid);
            }
            rt.barrier(s);
            rt.start_read(rid);
            let v = rt.with::<f64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![7.0, 7.0]);
    }
}
