//! The per-node event sink: a preallocated ring buffer.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use crate::timeline::NodeTrace;
use crate::{EventKind, TraceConfig, TraceEvent};

/// A node-local event ring. Owned by exactly one simulated processor, so
/// interior mutability is `Cell`/`RefCell` — never shared across threads.
///
/// When tracing is disabled the sink holds no buffer at all and
/// [`TraceSink::emit`] is a single predictable branch; hot paths guard
/// any event-construction work behind [`TraceSink::enabled`] so the
/// disabled cost is exactly that branch.
pub struct TraceSink {
    enabled: bool,
    capacity: usize,
    events: RefCell<VecDeque<TraceEvent>>,
    dropped: Cell<u64>,
}

impl TraceSink {
    /// Build a sink from a configuration, preallocating the ring.
    pub fn new(cfg: &TraceConfig) -> Self {
        TraceSink {
            enabled: cfg.enabled,
            capacity: cfg.capacity,
            events: RefCell::new(if cfg.enabled {
                VecDeque::with_capacity(cfg.capacity)
            } else {
                VecDeque::new()
            }),
            dropped: Cell::new(0),
        }
    }

    /// A permanently-disabled sink.
    pub fn disabled() -> Self {
        Self::new(&TraceConfig::off())
    }

    /// Whether events are being recorded. Instrumentation points check
    /// this before building an [`EventKind`].
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event at virtual time `t`. A full ring drops its oldest
    /// event (the tail of a run is the interesting part for diagnosis).
    #[inline]
    pub fn emit(&self, t: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let mut q = self.events.borrow_mut();
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        q.push_back(TraceEvent { t, kind });
    }

    /// Events dropped to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether no event has been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the buffer into a [`NodeTrace`] for merging. Called once per
    /// node when its program finishes.
    pub fn take(&self, rank: usize) -> NodeTrace {
        NodeTrace {
            rank,
            dropped: self.dropped.get(),
            events: self.events.borrow_mut().drain(..).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let s = TraceSink::disabled();
        assert!(!s.enabled());
        s.emit(5, EventKind::Block { what: "x".into() });
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let s = TraceSink::new(&TraceConfig::with_capacity(2));
        for t in 0..5u64 {
            s.emit(t, EventKind::Send { dst: 0, tag: "m", bytes: 8, subs: 1 });
        }
        assert_eq!(s.dropped(), 3);
        let nt = s.take(3);
        assert_eq!(nt.rank, 3);
        assert_eq!(nt.dropped, 3);
        assert_eq!(nt.events.iter().map(|e| e.t).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn take_drains() {
        let s = TraceSink::new(&TraceConfig::with_capacity(8));
        s.emit(1, EventKind::Block { what: "w".into() });
        assert_eq!(s.take(0).events.len(), 1);
        assert!(s.is_empty());
    }
}
