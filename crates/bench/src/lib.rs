//! Figure/table harnesses reproducing the paper's evaluation (§5).
//!
//! * [`fig7`] — the runtime comparisons: Ace vs CRL under the default
//!   protocol (Figure 7a) and SC vs application-specific protocols in Ace
//!   (Figure 7b).
//! * [`acec`] — the Ace-C benchmark kernels and their hand-written
//!   runtime-system counterparts for the compiler evaluation (Table 4).
//!
//! Binaries `fig7a`, `fig7b`, `table4`, and `ablation` print the tables;
//! the Criterion benches under `benches/` wrap the same computations.

// The Table 4 kernels transliterate the paper's C loops; explicit indexing is the idiom.
#![allow(clippy::needless_range_loop)]

pub mod acec;
pub mod fig7;
pub mod json;

/// Simulated milliseconds, the unit all tables print.
pub fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Parse a comma-separated application list following `flag` in `args`.
///
/// Shared by the `scaling --app` and `fig7b --check` front-ends so list
/// handling stays identical: entries are split on commas, trimmed, and
/// empty entries dropped. When the flag is absent, or is immediately
/// followed by another `--option` instead of a value, `default` is
/// returned.
pub fn parse_apps(args: &[String], flag: &str, default: &[&str]) -> Vec<String> {
    let list = args
        .iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|s| !s.starts_with("--"));
    match list {
        None => default.iter().map(|s| s.to_string()).collect(),
        Some(s) => s.split(',').map(|a| a.trim().to_string()).filter(|a| !a.is_empty()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_apps_splits_trims_and_drops_empties() {
        let args = argv(&["bench", "--app", " em3d, water ,,barnes"]);
        assert_eq!(parse_apps(&args, "--app", &["tsp"]), vec!["em3d", "water", "barnes"]);
    }

    #[test]
    fn parse_apps_falls_back_to_default() {
        assert_eq!(
            parse_apps(&argv(&["bench"]), "--app", &["em3d", "water"]),
            vec!["em3d", "water"]
        );
        // A bare flag directly followed by another option keeps the
        // default instead of eating the option as an app name.
        let args = argv(&["bench", "--check", "--runs"]);
        assert_eq!(parse_apps(&args, "--check", &["em3d"]), vec!["em3d"]);
    }
}
