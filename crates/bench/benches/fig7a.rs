//! Criterion wrapper for Figure 7a: each benchmark's Ace-vs-CRL pair.

use ace_apps::Variant;
use ace_bench::fig7::{run_ace_app, run_crl_app, Scale, APPS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7a");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for app in APPS {
        g.bench_function(format!("{app}/ace"), |b| {
            b.iter(|| run_ace_app(app, Scale::Small, Variant::Sc, 4).sim_ns)
        });
        g.bench_function(format!("{app}/crl"), |b| {
            b.iter(|| run_crl_app(app, Scale::Small, 4).sim_ns)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
