//! The simulated-time cost model.
//!
//! All costs are in nanoseconds of virtual time. The defaults are flavoured
//! after the paper's platform — a CM-5 node (33 MHz SPARC, ~30 ns/cycle)
//! with CMAML Active Messages (several-microsecond one-way latency,
//! ~10 MB/s bulk bandwidth) — and after the per-operation latencies
//! published for CRL 1.0 on the CM-5. Absolute values only set the
//! communication/computation ratio; the experiments report *relative*
//! behaviour (who wins and by how much), which is insensitive to modest
//! changes in these constants. `ace-bench` includes an ablation that sweeps
//! the latency to demonstrate this.

/// Virtual-time costs charged by the runtimes, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// One-way network latency per active message.
    pub msg_latency: u64,
    /// Per-byte cost of message payloads (inverse bandwidth).
    pub per_byte: u64,
    /// CPU cost of injecting a message (send-side overhead).
    pub send_overhead: u64,
    /// CPU cost of receiving and dispatching a message to its handler.
    pub recv_overhead: u64,
    /// One region-table hash lookup (Ace's mapping technique).
    pub map_lookup: u64,
    /// Protocol dispatch through a space: region→space lookup plus an
    /// indirect call through the protocol table (the indirection the paper
    /// says "nullifies" Ace's other gains on coarse-grained BSC).
    pub dispatch: u64,
    /// A direct (monomorphic) protocol call, after the compiler's
    /// direct-dispatch optimization or in a fixed-protocol runtime like CRL.
    pub direct_call: u64,
    /// An access annotation absorbed by the per-region fast mask: a couple
    /// of loads and a branch, the analogue of CRL's in-cache fast path
    /// (Johnson et al., SOSP 1995). Sits well below `direct_call`, giving
    /// Table 4 its fourth rung (Removed < Fast < Direct < Dispatch).
    pub fast_path: u64,
    /// Base CPU cost of executing one protocol state-machine action.
    pub proto_action: u64,
    /// One double-precision floating-point operation (33 MHz SPARC, ~4
    /// cycles per FLOP).
    pub flop: u64,
    /// One local memory access issued by application code.
    pub mem: u64,
    /// CPU cost of appending one logical sub-message to a coalescing
    /// buffer (a bounds check, a length update, a pointer store). Paid
    /// per sub-message when [`crate::CoalescePolicy`] batches sends; the
    /// amortized win is that the batch pays `msg_latency`, `send_overhead`
    /// and header bytes once per *wire* envelope instead of once per
    /// logical message.
    pub pack_cost: u64,
    /// Extra CPU cost CRL pays per map for its unmapped-region cache scan
    /// and second-level table probe (CRL 1.0's mapping design; the paper
    /// credits Ace's speedups on fine-grained apps to a leaner scheme).
    pub crl_map_extra: u64,
}

impl CostModel {
    /// CM-5-flavoured defaults (see module docs).
    pub fn cm5() -> Self {
        CostModel {
            msg_latency: 12_000,
            per_byte: 100,
            send_overhead: 3_000,
            recv_overhead: 3_000,
            map_lookup: 700,
            dispatch: 500,
            direct_call: 150,
            fast_path: 60,
            proto_action: 1_500,
            flop: 120,
            mem: 60,
            pack_cost: 300,
            crl_map_extra: 1_800,
        }
    }

    /// A zero-cost model: simulated time degenerates to message causality
    /// only. Useful in unit tests that assert on counts, not times.
    pub fn free() -> Self {
        CostModel {
            msg_latency: 0,
            per_byte: 0,
            send_overhead: 0,
            recv_overhead: 0,
            map_lookup: 0,
            dispatch: 0,
            direct_call: 0,
            fast_path: 0,
            proto_action: 0,
            flop: 0,
            mem: 0,
            pack_cost: 0,
            crl_map_extra: 0,
        }
    }

    /// A model with `scale`× the default network latency and bandwidth cost,
    /// keeping CPU costs fixed. Used by the latency-sweep ablation.
    pub fn cm5_net_scaled(scale: u64) -> Self {
        let mut c = Self::cm5();
        c.msg_latency *= scale;
        c.per_byte *= scale;
        c
    }

    /// Total network charge for a message carrying `bytes` of payload.
    pub fn wire_time(&self, bytes: usize) -> u64 {
        self.msg_latency + self.per_byte * bytes as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cm5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_includes_latency_and_bandwidth() {
        let c = CostModel::cm5();
        assert_eq!(c.wire_time(0), c.msg_latency);
        assert_eq!(c.wire_time(100), c.msg_latency + 100 * c.per_byte);
    }

    #[test]
    fn free_model_is_all_zero() {
        let c = CostModel::free();
        assert_eq!(c.wire_time(1 << 20), 0);
        assert_eq!(c.dispatch + c.direct_call + c.fast_path + c.flop + c.mem, 0);
    }

    #[test]
    fn cost_ladder_orders_the_table4_rungs() {
        // Removed (0) < Fast < Direct < Dispatch.
        let c = CostModel::cm5();
        assert!(c.fast_path > 0);
        assert!(c.fast_path < c.direct_call);
        assert!(c.direct_call < c.dispatch);
    }

    #[test]
    fn packing_is_cheaper_than_sending() {
        // Coalescing only pays off if appending a sub-message costs less
        // than injecting a fresh wire message.
        let c = CostModel::cm5();
        assert!(c.pack_cost > 0);
        assert!(c.pack_cost < c.send_overhead);
        assert!(c.pack_cost < c.msg_latency);
    }

    #[test]
    fn net_scaling_leaves_cpu_costs_alone() {
        let base = CostModel::cm5();
        let scaled = CostModel::cm5_net_scaled(4);
        assert_eq!(scaled.msg_latency, 4 * base.msg_latency);
        assert_eq!(scaled.per_byte, 4 * base.per_byte);
        assert_eq!(scaled.dispatch, base.dispatch);
        assert_eq!(scaled.flop, base.flop);
    }
}
