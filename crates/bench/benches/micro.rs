//! Microbenchmarks of the runtime primitives (real wall-clock cost of the
//! simulation itself, per operation).

use ace_core::{run_ace, CostModel};
use ace_protocols::{NullProtocol, SeqInvalidate};
use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;

fn primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    g.sample_size(20);
    g.bench_function("map_unmap_10k", |b| {
        b.iter(|| {
            run_ace(1, CostModel::free(), |rt| {
                let s = rt.new_space(Rc::new(NullProtocol));
                let r = rt.gmalloc::<u64>(s, 1);
                for _ in 0..10_000 {
                    rt.map(r);
                    rt.unmap(r);
                }
            })
        })
    });
    g.bench_function("barrier_x100_4procs", |b| {
        b.iter(|| {
            run_ace(4, CostModel::free(), |rt| {
                let s = rt.new_space(Rc::new(SeqInvalidate::new()));
                for _ in 0..100 {
                    rt.barrier(s);
                }
            })
        })
    });
    g.bench_function("lock_unlock_x200_2procs", |b| {
        b.iter(|| {
            run_ace(2, CostModel::free(), |rt| {
                let s = rt.new_space(Rc::new(SeqInvalidate::new()));
                let r = if rt.rank() == 0 {
                    ace_core::RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 1).0])[0])
                } else {
                    ace_core::RegionId(rt.bcast(0, &[])[0])
                };
                rt.map(r);
                for _ in 0..200 {
                    rt.lock(r);
                    rt.unlock(r);
                }
                rt.machine_barrier();
            })
        })
    });
    g.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
