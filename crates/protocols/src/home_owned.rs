//! Home-owned protocol (Blocked Sparse Cholesky).
//!
//! §5.2: "For BSC, we take advantage of the fact that data are written
//! only by the processors that created them." With that assertion, writes
//! at home touch the master copy directly and generate **zero** coherence
//! traffic — no exclusivity, no invalidations, no directory. Consumers
//! pull a bulk copy on first read (user-specified granularity = whole
//! blocks, the paper's bulk-transfer story) and keep it until the next
//! barrier on the space, which bounds staleness: the application's task
//! ordering (locks/barriers) guarantees a block is complete before its
//! consumers fetch it.

use ace_core::{AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry, SpaceEntry};

use crate::states::*;

/// Wire opcodes.
pub mod op {
    /// Remote → home: fetch a copy.
    pub const FETCH: u16 = 1;
    /// Home → remote: copy contents.
    pub const DATA: u16 = 2;

    /// Trace label for an opcode.
    pub fn name(op: u16) -> &'static str {
        match op {
            FETCH => "fetch",
            DATA => "data",
            _ => "op",
        }
    }
}

/// The home-owned protocol.
#[derive(Default)]
pub struct HomeOwned;

impl HomeOwned {
    /// Constructor for registry use.
    pub fn new() -> Self {
        HomeOwned
    }

    /// Recompute the entry's fast mask. End hooks are unconditional
    /// no-ops. `start_read` only fetches on a remote invalid copy, so it
    /// is fast at home or while a pulled copy is still valid.
    /// `start_write` only debug-asserts home-ness, so it is fast at home
    /// (and deliberately slow remotely, keeping the assert live).
    fn refresh_fast(&self, rt: &AceRt, e: &RegionEntry) {
        let mut fast = Actions::END_READ.union(Actions::END_WRITE);
        if e.is_home_of(rt.rank()) {
            fast = fast.union(Actions::START_READ).union(Actions::START_WRITE);
        } else if e.st.get() != R_INVALID {
            fast = fast.union(Actions::START_READ);
        }
        e.fast.set(fast);
    }
}

impl Protocol for HomeOwned {
    fn name(&self) -> &'static str {
        "HomeOwned"
    }

    fn op_name(&self, op: u16) -> &'static str {
        op::name(op)
    }

    fn optimizable(&self) -> bool {
        true
    }

    fn null_actions(&self) -> Actions {
        Actions::START_WRITE
            .union(Actions::END_WRITE)
            .union(Actions::END_READ)
            .union(Actions::UNMAP)
    }

    // Writes go straight to the home copy; remote readers fetch on
    // demand and may hold read sections while the single writer writes.
    // Two concurrent writers are never granted.
    fn grants(&self) -> GrantSet {
        GrantSet { write_write: false, read_write: true }
    }

    fn on_create(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn on_map(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn start_read(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) && e.st.get() == R_INVALID {
            rt.counters_mut(|c| c.read_misses += 1);
            e.st.set(R_WAIT_READ);
            rt.send_proto(e.id.home(), e.id, op::FETCH, 0, None);
            rt.wait("home-owned fetch", || e.st.get() == R_SHARED);
        }
        self.refresh_fast(rt, e);
    }

    fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn start_write(&self, rt: &AceRt, e: &RegionEntry) {
        debug_assert!(
            e.is_home_of(rt.rank()),
            "home-owned regions are written only by their creator ({})",
            e.id
        );
    }

    fn end_write(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn barrier(&self, rt: &AceRt, s: &SpaceEntry) {
        // Invalidating our own cached copies needs no coordination: drop
        // them first, then rendezvous once. Post-barrier reads re-pull
        // fresh data in bulk.
        for e in rt.regions_of_space(s.id) {
            if !e.is_home_of(rt.rank()) {
                e.st.set(R_INVALID);
                self.refresh_fast(rt, &e);
            }
        }
        rt.space_barrier(s);
    }

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, _src: usize) {
        let from = msg.from as usize;
        match msg.op {
            op::FETCH => {
                rt.send_proto(from, e.id, op::DATA, 0, Some(e.clone_data()));
            }
            op::DATA => {
                e.install_shared(msg.data.expect("fetch reply carries data"));
                e.st.set(R_SHARED);
            }
            other => panic!("HomeOwned: unknown opcode {other}"),
        }
        self.refresh_fast(rt, e);
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) {
            e.st.set(R_INVALID);
        }
        e.aux.set(0);
        // Hand the region to the next protocol slow; it declares its own
        // fast states in `adopt`.
        e.fast.set(Actions::empty());
    }

    fn adopt(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, CostModel, RegionId, SpaceId};
    use std::rc::Rc;

    fn setup(rt: &AceRt, words: usize) -> (SpaceId, RegionId) {
        let s = rt.new_space(Rc::new(HomeOwned));
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc_words(s, words).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        (s, rid)
    }

    #[test]
    fn home_writes_cost_no_messages() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 64);
            rt.barrier(s);
            let before = rt.counters().proto_msgs;
            if rt.rank() == 0 {
                for i in 0..50u64 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[(i % 64) as usize] = i);
                    rt.end_write(rid);
                }
            }
            rt.counters().proto_msgs - before
        });
        assert_eq!(r.results, vec![0, 0]);
    }

    #[test]
    fn consumers_pull_bulk_once_per_phase() {
        let r = run_ace(3, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 32);
            if rt.rank() == 0 {
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| {
                    d.iter_mut().enumerate().for_each(|(i, x)| *x = i as u64)
                });
                rt.end_write(rid);
            }
            rt.barrier(s);
            let before = rt.counters().read_misses;
            let mut sum = 0;
            for _ in 0..10 {
                rt.start_read(rid);
                sum = rt.with::<u64, _>(rid, |d| d.iter().sum::<u64>());
                rt.end_read(rid);
            }
            (sum, rt.counters().read_misses - before)
        });
        let want: u64 = (0..32).sum();
        for (rank, (sum, misses)) in r.results.iter().enumerate() {
            assert_eq!(*sum, want);
            assert_eq!(*misses, if rank == 0 { 0 } else { 1 }, "rank {rank}");
        }
    }

    #[test]
    fn barrier_bounds_staleness() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 1);
            let mut seen = Vec::new();
            for i in 0..4u64 {
                if rt.rank() == 0 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] = i + 1);
                    rt.end_write(rid);
                }
                rt.barrier(s);
                rt.start_read(rid);
                seen.push(rt.with::<u64, _>(rid, |d| d[0]));
                rt.end_read(rid);
                rt.barrier(s);
            }
            seen
        });
        assert_eq!(r.results[0], vec![1, 2, 3, 4]);
        assert_eq!(r.results[1], vec![1, 2, 3, 4]);
    }
}
