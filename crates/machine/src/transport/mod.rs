//! Pluggable wire substrate: the seam between a [`crate::Node`] and
//! whatever actually carries its envelopes.
//!
//! Everything above this module — coalescing, vector-clock piggybacking,
//! logical/wire accounting, the cost model's virtual clocks — works in
//! terms of [`Wire`] envelopes and four capabilities: inject a wire
//! envelope toward a destination, park until one is delivered, learn that
//! a peer died, and shut down cleanly. [`Transport`] names exactly that
//! seam, with two backends:
//!
//! * [`InProcTransport`] — today's crossbeam channels plus the cost
//!   model's simulated latencies; behaviour-preserving and the default.
//! * [`SocketTransport`] — real multi-process TCP or Unix-domain sockets:
//!   length-prefixed frames of the same `Wire` envelopes, a rank-0
//!   rendezvous that assigns ranks and exchanges peer addresses, one
//!   writer thread per peer, and reconnect-free fail-fast mapped onto the
//!   existing peer-death path.
//!
//! The protocols and applications cannot tell the backends apart except
//! by wall-clock time: a run's logical observables (digests, logical
//! message counts) are identical — the cross-backend equivalence suite in
//! `ace-apps` is the gate.

pub mod codec;
pub mod inproc;
pub mod socket;

pub use codec::{put_string, put_words, CodecError, WireCodec, WireReader};
pub use inproc::InProcTransport;
pub use socket::{SockAddr, SocketCfg, SocketTransport, SOCKET_HEADER_BYTES, SOCKET_MAX_RANKS};

use std::sync::atomic::{AtomicIsize, Ordering};
use std::time::Duration;

use crate::envelope::{Wire, HEADER_BYTES};
use crate::lockfree::LfCell;

/// Why a non-blocking receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryWireError {
    /// Nothing delivered right now.
    Empty,
    /// The wire is dead: a peer exited or the substrate disconnected, so
    /// nothing can ever arrive again.
    Dead,
}

/// Why a bounded wait returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitWireError {
    /// The timeout elapsed with no delivery.
    Timeout,
    /// The wire is dead (see [`TryWireError::Dead`]).
    Dead,
}

/// One node's endpoint on the machine's wire substrate.
///
/// A transport endpoint is owned by exactly one node (and its OS thread).
/// Implementations deliver wire envelopes *per-pair FIFO* — the delivery
/// order between a fixed (source, destination) pair matches send order —
/// which is the only ordering guarantee the protocol layers rely on.
///
/// Sending to a destination whose node has already exited silently drops
/// the envelope ("the wire goes dead"); a program that relies on such a
/// message has violated the SPMD quiescence contract and will be caught
/// by the peer-death signal or the watchdog.
pub trait Transport<M> {
    /// Inject one wire envelope toward `dst`. `dst == self` loops back
    /// through the normal delivery path.
    fn send_wire(&self, dst: usize, wire: Wire<M>);

    /// Non-blocking receive of the next delivered wire envelope.
    fn try_recv_wire(&self) -> Result<Wire<M>, TryWireError>;

    /// Park the calling thread until a wire envelope is delivered, the
    /// timeout elapses, or the wire dies.
    fn recv_wire_timeout(&self, d: Duration) -> Result<Wire<M>, WaitWireError>;

    /// Fixed per-wire-envelope header charge in bytes, used by the
    /// accounting layer for every logical and wire byte count. The
    /// default is the simulated CM-5 active-message header
    /// ([`HEADER_BYTES`]); real backends override it to report their
    /// measured framing overhead.
    fn header_bytes(&self) -> usize {
        HEADER_BYTES
    }

    /// Rank of the first peer known to have died by panic, or -1. Read on
    /// every idle poll, so implementations keep it one atomic load.
    fn failed_rank(&self) -> isize;

    /// Diagnostic message recorded for the first failure (empty if none
    /// has been published yet).
    fn failure_detail(&self) -> String;

    /// Publish this node's own death (rank + panic message) to every
    /// peer. First writer wins machine-wide.
    fn signal_failure(&self, rank: usize, msg: &str);

    /// Clean shutdown after the node's program returned: flush and close
    /// the wire so peers observe an orderly goodbye rather than a death.
    /// Idempotent. An endpoint dropped *without* `shutdown` (the panic
    /// path) closes abruptly, which peers report as a peer death.
    fn shutdown(&self);
}

/// Which wire substrate a machine runs on. Configured through
/// [`crate::MachineBuilder::transport`]; the default is [`TransportKind::InProc`].
#[derive(Debug, Clone, Default)]
pub enum TransportKind {
    /// In-process channels plus the simulated cost model (the default).
    #[default]
    InProc,
    /// Real sockets: length-prefixed frames over TCP or Unix-domain
    /// stream sockets, with a rank-0 rendezvous handshake.
    Socket(SocketCfg),
}

impl TransportKind {
    /// A loopback socket machine: Unix-domain sockets under the temp
    /// directory with a per-run rendezvous path. This is the
    /// single-process configuration the equivalence suite runs — same
    /// framing, handshake and threads as a multi-process launch.
    pub fn socket_loopback() -> Self {
        TransportKind::Socket(SocketCfg::loopback())
    }
}

/// A machine configuration the builder rejects eagerly — at
/// [`crate::MachineBuilder::validate`] time, before any thread or socket
/// exists — instead of letting it hang or diverge at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `Socket` + `deterministic(seed)`: the seeded replay scheduler
    /// ranks candidates it can only see deterministically in-process;
    /// over real sockets the candidate set is OS-scheduling noise, so a
    /// "deterministic" run would silently not be one.
    SocketDeterministic,
    /// `Socket` + `ExecBackend::Multiplexed`: the slot gate multiplexes
    /// node threads of one process; a socket machine's ranks are meant to
    /// live in different processes, and its reader/writer threads would
    /// deadlock against the gate's yield discipline.
    SocketMultiplexed,
    /// `Socket` machines cap at [`SOCKET_MAX_RANKS`] ranks: a full mesh
    /// needs O(n²) file descriptors and 2(n-1) threads per rank.
    SocketRanks {
        /// The requested machine size.
        nprocs: usize,
        /// The socket-backend cap.
        max: usize,
    },
    /// [`crate::MachineBuilder::spawn_rank`] requires a `Socket`
    /// transport: a single-rank entry point into an in-process machine
    /// has no peers to talk to.
    SpawnRankNeedsSocket,
    /// `spawn_rank` with an explicit rank outside `0..nprocs`.
    RankOutOfRange {
        /// The requested rank.
        rank: usize,
        /// The machine size it must fit in.
        nprocs: usize,
    },
    /// `spawn_rank` requires a concrete rendezvous address shared by all
    /// processes; `SockAddr::Auto` generates a fresh per-run path that no
    /// other process can know.
    RendezvousUnspecified,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::SocketDeterministic => write!(
                f,
                "the socket transport cannot honor deterministic(seed): \
                 replay ordering is only meaningful in-process"
            ),
            ConfigError::SocketMultiplexed => write!(
                f,
                "the socket transport requires ExecBackend::Threads: \
                 the multiplexed slot gate and socket I/O threads deadlock"
            ),
            ConfigError::SocketRanks { nprocs, max } => write!(
                f,
                "socket machines support at most {max} ranks (requested {nprocs}): \
                 the mesh needs O(n^2) descriptors"
            ),
            ConfigError::SpawnRankNeedsSocket => {
                write!(f, "spawn_rank requires .transport(TransportKind::Socket(..))")
            }
            ConfigError::RankOutOfRange { rank, nprocs } => {
                write!(f, "rank {rank} out of range for a {nprocs}-rank machine")
            }
            ConfigError::RendezvousUnspecified => write!(
                f,
                "spawn_rank needs a concrete rendezvous address \
                 (SockAddr::Auto is only valid for single-process runs)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Machine-wide failure board shared by a backend's endpoints: the rank
/// of the first node that died by panic (one atomic word, checked on
/// every idle poll) plus its panic message (published lock-free, read
/// only after the flag trips).
pub(crate) struct FailBoard {
    failed: AtomicIsize,
    detail: LfCell<Option<String>>,
}

impl FailBoard {
    pub(crate) fn new() -> Self {
        FailBoard { failed: AtomicIsize::new(-1), detail: LfCell::new(None) }
    }

    /// Record the first failure (first writer wins) with its diagnostic.
    pub(crate) fn record(&self, rank: usize, msg: String) {
        if self
            .failed
            .compare_exchange(-1, rank as isize, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.detail.store(Some(msg));
        }
    }

    pub(crate) fn failed_rank(&self) -> isize {
        self.failed.load(Ordering::SeqCst)
    }

    /// The recorded panic message, or empty if none has been published
    /// (the flag trips before the detail store lands).
    pub(crate) fn detail(&self) -> String {
        match self.detail.load().as_ref() {
            Some(msg) => msg.clone(),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_board_first_writer_wins() {
        let b = FailBoard::new();
        assert_eq!(b.failed_rank(), -1);
        assert_eq!(b.detail(), "");
        b.record(3, "boom".into());
        b.record(5, "later".into());
        assert_eq!(b.failed_rank(), 3);
        assert_eq!(b.detail(), "boom");
    }

    #[test]
    fn config_errors_explain_themselves() {
        for (e, needle) in [
            (ConfigError::SocketDeterministic, "deterministic"),
            (ConfigError::SocketMultiplexed, "Threads"),
            (ConfigError::SocketRanks { nprocs: 128, max: 64 }, "at most 64"),
            (ConfigError::SpawnRankNeedsSocket, "spawn_rank"),
            (ConfigError::RankOutOfRange { rank: 9, nprocs: 4 }, "rank 9"),
            (ConfigError::RendezvousUnspecified, "rendezvous"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
