//! Water's phase-alternating protocols (§2.2): "the program alternates
//! between phases where intra-processor and inter-processor calculations
//! are made. Shifting between a null protocol for the intra-processor
//! phase, and an update protocol tailored to the communication pattern of
//! the inter-processor phase has a speedup of two ... neither could be
//! used independently for the whole application."
//!
//! Run with: `cargo run --release --example water_phases`

use ace::apps::runner::launch_ace;
use ace::apps::{water, Variant};
use ace::core::CostModel;

fn main() {
    let nprocs = 8;
    let p = water::Params { molecules: 96, steps: 2, seed: 23 };
    println!("Water: {} molecules, {} steps, {} procs\n", p.molecules, p.steps, nprocs);

    let pp = p.clone();
    let sc = launch_ace(nprocs, CostModel::cm5(), move |d| water::run(d, &pp, Variant::Sc));
    let pp = p.clone();
    let cu = launch_ace(nprocs, CostModel::cm5(), move |d| water::run(d, &pp, Variant::Custom));

    println!(
        "single SC protocol                {:>9.2} ms   msgs {:>7}   checksum {:.6}",
        sc.sim_ms(),
        sc.msgs,
        sc.verification
    );
    println!(
        "null intra + pipelined inter      {:>9.2} ms   msgs {:>7}   checksum {:.6}",
        cu.sim_ms(),
        cu.msgs,
        cu.verification
    );
    println!("\nspeedup from Ace_ChangeProtocol per phase: {:.2}x", sc.sim_ms() / cu.sim_ms());
    println!("(the checksums agree to floating-point accumulation order)");
}
