//! Criterion wrapper for Table 4: every kernel at every optimization
//! level plus the hand-written version.

use ace_bench::acec::{kernels, run_compiled, run_hand};
use ace_lang::OptLevel;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for k in kernels() {
        for level in OptLevel::ALL {
            g.bench_function(format!("{}/{level:?}", k.name), |b| {
                b.iter(|| run_compiled(&k, level, 4).1)
            });
        }
        g.bench_function(format!("{}/hand", k.name), |b| b.iter(|| run_hand(&k, 4).1));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
