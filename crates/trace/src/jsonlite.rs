//! A minimal self-contained JSON parser, used to validate exported
//! Chrome traces without pulling in an external dependency. Accepts the
//! JSON this workspace emits (objects, arrays, strings with the common
//! escapes, numbers, booleans, null); rejects anything malformed.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.b.get(self.i).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != c {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                c as char, self.i, got as char
            ));
        }
        self.i += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(self.b.get(self.i), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        s.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number '{s}': {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i).copied() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self
                        .b
                        .get(self.i)
                        .copied()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(c) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass through).
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .b
                        .get(self.i..self.i + len)
                        .ok_or_else(|| "truncated utf-8".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.i += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.i, c as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.peek()?;
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.i, c as char
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"s": "x\ny", "t": true, "n": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn decodes_unicode_escape() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    }
}
