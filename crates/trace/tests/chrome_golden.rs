//! Golden-file test for the Chrome `trace_event` export.
//!
//! A hand-built two-node trace (fully deterministic — no clocks, no
//! randomness) is exported and compared byte-for-byte against the
//! committed golden file. Run with `UPDATE_GOLDEN=1` to regenerate after
//! an intentional format change, and eyeball the diff: the golden file is
//! the documented on-disk format.

use std::path::PathBuf;

use ace_trace::{validate_chrome_trace, EventKind, Hook, MachineTrace, NodeTrace, TraceEvent};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json")
}

/// Two nodes: node 0 maps a region, sends one message to node 1; node 1
/// blocks, receives it inside a handle hook, and transitions state.
fn sample_trace() -> MachineTrace {
    let region = 7u64;
    MachineTrace {
        nodes: vec![
            NodeTrace {
                rank: 0,
                dropped: 0,
                events: vec![
                    TraceEvent {
                        t: 0,
                        kind: EventKind::HookEnter {
                            hook: Hook::Map,
                            region,
                            space: 0,
                            proto: "SC",
                            detail: "",
                        },
                    },
                    TraceEvent {
                        t: 1_500,
                        kind: EventKind::HookExit {
                            hook: Hook::Map,
                            region,
                            space: 0,
                            proto: "SC",
                            detail: "",
                        },
                    },
                    TraceEvent {
                        t: 2_000,
                        kind: EventKind::Send { dst: 1, tag: "proto", bytes: 32, subs: 2 },
                    },
                ],
            },
            NodeTrace {
                rank: 1,
                dropped: 0,
                events: vec![
                    TraceEvent { t: 100, kind: EventKind::Block { what: "read copy".into() } },
                    TraceEvent {
                        t: 2_600,
                        kind: EventKind::HookEnter {
                            hook: Hook::Handle,
                            region,
                            space: 0,
                            proto: "SC",
                            detail: "data_s",
                        },
                    },
                    TraceEvent {
                        t: 2_600,
                        kind: EventKind::Recv {
                            src: 0,
                            tag: "proto",
                            bytes: 32,
                            sent_at: 2_000,
                            subs: 2,
                        },
                    },
                    TraceEvent { t: 2_700, kind: EventKind::State { region, from: 1, to: 2 } },
                    TraceEvent {
                        t: 2_700,
                        kind: EventKind::HookExit {
                            hook: Hook::Handle,
                            region,
                            space: 0,
                            proto: "SC",
                            detail: "data_s",
                        },
                    },
                    TraceEvent { t: 2_800, kind: EventKind::Unblock { what: "read copy".into() } },
                ],
            },
        ],
    }
}

#[test]
fn chrome_export_matches_golden_file() {
    let doc = sample_trace().to_chrome_json();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &doc).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display())
    });
    assert_eq!(
        doc, golden,
        "Chrome export format drifted; if intentional, rerun with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_is_schema_valid_and_monotone() {
    // Validate the *committed* artifact, not just the in-memory export:
    // this is what a user loads into Perfetto.
    let golden = std::fs::read_to_string(golden_path())
        .expect("missing golden file; run with UPDATE_GOLDEN=1");
    let check = validate_chrome_trace(&golden).expect("golden trace must validate");
    assert_eq!(check.tracks, 2);
    assert_eq!(check.flow_starts, 1);
    assert_eq!(check.flows_matched, 1);
    assert_eq!(check.spans_opened, check.spans_closed);
}
