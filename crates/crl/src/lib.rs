//! CRL baseline: a fixed-protocol region-based software DSM.
//!
//! This crate reproduces the comparison system of the paper's §5.1: CRL
//! (Johnson, Kaashoek & Wallach, SOSP '95), "an efficient all-software
//! distributed shared memory". CRL's programming model is the same
//! region-based one as Ace's — `rgn_create` / `rgn_map` / `rgn_unmap` /
//! `rgn_start_op` / `rgn_end_op` — but with two structural differences the
//! paper measures:
//!
//! * **one fixed protocol**: the sequentially-consistent invalidation
//!   protocol, called *monomorphically* (no space lookup, no indirect
//!   dispatch). On coarse-grained apps this is where CRL holds its own:
//!   "the additional indirection in the dispatch of protocol calls in Ace
//!   nullifies the effects of the runtime system optimizations" (§5.1);
//! * **a heavier mapping path**: CRL 1.0 keeps a bounded *unmapped-region
//!   cache* (URC). Every `rgn_map` pays a URC scan plus a second-level
//!   table probe (`crl_map_extra` in the cost model, on top of the base
//!   lookup); URC evictions flush the region's coherence state home and
//!   drop the local copy, so re-maps of evicted regions re-fetch metadata.
//!   Ace's "more efficient mapping technique" (§5.1) is the leaner path in
//!   `ace-core`.
//!
//! The coherence state machine itself is shared with
//! [`ace_protocols::SeqInvalidate`] — both systems run the same MSI
//! protocol in the Figure 7a experiment, which is exactly the paper's
//! setup ("both systems run a sequentially consistent invalidation-based
//! protocol").

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use ace_core::msg::AceMsg;
use ace_core::{
    AceRt, CostModel, MachineBuilder, Node, OpCounters, Pod, RegionId, Spmd, SpmdResult,
};
use ace_protocols::SeqInvalidate;

/// Default capacity of the unmapped-region cache (CRL 1.0's default).
pub const DEFAULT_URC_CAPACITY: usize = 4096;

/// The per-node CRL runtime.
pub struct CrlRt<'n> {
    rt: AceRt<'n>,
    proto: Rc<SeqInvalidate>,
    space: ace_core::SpaceId,
    /// Unmapped-region cache as a lazy-deletion LRU. Membership (and each
    /// member's current insertion stamp) lives in the hash map, so `map`
    /// revalidates a cached region in O(1) instead of scanning the queue.
    /// The queue keeps recency order; entries whose stamp no longer matches
    /// the map are stale (the region was re-mapped since) and are skipped
    /// during overflow sweeps. URC size = `urc_members.len()`.
    urc_members: RefCell<HashMap<RegionId, u64>>,
    urc_order: RefCell<VecDeque<(u64, RegionId)>>,
    urc_stamp: Cell<u64>,
    urc_capacity: usize,
}

impl<'n> CrlRt<'n> {
    /// Wrap a substrate node in a CRL runtime with the default URC size.
    pub fn new(node: &'n Node<AceMsg>) -> Self {
        Self::with_urc_capacity(node, DEFAULT_URC_CAPACITY)
    }

    /// Wrap a substrate node, with an explicit URC capacity (the eviction
    /// ablation sweeps this).
    pub fn with_urc_capacity(node: &'n Node<AceMsg>, urc_capacity: usize) -> Self {
        let rt = AceRt::new(node);
        let proto = Rc::new(SeqInvalidate::new());
        let space = rt.new_space(proto.clone());
        CrlRt {
            rt,
            proto,
            space,
            urc_members: RefCell::new(HashMap::new()),
            urc_order: RefCell::new(VecDeque::new()),
            urc_stamp: Cell::new(0),
            urc_capacity,
        }
    }

    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.rt.rank()
    }

    /// Number of nodes.
    pub fn nprocs(&self) -> usize {
        self.rt.nprocs()
    }

    /// The underlying runtime (tests and stats).
    pub fn inner(&self) -> &AceRt<'n> {
        &self.rt
    }

    /// Operation counters.
    pub fn counters(&self) -> OpCounters {
        self.rt.counters()
    }

    /// Charge application computation.
    pub fn charge(&self, ns: u64) {
        self.rt.charge(ns);
    }

    /// Charge `n` floating-point operations.
    pub fn charge_flops(&self, n: u64) {
        self.rt.charge_flops(n);
    }

    /// Charge `n` application memory operations.
    pub fn charge_mem(&self, n: u64) {
        self.rt.charge_mem(n);
    }

    /// `rgn_create`: allocate a region of `count` elements of `T`; the
    /// caller becomes home.
    pub fn create<T: Pod>(&self, count: usize) -> RegionId {
        self.rt.gmalloc::<T>(self.space, count)
    }

    /// `rgn_create` in raw words.
    pub fn create_words(&self, words: usize) -> RegionId {
        self.rt.gmalloc_words(self.space, words)
    }

    /// `rgn_map`: translate a region id to a local mapping. Pays the URC
    /// scan and second-level probe that CRL's two-level mapping does.
    pub fn map(&self, r: RegionId) {
        let cost = self.rt.node().cost();
        self.rt.node().charge(cost.map_lookup + cost.crl_map_extra);
        // A URC hit revalidates the cached mapping: O(1) map removal; the
        // region's queue entry goes stale and is skipped at overflow time.
        // (The simulated charge above is unchanged — the fast path buys
        // real wall-clock time, not virtual time.)
        self.urc_members.borrow_mut().remove(&r);
        let e = self.rt.ensure_entry(r);
        e.mapped.set(e.mapped.get() + 1);
    }

    /// `rgn_unmap`: drop the mapping; the region enters the URC and may be
    /// evicted (flushing its coherence state home) when the URC overflows.
    pub fn unmap(&self, r: RegionId) {
        let e = self.rt.entry(r);
        self.rt.counters_mut(|c| c.unmaps += 1);
        assert!(e.mapped.get() > 0, "rgn_unmap of unmapped region {r}");
        e.mapped.set(e.mapped.get() - 1);
        if e.mapped.get() == 0 && !e.is_home_of(self.rank()) {
            let stamp = self.urc_stamp.get();
            self.urc_stamp.set(stamp + 1);
            // A re-unmapped region gets a fresh stamp: its old queue entry
            // (if any) goes stale and the region's recency is renewed.
            self.urc_members.borrow_mut().insert(r, stamp);
            self.urc_order.borrow_mut().push_back((stamp, r));
            while self.urc_members.borrow().len() > self.urc_capacity {
                let (stamp, victim) =
                    self.urc_order.borrow_mut().pop_front().expect("members ⊆ order queue");
                let live = self.urc_members.borrow().get(&victim) == Some(&stamp);
                if live {
                    self.urc_members.borrow_mut().remove(&victim);
                    self.rt.evict(victim);
                }
            }
        }
    }

    /// `rgn_start_read`.
    pub fn start_read(&self, r: RegionId) {
        self.rt.start_read_direct(r, &*self.proto);
    }

    /// `rgn_end_read`.
    pub fn end_read(&self, r: RegionId) {
        self.rt.end_read_direct(r, &*self.proto);
    }

    /// `rgn_start_write`.
    pub fn start_write(&self, r: RegionId) {
        self.rt.start_write_direct(r, &*self.proto);
    }

    /// `rgn_end_write`.
    pub fn end_write(&self, r: RegionId) {
        self.rt.end_write_direct(r, &*self.proto);
    }

    /// Typed read access (inside a section).
    pub fn with<T: Pod, R>(&self, r: RegionId, f: impl FnOnce(&[T]) -> R) -> R {
        self.rt.with(r, f)
    }

    /// Typed write access (inside a write section).
    pub fn with_mut<T: Pod, R>(&self, r: RegionId, f: impl FnOnce(&mut [T]) -> R) -> R {
        self.rt.with_mut(r, f)
    }

    /// `rgn_barrier`: the global barrier.
    pub fn barrier(&self) {
        self.rt.counters_mut(|c| c.barriers += 1);
        self.rt.machine_barrier();
    }

    /// Region lock (home-queued FIFO, the same primitive Ace's default
    /// protocol provides, so the §5.1 comparison is apples-to-apples).
    pub fn lock(&self, r: RegionId) {
        let e = self.rt.entry(r);
        self.rt.node().charge(self.rt.node().cost().direct_call);
        self.rt.default_lock(&e);
    }

    /// Region unlock.
    pub fn unlock(&self, r: RegionId) {
        let e = self.rt.entry(r);
        self.rt.node().charge(self.rt.node().cost().direct_call);
        self.rt.default_unlock(&e);
    }

    /// Broadcast (collective), for distributing root region ids.
    pub fn bcast(&self, root: usize, vals: &[u64]) -> std::sync::Arc<[u64]> {
        self.rt.bcast(root, vals)
    }

    /// Gather (collective).
    pub fn gather(&self, root: usize, vals: &[u64]) -> Option<Vec<std::sync::Arc<[u64]>>> {
        self.rt.gather(root, vals)
    }

    /// All-reduce one u64.
    pub fn allreduce_u64(&self, val: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        self.rt.allreduce_u64(val, op)
    }

    /// All-reduce one f64.
    pub fn allreduce_f64(&self, val: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        self.rt.allreduce_f64(val, op)
    }
}

/// Run an SPMD CRL program on `nprocs` simulated processors.
pub fn run_crl<R, F>(nprocs: usize, cost: CostModel, f: F) -> SpmdResult<R>
where
    R: Send,
    F: Fn(&CrlRt) -> R + Sync,
{
    run_crl_with(Spmd::builder().nprocs(nprocs).cost(cost), f)
}

/// Run an SPMD CRL program on a fully-configured [`MachineBuilder`]
/// (tracing, watchdog, drain batch).
pub fn run_crl_with<R, F>(builder: MachineBuilder, f: F) -> SpmdResult<R>
where
    R: Send,
    F: Fn(&CrlRt) -> R + Sync,
{
    builder.run(|node| {
        let crl = CrlRt::new(node);
        let r = f(&crl);
        crl.inner().shutdown();
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_region(crl: &CrlRt, words: usize) -> RegionId {
        let rid = if crl.rank() == 0 {
            RegionId(crl.bcast(0, &[crl.create_words(words).0])[0])
        } else {
            RegionId(crl.bcast(0, &[])[0])
        };
        crl.map(rid);
        rid
    }

    #[test]
    fn coherent_read_after_write() {
        let r = run_crl(3, CostModel::free(), |crl| {
            let rid = shared_region(crl, 2);
            if crl.rank() == 1 {
                crl.start_write(rid);
                crl.with_mut::<u64, _>(rid, |d| d[0] = 88);
                crl.end_write(rid);
            }
            crl.barrier();
            crl.start_read(rid);
            let v = crl.with::<u64, _>(rid, |d| d[0]);
            crl.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![88, 88, 88]);
    }

    #[test]
    fn map_costs_more_than_ace() {
        let cost = CostModel::cm5();
        let crl_time = run_crl(1, cost.clone(), |crl| {
            let rid = crl.create_words(1);
            let t0 = crl.inner().node().now();
            for _ in 0..100 {
                crl.map(rid);
                crl.unmap(rid);
            }
            crl.inner().node().now() - t0
        });
        let ace_time = ace_core::run_ace(1, cost, |rt| {
            let s = rt.new_space(Rc::new(SeqInvalidate::new()));
            let rid = rt.gmalloc_words(s, 1);
            let t0 = rt.node().now();
            for _ in 0..100 {
                rt.map(rid);
                rt.unmap(rid);
            }
            rt.node().now() - t0
        });
        assert!(
            crl_time.results[0] > ace_time.results[0],
            "CRL mapping should be costlier: crl={} ace={}",
            crl_time.results[0],
            ace_time.results[0]
        );
    }

    #[test]
    fn urc_eviction_flushes_and_remaps() {
        let r = Spmd::builder().nprocs(2).cost(CostModel::free()).run(|node| {
            let crl = CrlRt::with_urc_capacity(node, 2);
            let ids: Vec<RegionId> = if crl.rank() == 0 {
                let ids: Vec<u64> = (0..4).map(|_| crl.create_words(1).0).collect();
                crl.bcast(0, &ids).iter().map(|&x| RegionId(x)).collect()
            } else {
                crl.bcast(0, &[]).iter().map(|&x| RegionId(x)).collect()
            };
            if crl.rank() == 0 {
                for (i, &rid) in ids.iter().enumerate() {
                    crl.map(rid);
                    crl.start_write(rid);
                    crl.with_mut::<u64, _>(rid, |d| d[0] = i as u64 + 1);
                    crl.end_write(rid);
                    crl.unmap(rid);
                }
            }
            crl.barrier();
            let mut got = Vec::new();
            if crl.rank() == 1 {
                // Map/read/unmap all four regions twice: capacity 2 forces
                // evictions, and re-maps must still see correct data.
                for _ in 0..2 {
                    for &rid in &ids {
                        crl.map(rid);
                        crl.start_read(rid);
                        got.push(crl.with::<u64, _>(rid, |d| d[0]));
                        crl.end_read(rid);
                        crl.unmap(rid);
                    }
                }
            }
            crl.barrier();
            let misses = crl.counters().map_misses;
            crl.inner().shutdown();
            (got, misses)
        });
        let (got, misses) = &r.results[1];
        assert_eq!(got, &[1, 2, 3, 4, 1, 2, 3, 4]);
        // Evictions force metadata re-fetches on the second sweep.
        assert!(*misses > 4, "URC evictions should cause re-miss, got {misses}");
    }

    #[test]
    fn urc_remap_renews_recency() {
        // Re-mapping a URC-resident region must renew its LRU position:
        // the stale queue entry is skipped at overflow time and a fresher
        // region survives eviction in its place.
        let r = Spmd::builder().nprocs(2).cost(CostModel::free()).run(|node| {
            let crl = CrlRt::with_urc_capacity(node, 2);
            let ids: Vec<RegionId> = if crl.rank() == 0 {
                let ids: Vec<u64> = (0..3).map(|_| crl.create_words(1).0).collect();
                crl.bcast(0, &ids).iter().map(|&x| RegionId(x)).collect()
            } else {
                crl.bcast(0, &[]).iter().map(|&x| RegionId(x)).collect()
            };
            let present = if crl.rank() == 1 {
                let (a, b, c) = (ids[0], ids[1], ids[2]);
                crl.map(a);
                crl.unmap(a); // urc: [a]
                crl.map(b);
                crl.unmap(b); // urc: [a, b]
                crl.map(a); // revalidates a; its old queue slot goes stale
                crl.unmap(a); // urc: [b, a]
                crl.map(c);
                crl.unmap(c); // overflow: b is the oldest live entry
                ids.iter().map(|&x| crl.inner().lookup(x).is_some()).collect()
            } else {
                vec![true; 3]
            };
            crl.barrier();
            crl.inner().shutdown();
            present
        });
        assert_eq!(
            r.results[1],
            vec![true, false, true],
            "b should be evicted; a's recency was renewed by the re-map"
        );
    }

    #[test]
    fn lock_serializes_increments() {
        let n = 4;
        const PER: u64 = 10;
        let r = run_crl(n, CostModel::free(), |crl| {
            let rid = shared_region(crl, 1);
            for _ in 0..PER {
                crl.lock(rid);
                crl.start_write(rid);
                crl.with_mut::<u64, _>(rid, |d| d[0] += 1);
                crl.end_write(rid);
                crl.unlock(rid);
            }
            crl.barrier();
            crl.start_read(rid);
            let v = crl.with::<u64, _>(rid, |d| d[0]);
            crl.end_read(rid);
            v
        });
        assert_eq!(r.results, vec![PER * n as u64; 4]);
    }

    #[test]
    fn direct_calls_not_dispatched() {
        // A home read pair in the quiescent state is absorbed by the
        // region's fast mask — the CRL-style in-state fast path. With the
        // mask disabled, the same accesses fall back to direct (but still
        // never dispatched) hook calls.
        let r = run_crl(1, CostModel::free(), |crl| {
            let rid = crl.create_words(1);
            crl.map(rid);
            crl.start_read(rid);
            crl.end_read(rid);
            let fast = crl.counters();
            crl.inner().set_fast_paths(false);
            crl.start_read(rid);
            crl.end_read(rid);
            let slow = crl.counters();
            (fast.fast_hits, fast.direct, slow.fast_hits, slow.direct, slow.dispatched)
        });
        assert_eq!(r.results[0], (2, 0, 2, 2, 0));
    }
}
