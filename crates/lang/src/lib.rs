//! The Ace-C compiler and SPMD virtual machine.
//!
//! Reproduces the paper's compiler (§3.1, §4.2): Ace is "essentially C
//! with minor modifications" — global data annotated `shared`, allocated
//! dynamically from spaces, with compile-time-checked restrictions on
//! shared pointers. The compiler:
//!
//! 1. parses and type-checks **Ace-C**, a C subset rich enough for the
//!    paper's benchmark kernels (ints, doubles, local arrays, flat
//!    structs, `shared` pointers, functions with recursion);
//! 2. lowers to a CFG-based IR, inserting the runtime annotations around
//!    every shared access exactly as Figure 5 describes (`MAP`,
//!    `START_READ`/`WRITE`, the access, `END_*`);
//! 3. runs the interprocedural **space/protocol dataflow** of §4.2:
//!    space sets propagate from `new_space`/`gmalloc` sites, protocol
//!    bindings propagate flow-sensitively from `new_space` and
//!    `change_protocol`, and their composition yields the set of possible
//!    protocols at every access;
//! 4. applies the three optimizations — **loop-invariant call motion**,
//!    **redundant-call merging**, **direct dispatch** — each gated on all
//!    possible protocols being registered `optimizable`, and never moving
//!    code past synchronization;
//! 5. executes the optimized program SPMD on the Ace runtime via the
//!    bytecode [`vm`], which charges dispatch or direct-call costs
//!    according to each annotation's resolved mode — regenerating Table 4.
//!
//! The protocol registration metadata (Figure 1) comes from
//! [`config`], which parses the same information the paper's Tcl script
//! emitted into the "system configuration file".

// Dataflow transfer loops index parallel arrays; explicit indexing is the idiom.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod ast;
pub mod config;
pub mod ir;
pub mod lex;
pub mod lower;
pub mod opt;
pub mod parse;
pub mod sema;
pub mod vm;

pub use config::SystemConfig;
pub use ir::{DispatchMode, Program};
pub use vm::run_program;

/// Optimization level, matching the rows of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Base case: straight annotation insertion.
    O0,
    /// + loop-invariant call motion.
    Licm,
    /// + merging redundant protocol calls.
    Merge,
    /// + direct dispatch (and null-handler removal).
    Direct,
}

impl OptLevel {
    /// All levels in Table 4 order.
    pub const ALL: [OptLevel; 4] =
        [OptLevel::O0, OptLevel::Licm, OptLevel::Merge, OptLevel::Direct];

    /// Row label used by the Table 4 harness.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "Base case",
            OptLevel::Licm => "Loop Invariance (LI)",
            OptLevel::Merge => "LI + Merging Calls (MC)",
            OptLevel::Direct => "LI + MC + Direct Calls",
        }
    }
}

/// Compile Ace-C source to an executable [`Program`] at `level`.
///
/// # Errors
///
/// Returns a human-readable message for lexical, syntactic, or semantic
/// errors (including violations of the `shared` pointer rules).
pub fn compile(source: &str, config: &SystemConfig, level: OptLevel) -> Result<Program, String> {
    let toks = lex::lex(source)?;
    let unit = parse::parse(&toks)?;
    let typed = sema::check(&unit)?;
    let mut prog = lower::lower(&typed);
    let facts = analysis::analyze(&prog, config);
    if level >= OptLevel::Licm {
        opt::licm::run(&mut prog, &facts, config);
    }
    if level >= OptLevel::Merge {
        opt::merge::run(&mut prog, &facts, config);
    }
    if level >= OptLevel::Direct {
        opt::direct::run(&mut prog, &facts, config);
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_levels_are_ordered() {
        assert!(OptLevel::O0 < OptLevel::Licm);
        assert!(OptLevel::Licm < OptLevel::Merge);
        assert!(OptLevel::Merge < OptLevel::Direct);
        assert_eq!(OptLevel::ALL.len(), 4);
    }
}
