//! Water: molecular dynamics with phase-alternating protocols (§2.2, §5.2).
//!
//! The program alternates between an *intra-molecular* phase, where each
//! processor integrates only the molecules it owns, and an
//! *inter-molecular* phase, where every processor accumulates pairwise
//! force contributions into molecules owned by others. The paper reports
//! a 2× speedup from "shifting between a null protocol for the
//! intra-processor phase, and an update protocol tailored to the
//! communication pattern of the inter-processor phase" — and notes that
//! neither protocol alone would be correct for the whole program, which is
//! precisely what `Ace_ChangeProtocol` (the space indirection) buys.
//!
//! Each molecule is one region: position, velocity, and a force
//! accumulator. The custom variant runs intra phases under
//! [`ace_protocols::NullProtocol`] and the force phase under
//! [`ace_protocols::PipelinedWrite`] (delta accumulation, completion
//! checked at the barrier). The SC variant relies on exclusive write
//! sections for the read-modify-write force updates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dsm::{exchange_ids, Dsm};
use crate::Variant;
use ace_protocols::{AdaptiveSpec, ProtoSpec};

/// Fields of a molecule region, as f64 lanes.
const POS: usize = 0; // [0..3)
const VEL: usize = 3; // [3..6)
const FRC: usize = 6; // [6..9)
/// f64 lanes per molecule.
pub const MOL_LANES: usize = 9;

const DT: f64 = 0.002;

/// Water workload parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of molecules.
    pub molecules: usize,
    /// Time steps.
    pub steps: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Params {
    /// The paper's input (Table 3): 512 molecules, 3 steps.
    pub fn paper() -> Self {
        Params { molecules: 512, steps: 3, seed: 23 }
    }

    /// A scaled-down input for unit tests.
    pub fn small() -> Self {
        Params { molecules: 24, steps: 2, seed: 23 }
    }
}

fn block(total: usize, nprocs: usize, rank: usize) -> std::ops::Range<usize> {
    let per = total.div_ceil(nprocs);
    (per * rank).min(total)..(per * (rank + 1)).min(total)
}

/// Bounded inverse-cube pair force (gravity-like with softening), cheap
/// and stable — the sharing pattern, not the chemistry, is what the
/// benchmark reproduces.
fn pair_force(pi: &[f64], pj: &[f64]) -> [f64; 3] {
    let dx = pj[0] - pi[0];
    let dy = pj[1] - pi[1];
    let dz = pj[2] - pi[2];
    let d2 = dx * dx + dy * dy + dz * dz + 0.05;
    let inv = 1.0 / (d2 * d2.sqrt());
    [dx * inv, dy * inv, dz * inv]
}

/// Run Water; returns the verification value (global Σ|pos| after the
/// last step). Every node first accumulates its pair contributions into a
/// private buffer, then the nodes apply their buffers in a fixed
/// (node, molecule-index) order — f64 addition does not commute in
/// rounding, so this fixed reduction order is what makes the checksum
/// reproducible run-to-run and digest-comparable across configurations.
pub fn run<D: Dsm>(d: &D, p: &Params, v: Variant) -> f64 {
    let mols_space = d.new_space(ProtoSpec::Sc);
    let n = p.molecules;
    let mine = block(n, d.nprocs(), d.rank());

    // Allocate and initialize owned molecules.
    let my_ids: Vec<u64> = mine.clone().map(|_| d.gmalloc::<f64>(mols_space, MOL_LANES)).collect();
    let all_ids = exchange_ids(d, &my_ids);
    // Flattened global id table.
    let mut mol_id = vec![0u64; n];
    for (owner, ids) in all_ids.iter().enumerate() {
        for (k, &rid) in ids.iter().enumerate() {
            mol_id[block(n, d.nprocs(), owner).start + k] = rid;
        }
    }

    let mut rng = StdRng::seed_from_u64(p.seed.wrapping_add(d.rank() as u64));
    for &rid in &my_ids {
        d.map(rid);
        d.start_write(rid);
        d.with_mut::<f64, _>(rid, |m| {
            for x in m.iter_mut().take(3) {
                *x = rng.gen_range(-1.0..1.0);
            }
            for x in &mut m[VEL..VEL + 3] {
                *x = rng.gen_range(-0.1..0.1);
            }
        });
        d.end_write(rid);
        d.unmap(rid);
    }
    d.barrier(mols_space);

    // My share of the pairs: the SPLASH half-shell decomposition — the
    // owner of molecule i computes interactions (i, i+1), ..., (i, i+n/2)
    // modulo n, so half of every pair's force writes hit locally-owned
    // molecules.
    let my_pairs: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let half = n / 2;
        for i in mine.clone() {
            for k in 1..=half {
                let j = (i + k) % n;
                // For even n the diameter pair would be computed twice
                // (once from each end); keep it only on the lower index.
                if n.is_multiple_of(2) && k == half && i > j {
                    continue;
                }
                v.push((i, j));
            }
        }
        v
    };

    if v == Variant::Custom {
        // Intra phases run under the null protocol from here on.
        d.change_protocol(mols_space, ProtoSpec::Null);
    } else if v == Variant::Adaptive {
        // The programmer knows molecules see relaxed phase-alternating
        // sharing (that is why Pipelined is a candidate at all), so the
        // engine starts there and keeps it for the whole run unless the
        // profiles disagree: zero flushes at steady state, against the
        // custom variant's two change_protocol flushes per step.
        let spec = AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::PIPELINED)
            .starting_at(AdaptiveSpec::PIPELINED);
        d.change_protocol(mols_space, ProtoSpec::Adaptive(spec));
    }

    for _ in 0..p.steps {
        // ---- intra-molecular phase: half-kick + drift on owned data ----
        for &rid in &my_ids {
            d.map(rid);
            d.start_write(rid);
            d.with_mut::<f64, _>(rid, |m| {
                for a in 0..3 {
                    let acc = m[FRC + a];
                    m[VEL + a] += 0.5 * DT * acc;
                    m[POS + a] += DT * m[VEL + a];
                    m[FRC + a] = 0.0; // zero the accumulator for this step
                }
            });
            d.end_write(rid);
            d.unmap(rid);
            d.charge_flops(18);
        }
        d.barrier(mols_space);

        // ---- inter-molecular phase ----
        if v == Variant::Custom {
            d.change_protocol(mols_space, ProtoSpec::Pipelined);
        }
        // Accumulate this node's contributions into a private buffer: the
        // pair loop only reads shared data.
        let mut frc = vec![[0.0f64; 3]; n];
        let mut touched = vec![false; n];
        for &(i, j) in &my_pairs {
            let (ri, rj) = (mol_id[i], mol_id[j]);
            d.map(ri);
            d.map(rj);
            d.start_read(ri);
            let pi = d.with::<f64, _>(ri, |m| [m[0], m[1], m[2]]);
            d.end_read(ri);
            d.start_read(rj);
            let pj = d.with::<f64, _>(rj, |m| [m[0], m[1], m[2]]);
            d.end_read(rj);
            let f = pair_force(&pi, &pj);
            d.charge_flops(14);
            for a in 0..3 {
                frc[i][a] += f[a];
                frc[j][a] -= f[a];
            }
            touched[i] = true;
            touched[j] = true;
            d.unmap(ri);
            d.unmap(rj);
            d.charge_flops(6);
        }
        // Let every node finish reading before anyone writes: without
        // this rendezvous the sharer sets the first writer invalidates
        // (and with them the message counts) depend on read/write timing.
        d.barrier(mols_space);
        // Apply the buffers in a fixed (node, molecule-index) reduction
        // order: nodes take barrier-separated turns, molecules in index
        // order within a turn, so every accumulator sums the same values
        // in the same order on every run regardless of how messages
        // interleave.
        for turn in 0..d.nprocs() {
            if turn == d.rank() {
                for (i, f) in frc.iter().enumerate() {
                    if !touched[i] {
                        continue;
                    }
                    let rid = mol_id[i];
                    d.map(rid);
                    d.start_write(rid);
                    d.with_mut::<f64, _>(rid, |m| {
                        for a in 0..3 {
                            m[FRC + a] += f[a];
                        }
                    });
                    d.end_write(rid);
                    d.unmap(rid);
                    d.charge_flops(3);
                }
            }
            d.barrier(mols_space);
        }
        if v == Variant::Custom {
            d.change_protocol(mols_space, ProtoSpec::Null);
        }

        // ---- update phase: second half-kick on owned data ----
        for &rid in &my_ids {
            d.map(rid);
            d.start_write(rid);
            d.with_mut::<f64, _>(rid, |m| {
                for a in 0..3 {
                    m[VEL + a] += 0.5 * DT * m[FRC + a];
                }
            });
            d.end_write(rid);
            d.unmap(rid);
            d.charge_flops(6);
        }
        d.barrier(mols_space);
    }

    // Verification checksum. Under the custom variant the space is on the
    // null protocol here, and owners read their own (master) data.
    let mut local = 0.0;
    for &rid in &my_ids {
        d.map(rid);
        d.start_read(rid);
        local += d.with::<f64, _>(rid, |m| m[0].abs() + m[1].abs() + m[2].abs());
        d.end_read(rid);
        d.unmap(rid);
    }
    d.allreduce_f64(local, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{launch_ace, launch_crl};
    use ace_core::CostModel;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn variants_agree_within_fp_tolerance() {
        let p = Params::small();
        let sc = launch_ace(3, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let cu = launch_ace(3, CostModel::free(), |d| run(d, &p, Variant::Custom));
        assert!(
            close(sc.verification, cu.verification),
            "sc={} custom={}",
            sc.verification,
            cu.verification
        );
    }

    #[test]
    fn ace_and_crl_agree() {
        let p = Params::small();
        let a = launch_ace(2, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let c = launch_crl(2, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert!(close(a.verification, c.verification));
    }

    #[test]
    fn custom_protocols_cut_messages() {
        let p = Params::small();
        let sc = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let cu = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Custom));
        assert!(
            cu.msgs < sc.msgs,
            "null+pipelined should cut traffic: custom={} sc={}",
            cu.msgs,
            sc.msgs
        );
    }

    #[test]
    fn energy_is_bounded() {
        // Sanity: the integrator does not blow up on the small input.
        let p = Params::small();
        let out = launch_ace(2, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert!(out.verification.is_finite());
        assert!(out.verification < 1e4);
    }
}
