//! The per-node Ace runtime: dispatch, mapping, synchronization.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use ace_machine::pod::{self, Pod};
use ace_machine::{CoalescePolicy, Envelope, EventKind, Hook, Node};

use crate::check::Checker;
use crate::counters::OpCounters;
use crate::error::{AceError, ConformanceKind};
use crate::ids::{RegionId, SpaceId};
use crate::msg::{AceMsg, ProtoMsg};
use crate::protocol::{Actions, Protocol};
use crate::region::RegionEntry;
use crate::space::SpaceEntry;

/// Barrier tag reserved for the machine-wide barrier (space barriers use
/// the space id).
const GLOBAL_BAR_TAG: u32 = u32::MAX;

/// The coalescing policy [`AceRt::new`] installs. Threshold-8 bounds how
/// long a logical message can linger in a buffer mid-phase (a full buffer
/// goes out immediately) while still amortizing headers and latency
/// across fan-out bursts; every blocking point flushes whatever is left.
pub const DEFAULT_COALESCE: CoalescePolicy = CoalescePolicy::Threshold(8);

/// Slots in the direct-mapped region-lookup cache at small machine sizes.
/// Fine-grained apps give every value its own region (EM3D: one word per
/// graph node), so a compute sweep touches hundreds of distinct regions
/// per step; a direct-mapped cache thrashes on any working set bigger
/// than itself, so it must comfortably exceed per-node working sets. 4096
/// slots ≈ 96 KiB per node — noise next to the region data, and conflict
/// misses stay rare up to several hundred live regions.
const REGION_CACHE_SLOTS: usize = 4096;

/// Per-instance cache size: full-width up to 128 ranks (where hit-rate
/// dominates), shrinking stepwise above so a 4096-node machine pays ~3 KiB
/// of cache per node instead of 96 KiB × 4096 ≈ 384 MiB — at scale the
/// per-node region working set shrinks anyway (problem size is divided
/// across more homes). Always a power of two, so the slot hash can mask.
fn region_cache_slots_for(nprocs: usize) -> usize {
    match nprocs {
        0..=128 => REGION_CACHE_SLOTS,
        129..=512 => 1024,
        513..=2048 => 512,
        _ => 128,
    }
}

/// Sentinel key for an empty region-cache slot (no valid `RegionId` uses
/// it: ids are `rank << 32 | seq` with rank bounded by `MAX_NODES`).
const REGION_CACHE_EMPTY: u64 = u64::MAX;

/// Per-collective gather buffer: contributions tagged by source rank.
type GatherBuf = Vec<(usize, Arc<[u64]>)>;

fn region_cache_slot(r: RegionId, slots: usize) -> usize {
    // Fibonacci hashing. Region ids are `home << 32 | seq` with *per-home*
    // sequential seqs, so plain masking (or xor-folding) would land every
    // home's regions on the same densely-packed slot range; one odd
    // multiply spreads both fields across the whole index space. `slots`
    // is a power of two, so the mask keeps the hash's high bits.
    const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
    (r.0.wrapping_mul(PHI) >> 52) as usize & (slots - 1)
}

/// The per-node runtime. One `AceRt` exists per simulated processor; all
/// interior state is node-local (`Cell`/`RefCell`), and all cross-node
/// effects go through typed messages on the underlying [`Node`].
pub struct AceRt<'n> {
    node: &'n Node<AceMsg>,
    regions: RefCell<HashMap<u64, Rc<RegionEntry>>>,
    // Direct-mapped fast path in front of `regions`. Counters live in
    // plain `Cell`s, not `counters`, so `lookup` never re-borrows the
    // `OpCounters` RefCell from inside `counters_mut` callbacks.
    region_cache: RefCell<Vec<(u64, Option<Rc<RegionEntry>>)>>,
    rc_hits: Cell<u64>,
    rc_misses: Cell<u64>,
    spaces: RefCell<HashMap<u32, Rc<SpaceEntry>>>,
    next_region_seq: Cell<u64>,
    next_space: Cell<u32>,
    // Barrier state: highest released epoch per tag (all nodes), local call
    // count per tag (all nodes), arrival counts per (tag, epoch) (node 0).
    bar_released: RefCell<HashMap<u32, u64>>,
    bar_local_epoch: RefCell<HashMap<u32, u64>>,
    bar_counts: RefCell<HashMap<(u32, u64), usize>>,
    // Sharing-profile piggyback for the adaptive protocol engine: staged
    // contributions ride the next BarArrive for their tag, node 0 sums
    // them element-wise, and the aggregate rides every BarRelease — so
    // every node decides on identical machine-wide data with zero extra
    // messages. Keyed by barrier tag.
    bar_prof_out: RefCell<HashMap<u32, Vec<u64>>>,
    bar_prof_acc: RefCell<HashMap<(u32, u64), Vec<u64>>>,
    bar_prof_in: RefCell<HashMap<u32, Arc<[u64]>>>,
    // Collective data exchange.
    bcast_seq: Cell<u64>,
    bcast_recv: RefCell<HashMap<u64, Arc<[u64]>>>,
    gather_seq: Cell<u64>,
    gather_recv: RefCell<HashMap<u64, GatherBuf>>,
    counters: RefCell<OpCounters>,
    /// The annotation hook most recently entered on this node ("none"
    /// before the first). Tracked unconditionally (a `Cell` store) so
    /// error diagnostics carry it even when tracing is off.
    last_hook: Cell<&'static str>,
    /// Master switch for the per-region fast paths (the forced-slow-path
    /// escape hatch: equivalence tests run the same program with this off
    /// and on and demand identical messages, bytes, and data).
    fast_enabled: Cell<bool>,
    /// The conformance layer (`ace-check`): inert under `CheckMode::Off`,
    /// otherwise validates sections, accesses, and cross-node overlap
    /// against what the protocol granted. See [`crate::check`].
    checker: Checker,
}

impl<'n> AceRt<'n> {
    /// Wrap a substrate node in a fresh runtime.
    pub fn new(node: &'n Node<AceMsg>) -> Self {
        let rt = AceRt {
            node,
            regions: RefCell::new(HashMap::new()),
            region_cache: RefCell::new(vec![
                (REGION_CACHE_EMPTY, None);
                region_cache_slots_for(node.nprocs())
            ]),
            rc_hits: Cell::new(0),
            rc_misses: Cell::new(0),
            spaces: RefCell::new(HashMap::new()),
            next_region_seq: Cell::new(0),
            next_space: Cell::new(0),
            bar_released: RefCell::new(HashMap::new()),
            bar_local_epoch: RefCell::new(HashMap::new()),
            bar_counts: RefCell::new(HashMap::new()),
            bar_prof_out: RefCell::new(HashMap::new()),
            bar_prof_acc: RefCell::new(HashMap::new()),
            bar_prof_in: RefCell::new(HashMap::new()),
            bcast_seq: Cell::new(0),
            bcast_recv: RefCell::new(HashMap::new()),
            gather_seq: Cell::new(0),
            gather_recv: RefCell::new(HashMap::new()),
            counters: RefCell::new(OpCounters::default()),
            last_hook: Cell::new("none"),
            fast_enabled: Cell::new(true),
            checker: Checker::new(node.check_mode()),
        };
        // Coalescing is on by default at the runtime layer (like the fast
        // paths): protocol fan-out — update pushes, invalidation rounds —
        // is exactly the traffic batching amortizes. Every runtime
        // blocking point funnels through `Node::poll_until`, which flushes
        // on entry and after each handled message, so the policy is safe
        // for arbitrary protocol code.
        rt.node.set_coalesce(DEFAULT_COALESCE);
        rt
    }

    /// Enable or disable the per-region fast paths ([`RegionEntry::fast`]).
    /// On by default; turning them off forces every annotation through the
    /// full dispatch path, which must be behaviourally identical (only
    /// slower in virtual time). Exposed for equivalence tests and A/B
    /// benchmarking.
    pub fn set_fast_paths(&self, on: bool) {
        self.fast_enabled.set(on);
    }

    /// Whether the per-region fast paths are currently enabled.
    pub fn fast_paths_enabled(&self) -> bool {
        self.fast_enabled.get()
    }

    /// Enable or disable per-destination send coalescing (the second
    /// escape hatch, mirroring [`AceRt::set_fast_paths`]). On by default
    /// with [`DEFAULT_COALESCE`]; switching flushes anything buffered, so
    /// no message straddles the change. Turning it off restores one wire
    /// envelope per logical message — bit-identical to the pre-coalescing
    /// runtime — for A/B measurement.
    pub fn set_coalescing(&self, on: bool) {
        self.node.set_coalesce(if on { DEFAULT_COALESCE } else { CoalescePolicy::Off });
    }

    /// Whether send coalescing is currently enabled.
    pub fn coalescing_enabled(&self) -> bool {
        self.node.coalesce_policy() != CoalescePolicy::Off
    }

    /// The last annotation hook entered on this node (see `last_hook`).
    pub fn last_hook(&self) -> &'static str {
        self.last_hook.get()
    }

    // ------------------------------------------------------------------
    // Event tracing
    //
    // Every instrumentation point starts with the sink's inlined
    // `enabled()` check, so with tracing off (the default) the cost is a
    // single predictable branch per hook — no event construction, no
    // state reads.
    // ------------------------------------------------------------------

    /// Open a traced hook span on `e`. Returns the region's protocol
    /// state code at entry (0 when tracing is off), which the matching
    /// [`AceRt::hook_exit`] diffs to synthesize `State` events.
    #[inline]
    fn hook_enter(&self, hook: Hook, e: &RegionEntry, proto: &'static str) -> u32 {
        self.hook_enter_detail(hook, e, proto, "")
    }

    #[inline]
    fn hook_enter_detail(
        &self,
        hook: Hook,
        e: &RegionEntry,
        proto: &'static str,
        detail: &'static str,
    ) -> u32 {
        self.last_hook.set(hook.name());
        let sink = self.node.trace_sink();
        if !sink.enabled() {
            return 0;
        }
        sink.emit(
            self.node.now(),
            EventKind::HookEnter { hook, region: e.id.0, space: e.space.0, proto, detail },
        );
        e.st.get()
    }

    /// Close a traced hook span opened by [`AceRt::hook_enter`], emitting
    /// a `State` transition event if the region's state code changed
    /// across the hook (this is how protocol state machines appear in the
    /// timeline without protocols emitting anything themselves).
    #[inline]
    fn hook_exit(&self, st_before: u32, hook: Hook, e: &RegionEntry, proto: &'static str) {
        self.hook_exit_detail(st_before, hook, e, proto, "");
    }

    #[inline]
    fn hook_exit_detail(
        &self,
        st_before: u32,
        hook: Hook,
        e: &RegionEntry,
        proto: &'static str,
        detail: &'static str,
    ) {
        let sink = self.node.trace_sink();
        if !sink.enabled() {
            return;
        }
        let st_after = e.st.get();
        if st_after != st_before {
            sink.emit(
                self.node.now(),
                EventKind::State { region: e.id.0, from: st_before, to: st_after },
            );
        }
        sink.emit(
            self.node.now(),
            EventKind::HookExit { hook, region: e.id.0, space: e.space.0, proto, detail },
        );
    }

    /// Open a traced span for a region-less hook (the barrier is scoped
    /// to a space, not a region). Uses [`ace_machine::NO_REGION`] as the
    /// region field.
    #[inline]
    fn hook_enter_space(&self, hook: Hook, space: SpaceId, proto: &'static str) {
        self.last_hook.set(hook.name());
        let sink = self.node.trace_sink();
        if !sink.enabled() {
            return;
        }
        sink.emit(
            self.node.now(),
            EventKind::HookEnter {
                hook,
                region: ace_machine::NO_REGION,
                space: space.0,
                proto,
                detail: "",
            },
        );
    }

    /// Close a span opened by [`AceRt::hook_enter_space`].
    #[inline]
    fn hook_exit_space(&self, hook: Hook, space: SpaceId, proto: &'static str) {
        let sink = self.node.trace_sink();
        if !sink.enabled() {
            return;
        }
        sink.emit(
            self.node.now(),
            EventKind::HookExit {
                hook,
                region: ace_machine::NO_REGION,
                space: space.0,
                proto,
                detail: "",
            },
        );
    }

    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.node.rank()
    }

    /// Number of nodes in the machine.
    pub fn nprocs(&self) -> usize {
        self.node.nprocs()
    }

    /// The underlying substrate node.
    pub fn node(&self) -> &Node<AceMsg> {
        self.node
    }

    /// Charge application computation to the virtual clock.
    pub fn charge(&self, ns: u64) {
        self.node.charge(ns);
    }

    /// Charge `n` floating-point operations.
    pub fn charge_flops(&self, n: u64) {
        self.node.charge(n * self.node.cost().flop);
    }

    /// Charge `n` application memory operations.
    pub fn charge_mem(&self, n: u64) {
        self.node.charge(n * self.node.cost().mem);
    }

    /// Snapshot of this node's operation counters. Region-cache hit/miss
    /// totals (kept in `Cell`s on the runtime) and the node's logical/wire
    /// message split (kept by the substrate) are folded in here.
    pub fn counters(&self) -> OpCounters {
        let mut c = self.counters.borrow().clone();
        c.region_cache_hits += self.rc_hits.get();
        c.region_cache_misses += self.rc_misses.get();
        let s = self.node.stats();
        c.logical_msgs += s.logical_msgs;
        c.wire_msgs += s.wire_msgs;
        c
    }

    /// Mutate the counters (used by the Ace-C VM to account direct calls).
    pub fn counters_mut(&self, f: impl FnOnce(&mut OpCounters)) {
        f(&mut self.counters.borrow_mut());
    }

    // ------------------------------------------------------------------
    // Message plumbing
    // ------------------------------------------------------------------

    /// Send a raw runtime message.
    pub fn send(&self, dst: usize, msg: AceMsg) {
        self.node.send(dst, msg);
    }

    /// Send a protocol message on behalf of this node.
    pub fn send_proto(
        &self,
        dst: usize,
        region: RegionId,
        op: u16,
        arg: u64,
        data: Option<Arc<[u64]>>,
    ) {
        self.send_proto_from(dst, self.rank(), region, op, arg, data);
    }

    /// Send a protocol message with an explicit originator (three-hop
    /// forwarding: home forwards a request but the reply must go to the
    /// original requester).
    pub fn send_proto_from(
        &self,
        dst: usize,
        from: usize,
        region: RegionId,
        op: u16,
        arg: u64,
        data: Option<Arc<[u64]>>,
    ) {
        self.node.send(dst, AceMsg::Proto(ProtoMsg { region, op, from: from as u16, arg, data }));
    }

    /// Service incoming messages until `pred` holds. Protocols use this to
    /// implement their blocking hooks; handlers themselves must not call it.
    pub fn wait(&self, what: &str, pred: impl Fn() -> bool) {
        self.node.poll_until(what, |_, env| self.dispatch(env), pred);
    }

    /// Drain any messages that are already queued, without blocking.
    /// Flushes this node's coalescing buffers afterwards so replies the
    /// drained handlers generated (and anything the app had buffered)
    /// reach their destinations even though this poll never blocks.
    pub fn poll(&self) {
        while let Some(env) = self.node.try_recv() {
            self.dispatch(env);
        }
        self.node.flush_coalesced();
    }

    fn dispatch(&self, env: Envelope<AceMsg>) {
        let src = env.src;
        match env.msg {
            AceMsg::Proto(pm) => {
                self.counters.borrow_mut().proto_msgs += 1;
                self.node.charge(self.node.cost().proto_action);
                let e = self
                    .lookup(pm.region)
                    .unwrap_or_else(|| panic!("protocol msg for unknown region {}", pm.region));
                let proto = self.space(e.space).proto();
                let (pname, detail) = (proto.name(), proto.op_name(pm.op));
                let st0 = self.hook_enter_detail(Hook::Handle, &e, pname, detail);
                proto.handle(self, &e, pm, src);
                self.hook_exit_detail(st0, Hook::Handle, &e, pname, detail);
            }
            AceMsg::MetaReq { region } => {
                let e = self
                    .lookup(region)
                    .unwrap_or_else(|| panic!("meta request for unknown region {region}"));
                self.send(src, AceMsg::MetaReply { region, space: e.space, words: e.words as u64 });
            }
            AceMsg::MetaReply { region, space, words } => {
                // Create the (invalid) cache entry the mapper is waiting on.
                let e = Rc::new(RegionEntry::new(region, space, words as usize));
                e.st.set(crate::rt::REMOTE_INVALID);
                self.regions.borrow_mut().insert(region.0, e);
            }
            AceMsg::BarArrive { tag, epoch, prof } => {
                assert_eq!(self.rank(), 0, "barrier arrivals go to node 0");
                self.bar_note_arrival(tag, epoch, prof);
            }
            AceMsg::BarRelease { tag, epoch, prof } => {
                if let Some(p) = prof {
                    self.bar_prof_in.borrow_mut().insert(tag, p);
                }
                let mut rel = self.bar_released.borrow_mut();
                let e = rel.entry(tag).or_insert(0);
                *e = (*e).max(epoch);
            }
            AceMsg::LockReq { region } => {
                let e = self
                    .lookup(region)
                    .unwrap_or_else(|| panic!("lock request for unknown region {region}"));
                assert!(e.is_home_of(self.rank()), "lock request must target home");
                if e.lock_held.get() {
                    e.lock_queue.borrow_mut().push_back(src as u16);
                } else {
                    e.lock_held.set(true);
                    self.send(src, AceMsg::LockGrant { region });
                }
            }
            AceMsg::LockGrant { region } => {
                let e = self.lookup(region).expect("lock grant for unknown region");
                e.lock_granted.set(true);
            }
            AceMsg::LockRelease { region } => {
                let e = self.lookup(region).expect("lock release for unknown region");
                let next = e.lock_queue.borrow_mut().pop_front();
                match next {
                    Some(next) => self.send(next as usize, AceMsg::LockGrant { region }),
                    None => e.lock_held.set(false),
                }
            }
            AceMsg::Bcast { seq, vals } => {
                self.bcast_recv.borrow_mut().insert(seq, vals);
            }
            AceMsg::Gather { seq, vals } => {
                self.gather_recv.borrow_mut().entry(seq).or_default().push((src, vals));
            }
        }
    }

    // ------------------------------------------------------------------
    // Spaces and protocols
    // ------------------------------------------------------------------

    /// Create a new space bound to `protocol`. Collective: every node must
    /// call `new_space` in the same program order (SPMD), which makes the
    /// locally-generated ids agree machine-wide.
    pub fn new_space(&self, protocol: Rc<dyn Protocol>) -> SpaceId {
        let id = SpaceId(self.next_space.get());
        self.next_space.set(id.0 + 1);
        let s = Rc::new(SpaceEntry::new(id, protocol));
        s.proto().init_space(self, &s);
        self.spaces.borrow_mut().insert(id.0, s);
        id
    }

    /// Look up a space entry, reporting an [`AceError::UnknownSpace`] if
    /// this node has never created it.
    pub fn try_space(&self, id: SpaceId) -> Result<Rc<SpaceEntry>, AceError> {
        self.spaces
            .borrow()
            .get(&id.0)
            .cloned()
            .ok_or(AceError::UnknownSpace { space: id, rank: self.rank() })
    }

    /// Look up a space entry.
    ///
    /// # Panics
    ///
    /// Panics if the space does not exist on this node.
    pub fn space(&self, id: SpaceId) -> Rc<SpaceEntry> {
        self.try_space(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Change the protocol of a space (collective). The semantics follow
    /// §3.1: the *old* protocol flushes every locally-known region of the
    /// space to the base state (valid master at home, no remote copies),
    /// then the new protocol adopts the regions.
    pub fn change_protocol(&self, sid: SpaceId, new: Rc<dyn Protocol>) {
        let s = self.space(sid);
        let mine = self.regions_of_space(sid);
        let old = s.proto();
        let old_name = old.name();
        for e in &mine {
            old.flush(self, e);
        }
        self.wait("protocol flush drain", || s.outstanding.get() == 0);
        self.machine_barrier();
        // Entries survive a protocol change (same Rc identity), but clear
        // the whole lookup cache anyway: it is cheap, the event is rare,
        // and it keeps the invariant auditable — no cached pointer ever
        // crosses a protocol epoch.
        self.region_cache.borrow_mut().fill((REGION_CACHE_EMPTY, None));
        *s.protocol.borrow_mut() = Rc::clone(&new);
        s.dirty.borrow_mut().clear();
        s.aux.set(0);
        self.note_switch(sid, old_name, new.name());
        new.init_space(self, &s);
        for e in &mine {
            new.adopt(self, e);
        }
        self.machine_barrier();
    }

    /// Record one committed protocol switch on this node: counts it, bumps
    /// the node's wire-visible switch epoch (stamped on every subsequent
    /// envelope; see [`ace_machine::Envelope`]), and emits an
    /// [`EventKind::Switch`] trace event. Called by [`AceRt::change_protocol`]
    /// and by the adaptive engine's flush-point switch, in both cases
    /// between the two machine barriers of the handover — which is what
    /// makes the epoch stamp a coherence proof: no peer can send from more
    /// than one epoch ahead. Returns the new epoch.
    pub fn note_switch(&self, space: SpaceId, from: &'static str, to: &'static str) -> u64 {
        self.counters.borrow_mut().switches += 1;
        let epoch = self.node.switch_epoch() + 1;
        self.node.set_switch_epoch(epoch);
        let sink = self.node.trace_sink();
        if sink.enabled() {
            sink.emit(
                self.node.now(),
                EventKind::Switch {
                    region: ace_machine::NO_REGION,
                    space: space.0,
                    from,
                    to,
                    epoch,
                },
            );
        }
        epoch
    }

    // ------------------------------------------------------------------
    // Regions
    // ------------------------------------------------------------------

    /// Allocate a region sized for `count` elements of `T` from `space`.
    /// The caller's node becomes the region's home.
    pub fn gmalloc<T: Pod>(&self, space: SpaceId, count: usize) -> RegionId {
        self.gmalloc_words(space, pod::words_for::<T>(count).max(1))
    }

    /// Allocate a region of `words` 8-byte words from `space`.
    pub fn gmalloc_words(&self, space: SpaceId, words: usize) -> RegionId {
        assert!(words >= 1, "regions are at least one word");
        let seq = self.next_region_seq.get();
        self.next_region_seq.set(seq + 1);
        let id = RegionId::new(self.rank(), seq);
        let e = Rc::new(RegionEntry::new(id, space, words));
        e.st.set(HOME_OWNED_STATE);
        let proto = self.space(space).proto();
        self.regions.borrow_mut().insert(id.0, e.clone());
        proto.on_create(self, &e);
        id
    }

    /// All region entries this node knows that belong to `space`.
    /// Protocols use this at barriers (e.g. to invalidate cached copies)
    /// and `change_protocol` uses it for the flush/adopt sweep.
    pub fn regions_of_space(&self, sid: SpaceId) -> Vec<Rc<RegionEntry>> {
        let mut v: Vec<Rc<RegionEntry>> =
            self.regions.borrow().values().filter(|e| e.space == sid).cloned().collect();
        v.sort_by_key(|e| e.id);
        v
    }

    /// Deterministic FNV digest over the master copy of every region
    /// homed on this node — id and current contents, in id order.
    /// Concatenated across ranks this covers the whole shared memory
    /// image; remote cached copies are excluded because their end-of-run
    /// residency races on wall-clock message timing. Equivalence tests
    /// compare digests across runs to prove a mechanism (like the fast
    /// mask) changed only virtual time, never data.
    pub fn data_digest(&self) -> u64 {
        let mut entries = self.regions.borrow().values().cloned().collect::<Vec<_>>();
        entries.retain(|e| e.is_home_of(self.rank()));
        entries.sort_by_key(|e| e.id);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0100_0000_01b3);
        };
        for e in entries {
            mix(e.id.0);
            for &w in e.data.borrow().iter() {
                mix(w);
            }
        }
        h
    }

    /// Look up a region entry if this node has one.
    ///
    /// Every access annotation, protocol handler, and VM instruction funnels
    /// through here, so a direct-mapped inline cache sits in front of the
    /// `HashMap`: a hit is one array index and an `Rc` bump, no hashing.
    /// The cache never outlives the table — [`AceRt::evict`] invalidates the
    /// victim's slot and [`AceRt::change_protocol`] clears all slots.
    pub fn lookup(&self, r: RegionId) -> Option<Rc<RegionEntry>> {
        let slot = region_cache_slot(r, self.region_cache.borrow().len());
        {
            let cache = self.region_cache.borrow();
            let (key, entry) = &cache[slot];
            if *key == r.0 {
                if let Some(e) = entry {
                    self.rc_hits.set(self.rc_hits.get() + 1);
                    return Some(Rc::clone(e));
                }
            }
        }
        self.rc_misses.set(self.rc_misses.get() + 1);
        let e = self.regions.borrow().get(&r.0).cloned();
        if let Some(e) = &e {
            self.region_cache.borrow_mut()[slot] = (r.0, Some(Rc::clone(e)));
        }
        e
    }

    /// Drop `r`'s region-cache slot if it holds `r`. Must run whenever an
    /// entry leaves the `regions` table, or `lookup` would resurrect it.
    fn region_cache_invalidate(&self, r: RegionId) {
        let mut cache = self.region_cache.borrow_mut();
        let slot = region_cache_slot(r, cache.len());
        if cache[slot].0 == r.0 {
            cache[slot] = (REGION_CACHE_EMPTY, None);
        }
    }

    /// [`AceRt::lookup`] with a typed error: `Err(UnknownRegion)` — which
    /// carries this node's rank and the last hook traced — instead of
    /// `None` when the region has no entry here.
    pub fn try_lookup(&self, r: RegionId) -> Result<Rc<RegionEntry>, AceError> {
        self.lookup(r).ok_or_else(|| AceError::UnknownRegion {
            region: r,
            rank: self.rank(),
            last_hook: self.last_hook.get(),
        })
    }

    /// Resolve a region the caller is about to *access*: the entry must
    /// exist and be usable — mapped, inside an open access section, or at
    /// its home. An entry that survives only as an unmapped cache line
    /// (CRL-style unmapped-region caching) yields
    /// [`AceError::UseAfterUnmap`] rather than handing out stale data.
    pub fn try_entry(&self, r: RegionId) -> Result<Rc<RegionEntry>, AceError> {
        let e = self.try_lookup(r)?;
        if e.mapped.get() == 0 && !e.busy() && !e.is_home_of(self.rank()) {
            return Err(AceError::UseAfterUnmap {
                region: r,
                rank: self.rank(),
                last_hook: self.last_hook.get(),
            });
        }
        Ok(e)
    }

    /// [`AceRt::try_entry`] constrained to a space: a region that resolves
    /// but belongs elsewhere yields [`AceError::SpaceMismatch`]. Used when
    /// an id crosses an API boundary typed only as "a region of space S".
    pub fn try_entry_in(&self, r: RegionId, sid: SpaceId) -> Result<Rc<RegionEntry>, AceError> {
        let e = self.try_entry(r)?;
        if e.space != sid {
            return Err(AceError::SpaceMismatch { region: r, expected: sid, actual: e.space });
        }
        Ok(e)
    }

    /// Look up a region entry, panicking if the region was never mapped
    /// here (the equivalent of dereferencing an unmapped pointer). The
    /// panic message is [`AceError::UnknownRegion`]'s, naming the region,
    /// the node, and the last hook the runtime traced before the failure.
    pub fn entry(&self, r: RegionId) -> Rc<RegionEntry> {
        self.try_lookup(r).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Make sure this node has an entry for `r`, fetching metadata from
    /// home if needed. This is the protocol-independent half of `map`;
    /// fixed-protocol runtimes (CRL) use it directly.
    pub fn ensure_entry(&self, r: RegionId) -> Rc<RegionEntry> {
        if let Some(e) = self.lookup(r) {
            self.counters.borrow_mut().map_hits += 1;
            return e;
        }
        assert_ne!(r.home(), self.rank(), "home regions exist from gmalloc");
        self.counters.borrow_mut().map_misses += 1;
        self.send(r.home(), AceMsg::MetaReq { region: r });
        self.wait("region metadata", || self.regions.borrow().contains_key(&r.0));
        self.entry(r)
    }

    /// `ACE_MAP`: translate a region id into a local mapping, fetching
    /// metadata from home on first contact.
    pub fn map(&self, r: RegionId) {
        self.node.charge(self.node.cost().map_lookup);
        if let Some(e) = self.lookup(r) {
            self.counters.borrow_mut().map_hits += 1;
            e.mapped.set(e.mapped.get() + 1);
            let proto = self.space(e.space).proto();
            let st0 = self.hook_enter(Hook::Map, &e, proto.name());
            proto.on_map(self, &e);
            self.hook_exit(st0, Hook::Map, &e, proto.name());
            return;
        }
        assert_ne!(r.home(), self.rank(), "home regions exist from gmalloc");
        self.counters.borrow_mut().map_misses += 1;
        self.send(r.home(), AceMsg::MetaReq { region: r });
        self.wait("region metadata", || self.regions.borrow().contains_key(&r.0));
        let e = self.entry(r);
        e.mapped.set(1);
        let proto = self.space(e.space).proto();
        let st0 = self.hook_enter(Hook::Map, &e, proto.name());
        proto.on_map(self, &e);
        self.hook_exit(st0, Hook::Map, &e, proto.name());
    }

    /// `ACE_UNMAP`. The cache entry is retained (CRL-style unmapped-region
    /// caching); only the map count drops.
    pub fn unmap(&self, r: RegionId) {
        let e = self.entry(r);
        self.counters.borrow_mut().unmaps += 1;
        assert!(e.mapped.get() > 0, "unmap of unmapped region {r}");
        e.mapped.set(e.mapped.get() - 1);
        let proto = self.space(e.space).proto();
        let st0 = self.hook_enter(Hook::Unmap, &e, proto.name());
        proto.on_unmap(self, &e);
        self.hook_exit(st0, Hook::Unmap, &e, proto.name());
    }

    fn dispatch_charge(&self) {
        self.counters.borrow_mut().dispatched += 1;
        self.node.charge(self.node.cost().dispatch);
    }

    /// Whether `action` on `e` can take the CRL-style fast path: the
    /// protocol has declared the hook a state-preserving no-op in the
    /// region's current state, and the escape hatch hasn't forced slow.
    #[inline]
    fn fast_hit(&self, e: &RegionEntry, action: Actions) -> bool {
        self.fast_enabled.get() && e.fast.get().contains(action)
    }

    /// Charge and account one fast-path hit: a couple of loads and a
    /// branch in the real system. Skips hook dispatch, the space lookup,
    /// and trace-span construction; `last_hook` is still tracked (a single
    /// store) so error diagnostics stay exact.
    #[inline]
    fn fast_charge(&self, hook: Hook) {
        self.last_hook.set(hook.name());
        self.counters.borrow_mut().fast_hits += 1;
        self.node.charge(self.node.cost().fast_path);
    }

    /// Uniform sharing-signal accounting for a slow-path access start,
    /// taken *before* the hook runs (the hook mutates the state code). A
    /// non-home region in the invalid base state is a remote miss — the
    /// access forces a fetch; a non-home write on a valid shared copy
    /// (state 2 by cross-protocol convention) is an upgrade. Counted by
    /// the runtime, not by protocols, so identical access sequences yield
    /// identical counts regardless of which protocol serves them.
    #[inline]
    fn note_slow_access(&self, e: &RegionEntry, write: bool) {
        if e.is_home_of(self.rank()) {
            return;
        }
        let st = e.st.get();
        if st == REMOTE_INVALID {
            self.counters.borrow_mut().remote_misses += 1;
        } else if write && st == REMOTE_SHARED {
            self.counters.borrow_mut().upgrades += 1;
        }
    }

    /// Checker hook for an access-section open: runs after the start hook
    /// completed and the section counter was incremented, so the recorded
    /// vector clock dominates every message the hook exchanged. Only the
    /// outermost open of a nested section records.
    #[inline]
    fn check_open(&self, e: &RegionEntry, write: bool) {
        if !self.checker.enabled() {
            return;
        }
        let active = if write { e.write_active.get() } else { e.read_active.get() };
        if active != 1 {
            return;
        }
        let proto = self.space(e.space).proto();
        self.checker.on_open(self.node, e.id, write, proto.name(), proto.grants());
    }

    /// Checker hook for an access-section close: runs after the section
    /// counter was decremented but *before* the end hook dispatches, so
    /// write-back/release messages the hook sends carry a clock that
    /// dominates the recorded close. Only the outermost close records.
    #[inline]
    fn check_close(&self, e: &RegionEntry, write: bool) {
        if !self.checker.enabled() {
            return;
        }
        let active = if write { e.write_active.get() } else { e.read_active.get() };
        if active != 0 {
            return;
        }
        self.checker.on_close(self.node, e.id, write);
    }

    /// Violations the conformance checker has recorded on this node so
    /// far. Cross-node conflicting-section reports appear on node 0 only,
    /// after [`AceRt::shutdown`] has run its analysis. Always empty under
    /// `CheckMode::Off`.
    pub fn violations(&self) -> Vec<AceError> {
        self.checker.violations()
    }

    /// `ACE_START_READ`, dispatched through the region's space.
    pub fn start_read(&self, r: RegionId) {
        let e = self.entry(r);
        self.counters.borrow_mut().start_reads += 1;
        if self.fast_hit(&e, Actions::START_READ) {
            self.fast_charge(Hook::StartRead);
            e.read_active.set(e.read_active.get() + 1);
            self.check_open(&e, false);
            return;
        }
        self.dispatch_charge();
        self.note_slow_access(&e, false);
        let proto = self.space(e.space).proto();
        let st0 = self.hook_enter(Hook::StartRead, &e, proto.name());
        proto.start_read(self, &e);
        self.hook_exit(st0, Hook::StartRead, &e, proto.name());
        e.read_active.set(e.read_active.get() + 1);
        self.check_open(&e, false);
    }

    /// `ACE_END_READ`.
    pub fn end_read(&self, r: RegionId) {
        let e = self.entry(r);
        self.counters.borrow_mut().ends += 1;
        assert!(e.read_active.get() > 0, "end_read outside a read section on {r}");
        e.read_active.set(e.read_active.get() - 1);
        self.check_close(&e, false);
        if self.fast_hit(&e, Actions::END_READ) {
            self.fast_charge(Hook::EndRead);
            return;
        }
        self.dispatch_charge();
        let proto = self.space(e.space).proto();
        let st0 = self.hook_enter(Hook::EndRead, &e, proto.name());
        proto.end_read(self, &e);
        self.hook_exit(st0, Hook::EndRead, &e, proto.name());
    }

    /// `ACE_START_WRITE`.
    pub fn start_write(&self, r: RegionId) {
        let e = self.entry(r);
        self.counters.borrow_mut().start_writes += 1;
        if self.fast_hit(&e, Actions::START_WRITE) {
            self.fast_charge(Hook::StartWrite);
            e.write_active.set(e.write_active.get() + 1);
            self.check_open(&e, true);
            return;
        }
        self.dispatch_charge();
        self.note_slow_access(&e, true);
        let proto = self.space(e.space).proto();
        let st0 = self.hook_enter(Hook::StartWrite, &e, proto.name());
        proto.start_write(self, &e);
        self.hook_exit(st0, Hook::StartWrite, &e, proto.name());
        e.write_active.set(e.write_active.get() + 1);
        self.check_open(&e, true);
    }

    /// `ACE_END_WRITE`.
    pub fn end_write(&self, r: RegionId) {
        let e = self.entry(r);
        self.counters.borrow_mut().ends += 1;
        assert!(e.write_active.get() > 0, "end_write outside a write section on {r}");
        e.write_active.set(e.write_active.get() - 1);
        self.check_close(&e, true);
        if self.fast_hit(&e, Actions::END_WRITE) {
            self.fast_charge(Hook::EndWrite);
            return;
        }
        self.dispatch_charge();
        let proto = self.space(e.space).proto();
        let st0 = self.hook_enter(Hook::EndWrite, &e, proto.name());
        proto.end_write(self, &e);
        self.hook_exit(st0, Hook::EndWrite, &e, proto.name());
    }

    // ------------------------------------------------------------------
    // Direct (monomorphic) protocol calls
    //
    // Used when the protocol of an access is statically known: by the
    // CRL baseline (one fixed protocol, no spaces) and by the Ace-C
    // compiler after its direct-dispatch optimization (§4.2). They charge
    // `direct_call` instead of `dispatch` and count as `direct`.
    // ------------------------------------------------------------------

    fn direct_charge(&self) {
        self.counters.borrow_mut().direct += 1;
        self.node.charge(self.node.cost().direct_call);
    }

    /// `ACE_START_READ` with a statically-resolved protocol. Consults the
    /// region's fast mask before the monomorphic call, like the dispatched
    /// path — the fast rung sits below `Direct` on the cost ladder, and
    /// sharing the mechanism keeps the CRL comparison honest.
    pub fn start_read_direct(&self, r: RegionId, proto: &dyn Protocol) {
        let e = self.entry(r);
        self.counters.borrow_mut().start_reads += 1;
        if self.fast_hit(&e, Actions::START_READ) {
            self.fast_charge(Hook::StartRead);
            e.read_active.set(e.read_active.get() + 1);
            self.check_open(&e, false);
            return;
        }
        self.direct_charge();
        self.note_slow_access(&e, false);
        let st0 = self.hook_enter(Hook::StartRead, &e, proto.name());
        proto.start_read(self, &e);
        self.hook_exit(st0, Hook::StartRead, &e, proto.name());
        e.read_active.set(e.read_active.get() + 1);
        self.check_open(&e, false);
    }

    /// `ACE_END_READ` with a statically-resolved protocol. Tolerates an
    /// unbalanced section: the compiler may have removed a null
    /// `start_read` while keeping a non-null `end_read`.
    pub fn end_read_direct(&self, r: RegionId, proto: &dyn Protocol) {
        let e = self.entry(r);
        self.counters.borrow_mut().ends += 1;
        e.read_active.set(e.read_active.get().saturating_sub(1));
        self.check_close(&e, false);
        if self.fast_hit(&e, Actions::END_READ) {
            self.fast_charge(Hook::EndRead);
            return;
        }
        self.direct_charge();
        let st0 = self.hook_enter(Hook::EndRead, &e, proto.name());
        proto.end_read(self, &e);
        self.hook_exit(st0, Hook::EndRead, &e, proto.name());
    }

    /// `ACE_START_WRITE` with a statically-resolved protocol.
    pub fn start_write_direct(&self, r: RegionId, proto: &dyn Protocol) {
        let e = self.entry(r);
        self.counters.borrow_mut().start_writes += 1;
        if self.fast_hit(&e, Actions::START_WRITE) {
            self.fast_charge(Hook::StartWrite);
            e.write_active.set(e.write_active.get() + 1);
            self.check_open(&e, true);
            return;
        }
        self.direct_charge();
        self.note_slow_access(&e, true);
        let st0 = self.hook_enter(Hook::StartWrite, &e, proto.name());
        proto.start_write(self, &e);
        self.hook_exit(st0, Hook::StartWrite, &e, proto.name());
        e.write_active.set(e.write_active.get() + 1);
        self.check_open(&e, true);
    }

    /// `ACE_END_WRITE` with a statically-resolved protocol. Tolerates an
    /// unbalanced section (see [`AceRt::end_read_direct`]).
    pub fn end_write_direct(&self, r: RegionId, proto: &dyn Protocol) {
        let e = self.entry(r);
        self.counters.borrow_mut().ends += 1;
        e.write_active.set(e.write_active.get().saturating_sub(1));
        self.check_close(&e, true);
        if self.fast_hit(&e, Actions::END_WRITE) {
            self.fast_charge(Hook::EndWrite);
            return;
        }
        self.direct_charge();
        let st0 = self.hook_enter(Hook::EndWrite, &e, proto.name());
        proto.end_write(self, &e);
        self.hook_exit(st0, Hook::EndWrite, &e, proto.name());
    }

    /// `Ace_Lock` with a statically-resolved protocol.
    pub fn lock_direct(&self, r: RegionId, proto: &dyn Protocol) {
        let e = self.ensure_entry(r);
        self.direct_charge();
        let st0 = self.hook_enter(Hook::Lock, &e, proto.name());
        proto.lock(self, &e);
        self.hook_exit(st0, Hook::Lock, &e, proto.name());
    }

    /// `Ace_UnLock` with a statically-resolved protocol.
    pub fn unlock_direct(&self, r: RegionId, proto: &dyn Protocol) {
        let e = self.ensure_entry(r);
        self.direct_charge();
        let st0 = self.hook_enter(Hook::Unlock, &e, proto.name());
        proto.unlock(self, &e);
        self.hook_exit(st0, Hook::Unlock, &e, proto.name());
    }

    /// Drop a region entry from this node's table after flushing its
    /// coherence state home. Used by the CRL baseline's bounded
    /// unmapped-region cache when it evicts.
    ///
    /// # Panics
    ///
    /// Panics if the region is still mapped, in an access section, or if
    /// this node is its home (homes are never evicted).
    pub fn evict(&self, r: RegionId) {
        let e = self.entry(r);
        assert_eq!(e.mapped.get(), 0, "evicting a mapped region {r}");
        assert!(!e.busy(), "evicting a busy region {r}");
        assert!(!e.is_home_of(self.rank()), "evicting a home region {r}");
        let proto = self.space(e.space).proto();
        proto.flush(self, &e);
        self.regions.borrow_mut().remove(&r.0);
        self.region_cache_invalidate(r);
    }

    // ------------------------------------------------------------------
    // Typed data access
    //
    // Four variants, one contract matrix:
    //
    // |                  | checked (section asserted)   | unchecked            |
    // | read  (`&[T]`)   | `with`                       | `with_unchecked`     |
    // | write (`&mut[T]`)| `with_mut`                   | `with_mut_unchecked` |
    //
    // The *checked* variants debug-assert the paper's annotation contract:
    // reads happen inside a read or write section, writes inside a write
    // section. The *unchecked* variants exist for compiled code whose null
    // `start`/`end` annotations were removed by the direct-dispatch
    // optimization — the section discipline still holds in the program
    // logic, but the runtime can no longer see it, so only the weaker
    // invariant is asserted: the region must at least be locally usable
    // (mapped, in a section, or home-resident). All four take the typed
    // closure rather than returning a guard so borrow scope is explicit.
    // ------------------------------------------------------------------

    /// Typed slice length for a region entry, in elements of `T`.
    fn typed_count<T: Pod>(e: &RegionEntry) -> usize {
        e.words * 8 / std::mem::size_of::<T>()
    }

    /// Weak usability assertion for the unchecked accessors: the data must
    /// still be locally meaningful even if no section is open.
    fn debug_assert_usable(&self, e: &RegionEntry) {
        debug_assert!(
            e.mapped.get() > 0 || e.busy() || e.is_home_of(self.rank()),
            "unchecked access to region {} that is unmapped, idle, and not home here",
            e.id
        );
    }

    /// Read-access the region data as a typed slice. Must be inside a read
    /// or write section (debug-asserted), mirroring the paper's contract
    /// that accesses happen between `START` and `END` annotations.
    pub fn with<T: Pod, R>(&self, r: RegionId, f: impl FnOnce(&[T]) -> R) -> R {
        let e = self.entry(r);
        if self.checker.enabled() {
            if !e.busy() {
                self.checker.report(
                    self.node,
                    AceError::Conformance {
                        region: r,
                        rank: self.rank(),
                        kind: ConformanceKind::AccessOutsideSection { action: "read" },
                    },
                );
            }
        } else {
            debug_assert!(e.busy(), "data access outside an access section on {r}");
        }
        let d = e.data.borrow();
        f(pod::view(&d, Self::typed_count::<T>(&e)))
    }

    /// Read-access region data without the access-section debug check (see
    /// the contract matrix above). Still debug-asserts the region is
    /// locally usable.
    pub fn with_unchecked<T: Pod, R>(&self, r: RegionId, f: impl FnOnce(&[T]) -> R) -> R {
        let e = self.entry(r);
        self.debug_assert_usable(&e);
        let d = e.data.borrow();
        f(pod::view(&d, Self::typed_count::<T>(&e)))
    }

    /// Write-access the region data as a typed slice. Must be inside a
    /// write section (debug-asserted).
    pub fn with_mut<T: Pod, R>(&self, r: RegionId, f: impl FnOnce(&mut [T]) -> R) -> R {
        let e = self.entry(r);
        if self.checker.enabled() {
            if e.write_active.get() == 0 {
                // Distinguish "the protocol granted read, the program
                // wrote" from a write with no section at all.
                let kind = if e.read_active.get() > 0 {
                    ConformanceKind::WriteUnderReadGrant
                } else {
                    ConformanceKind::WriteOutsideSection
                };
                self.checker.report(
                    self.node,
                    AceError::Conformance { region: r, rank: self.rank(), kind },
                );
            }
        } else {
            debug_assert!(
                e.write_active.get() > 0,
                "mutable access outside a write section on {r}"
            );
        }
        let count = Self::typed_count::<T>(&e);
        e.with_data_mut(|d| f(pod::view_mut(d, count)))
    }

    /// Write-access region data without the write-section debug check (see
    /// the contract matrix above). Still debug-asserts the region is
    /// locally usable.
    pub fn with_mut_unchecked<T: Pod, R>(&self, r: RegionId, f: impl FnOnce(&mut [T]) -> R) -> R {
        let e = self.entry(r);
        self.debug_assert_usable(&e);
        let count = Self::typed_count::<T>(&e);
        e.with_data_mut(|d| f(pod::view_mut(d, count)))
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// `Ace_Barrier(space)`: barrier with the semantics of the space's
    /// protocol (e.g. a static update protocol propagates updates first).
    pub fn barrier(&self, sid: SpaceId) {
        self.counters.borrow_mut().barriers += 1;
        let s = self.space(sid);
        let proto = s.proto();
        self.hook_enter_space(Hook::Barrier, sid, proto.name());
        proto.barrier(self, &s);
        self.hook_exit_space(Hook::Barrier, sid, proto.name());
    }

    /// The plain machine barrier a protocol's `barrier` hook typically
    /// finishes with: centralized sense-free epoch barrier at node 0.
    pub fn space_barrier(&self, s: &SpaceEntry) {
        self.barrier_tag(s.id.0);
    }

    /// Machine-wide barrier independent of any space.
    pub fn machine_barrier(&self) {
        self.barrier_tag(GLOBAL_BAR_TAG);
    }

    fn barrier_tag(&self, tag: u32) {
        let epoch = {
            let mut m = self.bar_local_epoch.borrow_mut();
            let e = m.entry(tag).or_insert(0);
            *e += 1;
            *e
        };
        let prof = self.bar_prof_out.borrow_mut().remove(&tag).map(Arc::from);
        if self.rank() == 0 {
            self.bar_note_arrival(tag, epoch, prof);
        } else {
            self.send(0, AceMsg::BarArrive { tag, epoch, prof });
        }
        self.wait("barrier release", || {
            self.bar_released.borrow().get(&tag).copied().unwrap_or(0) >= epoch
        });
    }

    fn bar_note_arrival(&self, tag: u32, epoch: u64, prof: Option<Arc<[u64]>>) {
        if let Some(p) = prof {
            let mut acc = self.bar_prof_acc.borrow_mut();
            let sum = acc.entry((tag, epoch)).or_default();
            if sum.len() < p.len() {
                sum.resize(p.len(), 0);
            }
            for (s, v) in sum.iter_mut().zip(p.iter()) {
                *s += v;
            }
        }
        let full = {
            let mut counts = self.bar_counts.borrow_mut();
            let c = counts.entry((tag, epoch)).or_insert(0);
            *c += 1;
            if *c == self.nprocs() {
                counts.remove(&(tag, epoch));
                true
            } else {
                false
            }
        };
        if full {
            let agg: Option<Arc<[u64]>> =
                self.bar_prof_acc.borrow_mut().remove(&(tag, epoch)).map(Arc::from);
            for dst in 1..self.nprocs() {
                self.send(dst, AceMsg::BarRelease { tag, epoch, prof: agg.clone() });
            }
            if let Some(p) = agg {
                self.bar_prof_in.borrow_mut().insert(tag, p);
            }
            let mut rel = self.bar_released.borrow_mut();
            let e = rel.entry(tag).or_insert(0);
            *e = (*e).max(epoch);
        }
    }

    /// Stage this node's sharing-profile contribution for its next barrier
    /// on `sid`'s tag (adaptive protocol engine). The words ride the next
    /// `BarArrive` for that tag; node 0 sums all contributions element-wise
    /// and the aggregate rides every `BarRelease`, so after the barrier
    /// every node holds the identical machine-wide sum — consensus with
    /// zero extra messages and zero extra bytes charged.
    pub fn stage_bar_profile(&self, sid: SpaceId, prof: Vec<u64>) {
        self.bar_prof_out.borrow_mut().insert(sid.0, prof);
    }

    /// Take the aggregated profile released by this node's most recent
    /// barrier on `sid`'s tag, if any arrival staged one. Consuming: a
    /// second call returns `None` until the next profiled barrier.
    pub fn take_bar_aggregate(&self, sid: SpaceId) -> Option<Arc<[u64]>> {
        self.bar_prof_in.borrow_mut().remove(&sid.0)
    }

    /// `Ace_Lock`: dispatched through the region's protocol. Fetches the
    /// region's metadata if it was never mapped here (a lock may be the
    /// first contact a node has with a region).
    pub fn lock(&self, r: RegionId) {
        let e = self.ensure_entry(r);
        self.dispatch_charge();
        let proto = self.space(e.space).proto();
        let st0 = self.hook_enter(Hook::Lock, &e, proto.name());
        proto.lock(self, &e);
        self.hook_exit(st0, Hook::Lock, &e, proto.name());
    }

    /// `Ace_UnLock`.
    pub fn unlock(&self, r: RegionId) {
        let e = self.ensure_entry(r);
        self.dispatch_charge();
        let proto = self.space(e.space).proto();
        let st0 = self.hook_enter(Hook::Unlock, &e, proto.name());
        proto.unlock(self, &e);
        self.hook_exit(st0, Hook::Unlock, &e, proto.name());
    }

    /// The default lock implementation: FIFO queue at the region's home.
    pub fn default_lock(&self, e: &RegionEntry) {
        self.counters.borrow_mut().locks += 1;
        e.lock_granted.set(false);
        self.send(e.id.home(), AceMsg::LockReq { region: e.id });
        self.wait("lock grant", || e.lock_granted.get());
    }

    /// The default unlock implementation.
    pub fn default_unlock(&self, e: &RegionEntry) {
        self.send(e.id.home(), AceMsg::LockRelease { region: e.id });
    }

    // ------------------------------------------------------------------
    // Collective data exchange
    // ------------------------------------------------------------------

    /// Broadcast `vals` from `root` to all nodes; returns the payload on
    /// every node. Collective. The apps use this to distribute the region
    /// ids of freshly-built shared data structures.
    pub fn bcast(&self, root: usize, vals: &[u64]) -> Arc<[u64]> {
        let seq = self.bcast_seq.get();
        self.bcast_seq.set(seq + 1);
        if self.rank() == root {
            // One allocation; every recipient's message aliases it.
            let payload: Arc<[u64]> = vals.into();
            for dst in 0..self.nprocs() {
                if dst != root {
                    self.send(dst, AceMsg::Bcast { seq, vals: payload.clone() });
                }
            }
            payload
        } else {
            self.wait("broadcast payload", || self.bcast_recv.borrow().contains_key(&seq));
            self.bcast_recv.borrow_mut().remove(&seq).unwrap()
        }
    }

    /// Gather each node's `vals` at `root`; returns rank-indexed payloads
    /// at the root and `None` elsewhere. Collective.
    pub fn gather(&self, root: usize, vals: &[u64]) -> Option<Vec<Arc<[u64]>>> {
        let seq = self.gather_seq.get();
        self.gather_seq.set(seq + 1);
        if self.rank() == root {
            self.wait("gather contributions", || {
                self.gather_recv.borrow().get(&seq).map_or(0, |v| v.len()) == self.nprocs() - 1
            });
            let mut got = self.gather_recv.borrow_mut().remove(&seq).unwrap_or_default();
            got.push((root, vals.into()));
            got.sort_by_key(|(src, _)| *src);
            Some(got.into_iter().map(|(_, v)| v).collect())
        } else {
            self.send(root, AceMsg::Gather { seq, vals: vals.into() });
            None
        }
    }

    /// All-reduce a single word with `op` (gather at node 0, reduce,
    /// broadcast). Collective.
    pub fn allreduce_u64(&self, val: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        match self.gather(0, &[val]) {
            Some(all) => {
                let red = all.iter().map(|v| v[0]).reduce(&op).unwrap();
                self.bcast(0, &[red])[0]
            }
            None => self.bcast(0, &[])[0],
        }
    }

    /// All-reduce a single f64 (bit-transported through the word channel).
    pub fn allreduce_f64(&self, val: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let red = self.allreduce_u64(val.to_bits(), |a, b| {
            op(f64::from_bits(a), f64::from_bits(b)).to_bits()
        });
        f64::from_bits(red)
    }

    /// Final machine-wide barrier; after it returns every node has
    /// finished all protocol work it owes to others.
    ///
    /// Under an active check mode this is also where the conformance
    /// checker runs its node-exit work, exactly once (the guard makes a
    /// second call — the `run_ace` wrapper after a program that already
    /// shut down — barrier-only, so a program can call `shutdown` itself
    /// and then inspect [`AceRt::violations`]): leaked-section sweep,
    /// then a gather of every node's section history at node 0, which
    /// reports cross-node conflicting sections.
    pub fn shutdown(&self) {
        self.machine_barrier();
        if !self.checker.enabled() || !self.checker.begin_analysis() {
            return;
        }
        self.checker.sweep_open(self.node);
        let encoded = self.checker.encode_history(self.nprocs());
        if let Some(all) = self.gather(0, &encoded) {
            self.checker.analyze(self.node, &all);
        }
        self.machine_barrier();
    }
}

/// Canonical base-state code for a home entry (protocols may redefine
/// their state space but `gmalloc`/`flush` establish this value).
pub const HOME_OWNED_STATE: u32 = 0;
/// Canonical base-state code for a remote entry with an invalid cache.
pub const REMOTE_INVALID: u32 = 1;
/// Remote entry holding a valid shared (read) copy. A cross-protocol
/// convention rather than a runtime-enforced state: every fetching
/// protocol in the suite parks a readable remote copy on code 2. Used
/// only for uniform upgrade accounting, never for protocol decisions.
pub const REMOTE_SHARED: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests::NoopProtocol;
    use crate::run_ace;
    use ace_machine::CostModel;

    fn noop() -> Rc<dyn Protocol> {
        Rc::new(NoopProtocol)
    }

    #[test]
    fn gmalloc_map_and_access_locally() {
        let r = run_ace(1, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = rt.gmalloc::<f64>(s, 8);
            rt.map(rid);
            rt.start_write(rid);
            rt.with_mut::<f64, _>(rid, |d| d[3] = 2.5);
            rt.end_write(rid);
            rt.start_read(rid);
            let v = rt.with::<f64, _>(rid, |d| d[3]);
            rt.end_read(rid);
            v
        });
        assert_eq!(r.results[0], 2.5);
    }

    #[test]
    fn remote_map_fetches_metadata() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = if rt.rank() == 0 {
                let rid = rt.gmalloc::<u64>(s, 16);
                rt.bcast(0, &[rid.0])[0]
            } else {
                rt.bcast(0, &[])[0]
            };
            let rid = RegionId(rid);
            rt.map(rid);
            let e = rt.entry(rid);
            (e.words, e.space, rt.counters().map_misses)
        });
        assert_eq!(r.results[0], (16, SpaceId(0), 0));
        assert_eq!(r.results[1], (16, SpaceId(0), 1));
    }

    #[test]
    fn second_map_hits_cache() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 4).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            rt.unmap(rid);
            rt.map(rid);
            let c = rt.counters();
            (c.map_hits, c.map_misses)
        });
        assert_eq!(r.results[0], (2, 0)); // home: both maps hit
        assert_eq!(r.results[1], (1, 1)); // remote: miss then URC hit
    }

    #[test]
    fn barrier_synchronizes_epochs() {
        // Odd ranks sleep-charge, then all meet at the barrier; afterwards
        // each node observes everyone's pre-barrier values via gather.
        let r = run_ace(4, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            for _ in 0..10 {
                rt.barrier(s);
            }
            rt.allreduce_u64(rt.rank() as u64, |a, b| a + b)
        });
        assert!(r.results.iter().all(|&v| v == 6));
    }

    #[test]
    fn barrier_profile_aggregates_machine_wide() {
        // Every node stages a contribution; after the barrier every node
        // holds the identical element-wise sum, and a barrier with nothing
        // staged releases no aggregate.
        let r = run_ace(4, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            rt.stage_bar_profile(s, vec![1, rt.rank() as u64]);
            rt.barrier(s);
            let agg = rt.take_bar_aggregate(s).expect("aggregate released");
            assert!(rt.take_bar_aggregate(s).is_none(), "take is consuming");
            rt.barrier(s);
            assert!(rt.take_bar_aggregate(s).is_none(), "unprofiled barrier");
            agg.to_vec()
        });
        for node in &r.results {
            // 4 contributions of [1, rank]; ranks 0..4 sum to 6.
            assert_eq!(node, &[4, 6]);
        }
    }

    #[test]
    fn ragged_profiles_sum_to_longest() {
        // Contributions may differ in length (a node that created fewer
        // regions): the sum is over the longest, missing words count 0 —
        // and staging from a strict subset of nodes still aggregates.
        let r = run_ace(3, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            match rt.rank() {
                0 => rt.stage_bar_profile(s, vec![2]),
                1 => rt.stage_bar_profile(s, vec![3, 5, 7]),
                _ => {}
            }
            rt.barrier(s);
            rt.take_bar_aggregate(s).expect("aggregate").to_vec()
        });
        for node in &r.results {
            assert_eq!(node, &[5, 5, 7]);
        }
    }

    #[test]
    fn change_protocol_counts_a_switch_and_bumps_the_epoch() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let _rid = if rt.rank() == 0 { Some(rt.gmalloc::<u64>(s, 4)) } else { None };
            rt.machine_barrier();
            rt.change_protocol(s, noop());
            rt.change_protocol(s, noop());
            (rt.counters().switches, rt.node().switch_epoch())
        });
        for node in &r.results {
            assert_eq!(*node, (2, 2));
        }
    }

    #[test]
    fn machine_and_space_barriers_are_independent() {
        let r = run_ace(3, CostModel::free(), |rt| {
            let s1 = rt.new_space(noop());
            let s2 = rt.new_space(noop());
            rt.barrier(s1);
            rt.machine_barrier();
            rt.barrier(s2);
            rt.barrier(s1);
            rt.counters().barriers
        });
        assert!(r.results.iter().all(|&b| b == 3));
    }

    #[test]
    fn default_lock_is_mutual_exclusion() {
        // All nodes increment a plain (non-coherent) counter at home under
        // the region lock using message-passed updates through bcast-free
        // path: instead, each node appends its rank to a home-side log via
        // lock-protected aux increments. With the noop protocol, data is
        // not kept coherent, so we only test the lock protocol itself:
        // strictly alternating grant/release must never double-grant.
        let r = run_ace(4, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            for _ in 0..25 {
                rt.lock(rid);
                rt.unlock(rid);
            }
            rt.machine_barrier();
            // After everything quiesces the home lock must be free.
            if rt.rank() == 0 {
                let e = rt.entry(rid);
                rt.wait("lock settles", || !e.lock_held.get());
                assert!(e.lock_queue.borrow().is_empty());
            }
            true
        });
        assert!(r.results.iter().all(|&x| x));
    }

    #[test]
    fn bcast_and_gather_round_trip() {
        let r = run_ace(5, CostModel::free(), |rt| {
            let from2 = rt.bcast(2, &[100 + rt.rank() as u64, 7]);
            assert_eq!(&*from2, &[102, 7]);
            let gathered = rt.gather(1, &[rt.rank() as u64 * 10]);
            if rt.rank() == 1 {
                let flat: Vec<u64> = gathered.unwrap().iter().map(|v| v[0]).collect();
                assert_eq!(flat, vec![0, 10, 20, 30, 40]);
            } else {
                assert!(gathered.is_none());
            }
            rt.allreduce_f64(rt.rank() as f64, |a, b| a.max(b))
        });
        assert!(r.results.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn change_protocol_swaps_and_reinits() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 2).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            rt.change_protocol(s, noop());
            rt.space(s).proto().name()
        });
        assert!(r.results.iter().all(|&n| n == "noop"));
    }

    #[test]
    #[should_panic(expected = "not known on node")]
    fn access_before_map_panics() {
        run_ace(1, CostModel::free(), |rt| {
            rt.start_read(RegionId::new(0, 99));
        });
    }

    #[test]
    #[should_panic(expected = "end_read outside a read section")]
    fn unbalanced_end_read_panics() {
        run_ace(1, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = rt.gmalloc::<u64>(s, 1);
            rt.map(rid);
            rt.end_read(rid);
        });
    }

    #[test]
    fn counters_track_annotation_mix() {
        let r = run_ace(1, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = rt.gmalloc::<u64>(s, 1);
            rt.map(rid);
            for _ in 0..3 {
                rt.start_read(rid);
                rt.end_read(rid);
            }
            rt.start_write(rid);
            rt.end_write(rid);
            rt.unmap(rid);
            rt.counters()
        });
        let c = &r.results[0];
        assert_eq!(c.start_reads, 3);
        assert_eq!(c.start_writes, 1);
        assert_eq!(c.ends, 4);
        assert_eq!(c.map_hits, 1);
        assert_eq!(c.unmaps, 1);
        assert_eq!(c.total_annotations(), 10);
        assert_eq!(c.dispatched, 8);
    }

    #[test]
    fn region_cache_absorbs_repeated_lookups() {
        let r = run_ace(1, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = rt.gmalloc::<u64>(s, 1);
            rt.map(rid);
            for _ in 0..100 {
                rt.start_read(rid);
                rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
            }
            rt.counters()
        });
        let c = &r.results[0];
        // First touch misses and fills the slot; steady state all hits.
        assert!(c.region_cache_misses >= 1);
        assert!(
            c.region_cache_hit_rate().unwrap() > 0.9,
            "tight loop should hit the inline cache: {c:?}"
        );
    }

    #[test]
    fn eviction_invalidates_region_cache() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            // Warm the cache slot, then drop the entry.
            rt.start_read(rid);
            rt.end_read(rid);
            rt.unmap(rid);
            let gone = if rt.rank() == 1 {
                rt.evict(rid);
                rt.lookup(rid).is_none()
            } else {
                true // homes are never evicted
            };
            rt.machine_barrier();
            gone
        });
        assert_eq!(r.results, vec![true, true], "cached pointer must not outlive the table entry");
    }

    #[test]
    fn try_entry_reports_structured_errors() {
        let r = run_ace(1, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let other = rt.new_space(noop());
            let rid = rt.gmalloc::<u64>(s, 2);

            let unknown = rt.try_entry(RegionId::new(0, 999)).err().unwrap();
            let mismatch = rt.try_entry_in(rid, other).err().unwrap();
            let ok = rt.try_entry_in(rid, s).is_ok();
            (unknown, mismatch, ok)
        });
        let (unknown, mismatch, ok) = r.results[0].clone();
        assert!(matches!(unknown, AceError::UnknownRegion { rank: 0, .. }));
        assert!(matches!(
            mismatch,
            AceError::SpaceMismatch { expected: SpaceId(1), actual: SpaceId(0), .. }
        ));
        assert!(ok);
    }

    #[test]
    fn try_entry_flags_use_after_unmap_remotely() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            rt.unmap(rid);
            let got = rt.try_entry(rid);
            rt.machine_barrier();
            match (rt.rank(), got) {
                // Home keeps its entry alive regardless of map count.
                (0, Ok(_)) => true,
                // The remote's entry survives as an unmapped cache entry,
                // but a mapped view of it is a use-after-unmap.
                (1, Err(AceError::UseAfterUnmap { rank: 1, .. })) => true,
                _ => false,
            }
        });
        assert_eq!(r.results, vec![true, true]);
    }

    /// Like `NoopProtocol`, but declares every access hook fast in every
    /// state — exercises the fast-path plumbing end to end.
    struct FastNoop;

    impl Protocol for FastNoop {
        fn name(&self) -> &'static str {
            "fastnoop"
        }
        fn on_create(&self, _rt: &AceRt, e: &RegionEntry) {
            e.fast.set(Actions::ACCESS);
        }
        fn on_map(&self, _rt: &AceRt, e: &RegionEntry) {
            e.fast.set(Actions::ACCESS);
        }
        fn start_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
        fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
        fn start_write(&self, _rt: &AceRt, _e: &RegionEntry) {}
        fn end_write(&self, _rt: &AceRt, _e: &RegionEntry) {}
        fn handle(&self, _rt: &AceRt, _e: &RegionEntry, _msg: ProtoMsg, _src: usize) {}
        fn flush(&self, _rt: &AceRt, _e: &RegionEntry) {}
    }

    #[test]
    fn fast_mask_absorbs_accesses_and_escape_hatch_restores_dispatch() {
        let r = run_ace(1, CostModel::cm5(), |rt| {
            let s = rt.new_space(Rc::new(FastNoop));
            let rid = rt.gmalloc::<u64>(s, 1);
            rt.map(rid);
            let t0 = rt.node().now();
            rt.start_read(rid);
            rt.end_read(rid);
            let fast_elapsed = rt.node().now() - t0;
            let hook_after_fast = rt.last_hook();

            rt.set_fast_paths(false);
            let t1 = rt.node().now();
            rt.start_write(rid);
            rt.end_write(rid);
            let slow_elapsed = rt.node().now() - t1;
            rt.set_fast_paths(true);

            (rt.counters(), fast_elapsed, slow_elapsed, hook_after_fast)
        });
        let (c, fast_elapsed, slow_elapsed, hook_after_fast) = r.results[0].clone();
        assert_eq!(c.fast_hits, 2, "read pair absorbed by the mask");
        assert_eq!(c.dispatched, 2, "forced-slow write pair dispatches");
        assert_eq!(c.start_reads, 1);
        assert_eq!(c.ends, 2);
        assert!(
            fast_elapsed < slow_elapsed,
            "fast pair must be cheaper: {fast_elapsed} vs {slow_elapsed}"
        );
        assert_eq!(hook_after_fast, "end_read", "fast path still tracks last_hook");
    }

    #[test]
    fn error_diagnostics_carry_last_hook() {
        let r = run_ace(1, CostModel::free(), |rt| {
            let s = rt.new_space(noop());
            let rid = rt.gmalloc::<u64>(s, 1);
            rt.map(rid);
            rt.start_read(rid);
            rt.end_read(rid);
            let err = rt.try_entry(RegionId::new(0, 42)).err().unwrap();
            (rt.last_hook(), err.to_string())
        });
        let (hook, msg) = r.results[0].clone();
        assert_eq!(hook, "end_read");
        assert!(msg.contains("last hook: end_read"), "{msg}");
    }
}
