//! Wall-clock cost of the adaptive engine's three code paths, each against
//! the static-protocol baseline it wraps:
//!
//! * **fast path** — a `start_read`/`end_read` pair through the engine's
//!   delegation layer plus interval profiling, vs the same pair on a bare
//!   `SeqInvalidate`. The target is small-constant overhead (~tens of ns
//!   per pair): one `Rc` clone of the inner protocol and a handful of
//!   `Cell` bumps.
//! * **sampling** — a barrier with profile staging/aggregation enabled, vs
//!   a bare SC barrier, amortized over the accesses between barriers. The
//!   staging is one small `Vec` ride on the existing `BarArrive`, so the
//!   per-access amortized cost should be low single-digit ns.
//! * **switch** — a flush-point protocol switch (storm-mode engine
//!   alternating between two candidates every barrier) vs the same
//!   workload pinned to one candidate (flush only, no handover). The delta
//!   is the full coherent-switch sequence: drain, machine barrier, state
//!   reset, adopt, machine barrier.

use ace_core::{run_ace, CostModel, RegionId};
use ace_protocols::{AdaptiveEngine, AdaptiveSpec, SeqInvalidate};
use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;

const PAIRS: usize = 20_000;
const BARRIERS: usize = 500;

fn read_pairs(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptpath");
    g.sample_size(20);

    // Delegation + profiling overhead per access pair.
    g.bench_function(format!("sc_read_pair_x{PAIRS}"), |b| {
        b.iter(|| {
            run_ace(1, CostModel::free(), |rt| {
                let s = rt.new_space(Rc::new(SeqInvalidate::new()));
                let r: RegionId = rt.gmalloc::<u64>(s, 8);
                rt.map(r);
                let mut acc = 0u64;
                for _ in 0..PAIRS {
                    rt.start_read(r);
                    acc = acc.wrapping_add(rt.with::<u64, _>(r, |d| d[0]));
                    rt.end_read(r);
                }
                acc
            })
        })
    });
    g.bench_function(format!("adaptive_read_pair_x{PAIRS}"), |b| {
        b.iter(|| {
            run_ace(1, CostModel::free(), |rt| {
                let spec = AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::DYN_UPDATE);
                let s = rt.new_space(Rc::new(AdaptiveEngine::new(spec)));
                let r: RegionId = rt.gmalloc::<u64>(s, 8);
                rt.map(r);
                let mut acc = 0u64;
                for _ in 0..PAIRS {
                    rt.start_read(r);
                    acc = acc.wrapping_add(rt.with::<u64, _>(r, |d| d[0]));
                    rt.end_read(r);
                }
                acc
            })
        })
    });
    g.finish();
}

/// One barrier per `PER_BAR` accesses; the sc/adaptive delta divided by
/// `BARRIERS * PER_BAR` is the amortized per-access sampling cost.
fn barriers(c: &mut Criterion) {
    const PER_BAR: usize = 8;
    let mut g = c.benchmark_group("adaptpath");
    g.sample_size(20);

    let workload = |rt: &ace_core::AceRt, s, r: RegionId| {
        let mut acc = 0u64;
        for _ in 0..BARRIERS {
            for _ in 0..PER_BAR {
                rt.start_read(r);
                acc = acc.wrapping_add(rt.with::<u64, _>(r, |d| d[0]));
                rt.end_read(r);
            }
            rt.barrier(s);
        }
        acc
    };

    g.bench_function(format!("sc_barrier_x{BARRIERS}"), |b| {
        b.iter(|| {
            run_ace(1, CostModel::free(), |rt| {
                let s = rt.new_space(Rc::new(SeqInvalidate::new()));
                let r: RegionId = rt.gmalloc::<u64>(s, 8);
                rt.map(r);
                workload(rt, s, r)
            })
        })
    });
    g.bench_function(format!("adaptive_sampling_barrier_x{BARRIERS}"), |b| {
        b.iter(|| {
            run_ace(1, CostModel::free(), |rt| {
                // Two candidates so profiling runs, but a quiet workload:
                // the activity floor keeps the engine from ever switching,
                // isolating pure staging/aggregation cost.
                let spec = AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::DYN_UPDATE);
                let s = rt.new_space(Rc::new(AdaptiveEngine::new(spec)));
                let r: RegionId = rt.gmalloc::<u64>(s, 8);
                rt.map(r);
                workload(rt, s, r)
            })
        })
    });
    g.finish();
}

/// Flush-point switch vs plain flush. Storm mode round-robins candidates
/// every interval regardless of the cost model, so every barrier commits a
/// full handover; the pinned run pays only the flush the barrier already
/// implies.
fn switches(c: &mut Criterion) {
    const STEPS: usize = 50;
    let mut g = c.benchmark_group("adaptpath");
    g.sample_size(20);

    let run = |spec: AdaptiveSpec| {
        run_ace(2, CostModel::free(), move |rt| {
            let s = rt.new_space(Rc::new(AdaptiveEngine::new(spec)));
            let r: RegionId = rt.gmalloc::<u64>(s, 8);
            rt.map(r);
            let mut acc = 0u64;
            for i in 0..STEPS {
                if rt.rank() == 0 {
                    rt.start_write(r);
                    rt.with_mut::<u64, _>(r, |d| d[0] = i as u64);
                    rt.end_write(r);
                }
                rt.barrier(s);
                rt.start_read(r);
                acc = acc.wrapping_add(rt.with::<u64, _>(r, |d| d[0]));
                rt.end_read(r);
                rt.barrier(s);
            }
            acc
        })
    };

    g.bench_function(format!("pinned_flush_x{STEPS}"), |b| {
        b.iter(|| run(AdaptiveSpec::pinned(AdaptiveSpec::SC)))
    });
    g.bench_function(format!("storm_switch_x{STEPS}"), |b| {
        b.iter(|| {
            run(AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::DYN_UPDATE)
                .with_dwell(1)
                .storming())
        })
    });
    g.finish();
}

criterion_group!(benches, read_pairs, barriers, switches);
criterion_main!(benches);
