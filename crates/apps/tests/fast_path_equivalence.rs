//! The fast mask must be a pure accelerator. A set bit promises the
//! skipped hook was a state-preserving no-op, so running the same
//! deterministic workload with the fast paths forced off and on has to
//! produce bit-identical behavior — same verification value, same
//! message and byte counts, same annotation counters, and the same
//! per-node digest of every home region's contents. The only permitted
//! differences are the fast-hit/dispatch counter split and simulated
//! time, which may only shrink (each absorbed annotation charges
//! `fast_path` instead of a full dispatch).
//!
//! The workloads are EM3D (the paper's most communication-dense kernel)
//! and Water (both its null-protocol intra-molecular and pipelined
//! inter-molecular phases), with parameters driven by proptest.
//!
//! Both are bit-deterministic end to end and get the strict comparison.
//! Water earns it through its fixed (node, molecule-index) force
//! reduction order: contributions are buffered locally and applied in
//! barrier-separated node turns, so arrival order never perturbs the
//! f64 sums (see `water::run`).

use ace_apps::{em3d, water, AceDsm, Variant};
use ace_core::{run_ace_with, CostModel, OpCounters, Spmd};
use proptest::prelude::*;

/// Per-node observables plus machine totals for one run.
struct Obs {
    verification: f64,
    digests: Vec<u64>,
    counters: OpCounters,
    sim_ns: u64,
    msgs: u64,
    bytes: u64,
}

fn run_app<F>(fast: bool, nprocs: usize, f: F) -> Obs
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    let r = run_ace_with(Spmd::builder().nprocs(nprocs).cost(CostModel::cm5()), |rt| {
        rt.set_fast_paths(fast);
        let d = AceDsm::new(rt);
        let v = f(&d);
        // Rendezvous so every node's digest sees the settled final state.
        rt.machine_barrier();
        (v, rt.data_digest(), rt.counters())
    });
    let mut counters = OpCounters::default();
    for (_, _, c) in &r.results {
        counters.merge(c);
    }
    Obs {
        verification: r.results[0].0,
        digests: r.results.iter().map(|(_, d, _)| *d).collect(),
        counters,
        sim_ns: r.sim_ns,
        msgs: r.stats.total_msgs(),
        bytes: r.stats.total_bytes(),
    }
}

/// The scheduling-independent invariants, valid for every workload.
fn assert_fast_accounting(off: &Obs, on: &Obs, ctx: &str) {
    assert_eq!(off.counters.fast_hits, 0, "{ctx}: escape hatch really off");
    assert!(on.counters.fast_hits > 0, "{ctx}: workload should exercise the fast path");
    assert_eq!(
        off.counters.dispatched + off.counters.direct,
        on.counters.dispatched + on.counters.direct + on.counters.fast_hits,
        "{ctx}: every absorbed annotation was a would-be dispatch"
    );
    // Annotation counts are fixed by app control flow regardless of
    // scheduling; the mask must not change how often hooks are *named*,
    // only how they are charged.
    for (name, get) in [
        ("start_reads", (|c: &OpCounters| c.start_reads) as fn(&OpCounters) -> u64),
        ("start_writes", |c| c.start_writes),
        ("ends", |c| c.ends),
        ("unmaps", |c| c.unmaps),
        ("barriers", |c| c.barriers),
        ("locks", |c| c.locks),
    ] {
        assert_eq!(get(&off.counters), get(&on.counters), "{ctx}: {name}");
    }
}

/// Full bit-equivalence, for workloads that are deterministic end to end.
fn assert_equivalent(off: &Obs, on: &Obs, ctx: &str) {
    assert_eq!(off.verification.to_bits(), on.verification.to_bits(), "{ctx}: verification value");
    assert_eq!(off.digests, on.digests, "{ctx}: per-node region digests");
    assert_eq!(off.msgs, on.msgs, "{ctx}: total message count");
    assert_eq!(off.bytes, on.bytes, "{ctx}: total payload bytes");

    // All counters must agree exactly; only the split between fast hits
    // and dispatched/direct calls may differ. Wire-envelope counts are
    // also stripped: how the coalescing buffers group logical sends into
    // envelopes depends on wall-clock arrival order inside waits, so two
    // otherwise identical runs can disagree on `wire_msgs` (logical
    // counts stay exact and are compared via `msgs`/`logical_msgs`).
    let strip = |c: &OpCounters| OpCounters {
        dispatched: 0,
        direct: 0,
        fast_hits: 0,
        wire_msgs: 0,
        ..c.clone()
    };
    assert_eq!(strip(&off.counters), strip(&on.counters), "{ctx}: counters");
    assert_fast_accounting(off, on, ctx);

    // Skipped hooks only ever remove locally-charged cost, but global
    // completion time carries run-to-run jitter (which annotation absorbs
    // an in-flight message rides on wall-clock thread scheduling; see
    // machine/tests/trace_equivalence.rs), and with sibling tests running
    // 4-node machines concurrently the jitter exceeds 10% at these tiny
    // scales. Allow a quarter here; the default-scale test asserts the
    // strict inequality where the savings dominate the jitter.
    assert!(
        on.sim_ns <= off.sim_ns + off.sim_ns / 4,
        "{ctx}: fast paths slowed the run beyond scheduling jitter (on={} off={})",
        on.sim_ns,
        off.sim_ns
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn em3d_fast_paths_preserve_behavior(
        seed in 0u64..1000,
        steps in 1usize..4,
        pct_remote in 5u32..50,
        custom in any::<bool>(),
    ) {
        let p = em3d::Params {
            e_nodes: 40,
            h_nodes: 40,
            degree: 3,
            pct_remote,
            steps,
            seed,
            hoist_maps: false,
        };
        let v = if custom { Variant::Custom } else { Variant::Sc };
        let off = run_app(false, 4, |d| em3d::run(d, &p, v));
        let on = run_app(true, 4, |d| em3d::run(d, &p, v));
        assert_equivalent(&off, &on, "em3d");
    }

    #[test]
    fn water_fast_paths_preserve_behavior(
        seed in 0u64..1000,
        molecules in 16usize..48,
        custom in any::<bool>(),
    ) {
        let p = water::Params { molecules, steps: 2, seed };
        let v = if custom { Variant::Custom } else { Variant::Sc };
        let off = run_app(false, 4, |d| water::run(d, &p, v));
        let on = run_app(true, 4, |d| water::run(d, &p, v));
        // Water's fixed (node, molecule) force reduction order makes it
        // bit-deterministic, so it earns the same strict comparison as
        // EM3D — digests and all.
        assert_equivalent(&off, &on, "water");
    }
}

#[test]
fn em3d_fast_paths_preserve_behavior_default_scale() {
    // One deterministic, larger configuration outside proptest so a
    // failure here reproduces without a seed file.
    let p = em3d::Params {
        e_nodes: 120,
        h_nodes: 120,
        degree: 4,
        pct_remote: 25,
        steps: 6,
        seed: 42,
        hoist_maps: false,
    };
    let off = run_app(false, 4, |d| em3d::run(d, &p, Variant::Sc));
    let on = run_app(true, 4, |d| em3d::run(d, &p, Variant::Sc));
    assert_equivalent(&off, &on, "em3d default scale");
    // At this scale the absorbed dispatch charges dwarf scheduling
    // jitter, so the cost claim holds strictly.
    assert!(
        on.sim_ns <= off.sim_ns,
        "fast paths must not slow the run (on={} off={})",
        on.sim_ns,
        off.sim_ns
    );
    // The acceptance bar for the tentpole: the mask absorbs the bulk of
    // the EM3D SC annotation stream.
    let rate = on.counters.fast_hit_rate().expect("annotations ran");
    assert!(rate > 0.8, "EM3D SC fast-hit rate should exceed 80%: {rate:.3}");
}
