//! Processor-count scaling of the protocol-customizability story, now on
//! the multiplexed execution engine: Barnes, EM3D, and Water swept over
//! powers of two from 2 up to the `MAX_NODES` ceiling of 4096.
//!
//! The sweep weak-scales each workload (inputs grow with the processor
//! count) so a row's simulated time reflects how coherence and transport
//! costs grow with sharing breadth, not a shrinking slice of a fixed
//! problem. Wall-clock is printed alongside simulated time so the
//! scheduler's own overhead stays visible: simulated time is the figure,
//! wall time is the engine.
//!
//! Usage: scaling [--app NAME[,NAME...]] [--max N] [--min N]
//!                [--backend threads|multiplexed] [--runs K]
//!                [--json [PATH]] [--smoke]
//!
//! `--json` without a path writes `BENCH_scaling.json` at the repo root,
//! the canonical location CI and EXPERIMENTS.md point at. `--smoke` runs
//! the CI gate instead of the sweep: EM3D at 256 nodes under the
//! multiplexed backend must complete with wire <= logical envelopes.

use std::time::Instant;

use ace_apps::runner::{launch_ace_with, RunOutcome};
use ace_apps::{barnes, em3d, water, Variant};
use ace_bench::fig7::VariantStats;
use ace_bench::json::{self, JsonRow};
use ace_core::{CostModel, ExecBackend, MachineBuilder, Spmd, MAX_NODES};

/// Apps in the sweep: the three the scale-out engine was built to drive.
const APPS: [&str; 3] = ["barnes", "em3d", "water"];

/// Per-app ceiling for the default sweep. Water's deterministic force
/// reduction takes `nprocs` barrier-separated turns per step, so its
/// machine-size cost is quadratic in ranks no matter how thin the input;
/// the curve past 1024 would measure only that artifact.
fn app_max(app: &str) -> usize {
    match app {
        "water" => 1024,
        _ => MAX_NODES,
    }
}

fn machine(procs: usize, backend: ExecBackend) -> MachineBuilder {
    Spmd::builder().nprocs(procs).cost(CostModel::cm5()).backend(backend)
}

/// One weak-scaled run: work per node is constant, so the per-app
/// parameters grow linearly with the processor count.
fn run_scaled(app: &str, procs: usize, v: Variant, backend: ExecBackend) -> RunOutcome {
    match app {
        "em3d" => {
            let p = em3d::Params {
                e_nodes: 2 * procs,
                h_nodes: 2 * procs,
                degree: 3,
                pct_remote: 20,
                steps: 2,
                seed: 7,
                hoist_maps: true,
            };
            launch_ace_with(machine(procs, backend), move |d| em3d::run(d, &p, v))
        }
        "barnes" => {
            // One body per rank: Barnes' per-body force cost already grows
            // with the total body count, so this is the thinnest input
            // where every rank still owns tree work.
            let p = barnes::Params { bodies: procs, steps: 1, theta: 1.0, seed: 3 };
            launch_ace_with(machine(procs, backend), move |d| barnes::run(d, &p, v))
        }
        "water" => {
            // Capped at the paper's full 512-molecule input: the pair
            // phase is quadratic in molecules, so past 256 ranks the
            // sweep strong-scales the paper input instead.
            let p = water::Params { molecules: (2 * procs).min(512), steps: 1, seed: 23 };
            launch_ace_with(machine(procs, backend), move |d| water::run(d, &p, v))
        }
        other => panic!("unknown app {other}"),
    }
}

/// Best-wall-clock stats over `runs` repetitions (same estimator as the
/// fig7 harnesses: logical counts are deterministic, wall keeps the min).
fn measure(app: &str, procs: usize, v: Variant, backend: ExecBackend, runs: usize) -> VariantStats {
    let mut out = VariantStats { wall_ns: u64::MAX, ..Default::default() };
    for _ in 0..runs.max(1) {
        let r = run_scaled(app, procs, v, backend);
        assert!(r.verification.is_finite(), "{app}@{procs}: lost its verification value");
        out.sim_ns = r.sim_ns;
        out.msgs = r.msgs;
        out.wire_msgs = r.wire_msgs;
        out.bytes = r.bytes;
        out.switches = r.counters.switches;
        out.wall_ns = out.wall_ns.min(r.wall.as_nanos() as u64);
    }
    out
}

fn smoke() {
    let start = Instant::now();
    let r = run_scaled("em3d", 256, Variant::Custom, ExecBackend::Multiplexed);
    let ok = r.verification.is_finite() && r.wire_msgs <= r.msgs;
    println!(
        "scaling smoke: em3d @ 256 multiplexed: verification={:.6} wire={} logical={} wall={:?}",
        r.verification,
        r.wire_msgs,
        r.msgs,
        start.elapsed()
    );
    if !ok {
        eprintln!("scaling smoke FAILED");
        std::process::exit(1);
    }
    println!("scaling smoke PASSED");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let apps: Vec<String> = ace_bench::parse_apps(&args, "--app", &APPS);
    let min = arg_val(&args, "--min").unwrap_or(2).max(2);
    let max = arg_val(&args, "--max").unwrap_or(MAX_NODES).min(MAX_NODES);
    let runs = arg_val(&args, "--runs").unwrap_or(1);
    let backend = match args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
    {
        Some("threads") => ExecBackend::Threads,
        Some("multiplexed") | None => ExecBackend::Multiplexed,
        Some(other) => panic!("unknown backend {other} (want threads|multiplexed)"),
    };

    println!(
        "scaling: custom-protocol speedup vs processor count, weak-scaled, {backend:?} backend\n"
    );
    let mut rows: Vec<JsonRow> = Vec::new();
    for app in &apps {
        let mut counts = Vec::new();
        let mut p = min.next_power_of_two();
        while p <= max.min(app_max(app)) {
            counts.push(p);
            p *= 2;
        }
        println!(
            "{app}\n{:>6} {:>12} {:>14} {:>9} {:>14} {:>9} {:>12} {:>12}",
            "procs",
            "SC (ms)",
            "custom (ms)",
            "speedup",
            "adaptive (ms)",
            "switches",
            "SC wall",
            "custom wall"
        );
        for &procs in &counts {
            let sc = measure(app, procs, Variant::Sc, backend, runs);
            let cu = measure(app, procs, Variant::Custom, backend, runs);
            let ad = measure(app, procs, Variant::Adaptive, backend, runs);
            println!(
                "{procs:>6} {:>12.2} {:>14.2} {:>9.2} {:>14.2} {:>9} {:>10.1}ms {:>10.1}ms",
                sc.sim_ms(),
                cu.sim_ms(),
                sc.sim_ms() / cu.sim_ms(),
                ad.sim_ms(),
                ad.switches,
                sc.wall_ns as f64 / 1e6,
                cu.wall_ns as f64 / 1e6,
            );
            rows.push(JsonRow::new("scaling", app, "sc", procs, sc));
            rows.push(JsonRow::new("scaling", app, "custom", procs, cu));
            rows.push(JsonRow::new("scaling", app, "adaptive", procs, ad));
        }
        println!();
    }

    if let Some(path) = json::out_path(&args, "BENCH_scaling.json") {
        json::write(&path, &rows).expect("write --json file");
        println!("wrote {} rows to {}", rows.len(), path.display());
    }
}

fn arg_val(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|s| s.parse().ok())
}
