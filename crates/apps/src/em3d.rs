//! EM3D: electromagnetic-wave propagation on a bipartite graph (§3.3).
//!
//! The data structure is a bipartite graph of E and H nodes with directed
//! edges between the sets; each iteration recomputes every E value as a
//! weighted sum of its H neighbours, then every H value from its E
//! neighbours. The paper allocates the E values and H values from two
//! separate spaces (Figure 2) and gets ≈3.5× from a dynamic update
//! protocol and ≈5× from a static update protocol over the default
//! invalidation protocol.
//!
//! Each graph value is its own one-word region — producer/consumer sharing
//! at the natural granularity. Remote neighbours are mapped once before
//! the time loop (the hand-optimized structure the paper describes for the
//! runtime version in §5.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dsm::{exchange_ids, Dsm, IdMap};
use crate::Variant;
use ace_protocols::{AdaptiveSpec, ProtoSpec};

/// Which protocol the custom variant plugs in (the §3.3 experiment tries
/// both update libraries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Em3dProto {
    /// Default invalidation protocol.
    Sc,
    /// Dynamic update: writes pushed to sharers immediately (≈3.5×).
    Dynamic,
    /// Static update: sharer lists built once, pushes at barriers (≈5×).
    Static,
    /// Adaptive engine choosing among SC and the two update protocols
    /// from the observed producer/consumer signals.
    Adaptive,
    /// Adaptive with the same candidate set but an explicit starting
    /// candidate — the harness for proving the engine *discovers* the
    /// update-protocol win from an arbitrary (e.g. SC) starting point.
    AdaptiveFrom(u8),
    /// Adaptive engine pinned to a single candidate bit
    /// ([`AdaptiveSpec::SC`] and friends) — the equivalence harnesses
    /// assert this is indistinguishable from the static protocol it names.
    Pinned(u8),
}

/// EM3D workload parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of E nodes.
    pub e_nodes: usize,
    /// Number of H nodes.
    pub h_nodes: usize,
    /// Out-degree of every node.
    pub degree: usize,
    /// Percentage of edges that point to a remote processor.
    pub pct_remote: u32,
    /// Time steps.
    pub steps: usize,
    /// Workload seed.
    pub seed: u64,
    /// Map every neighbour once before the time loop instead of around
    /// each access. `false` is the CRL-1.0 idiom the ported sources use
    /// (§5.1); `true` is the hand-optimized runtime structure of §5.3
    /// ("the runtime system version performs ACE_MAP calls on each
    /// processor's data before entering the main computation loop").
    pub hoist_maps: bool,
}

impl Params {
    /// The paper's input (Table 3): 1000 E and 1000 H vertices, 20%
    /// remote edges, degree 10, 100 steps.
    pub fn paper() -> Self {
        Params {
            e_nodes: 1000,
            h_nodes: 1000,
            degree: 10,
            pct_remote: 20,
            steps: 100,
            seed: 7,
            hoist_maps: false,
        }
    }

    /// A scaled-down input for unit tests.
    pub fn small() -> Self {
        Params {
            e_nodes: 48,
            h_nodes: 48,
            degree: 4,
            pct_remote: 25,
            steps: 4,
            seed: 7,
            hoist_maps: false,
        }
    }
}

struct Side {
    /// Region id of each locally-owned value.
    my_vals: Vec<u64>,
    /// Per owned node: neighbour region ids (opposite side).
    nbr_ids: Vec<Vec<u64>>,
    /// Per owned node: neighbour weights.
    weights: Vec<Vec<f64>>,
}

fn block(total: usize, nprocs: usize, rank: usize) -> std::ops::Range<usize> {
    let per = total.div_ceil(nprocs);
    let lo = (per * rank).min(total);
    let hi = (per * (rank + 1)).min(total);
    lo..hi
}

fn compute_phase<D: Dsm>(d: &D, side: &Side, hoist: bool) {
    for ((own, nbrs), ws) in side.my_vals.iter().zip(&side.nbr_ids).zip(&side.weights) {
        let mut acc = 0.0f64;
        for (&nbr, &w) in nbrs.iter().zip(ws) {
            if !hoist {
                d.map(nbr);
            }
            d.start_read(nbr);
            acc += w * d.with::<f64, _>(nbr, |v| v[0]);
            d.end_read(nbr);
            if !hoist {
                d.unmap(nbr);
            }
        }
        d.charge_flops(2 * nbrs.len() as u64);
        if !hoist {
            d.map(*own);
        }
        d.start_write(*own);
        d.with_mut::<f64, _>(*own, |v| v[0] = v[0] * 0.5 + acc);
        d.end_write(*own);
        if !hoist {
            d.unmap(*own);
        }
        d.charge_flops(2);
    }
}

/// Run EM3D with an explicit protocol choice; returns the verification
/// checksum (global sum of all values after the last step).
pub fn run_with<D: Dsm>(d: &D, p: &Params, proto: Em3dProto) -> f64 {
    // Figure 2: two spaces, built under the default protocol.
    let eval = d.new_space(ProtoSpec::Sc);
    let hval = d.new_space(ProtoSpec::Sc);

    let my_e = block(p.e_nodes, d.nprocs(), d.rank()).len();
    let my_h = block(p.h_nodes, d.nprocs(), d.rank()).len();

    // MakeGraph(): allocate values, exchange ids, wire the edges.
    let mut rng = StdRng::seed_from_u64(p.seed.wrapping_add(d.rank() as u64 * 1009));
    let my_e_ids: Vec<u64> = (0..my_e).map(|_| d.gmalloc::<f64>(eval, 1)).collect();
    let all_e_ids = exchange_ids(d, &my_e_ids);
    let my_h_ids: Vec<u64> = (0..my_h).map(|_| d.gmalloc::<f64>(hval, 1)).collect();
    let all_h_ids = exchange_ids(d, &my_h_ids);

    let (e_nbrs, e_ws) = build_adjacency(d, p, p.h_nodes, &mut rng, &all_h_ids, my_e);
    let e_side = Side { my_vals: my_e_ids.clone(), nbr_ids: e_nbrs, weights: e_ws };
    let (h_nbrs, h_ws) = build_adjacency(d, p, p.e_nodes, &mut rng, &all_e_ids, my_h);
    let h_side = Side { my_vals: my_h_ids.clone(), nbr_ids: h_nbrs, weights: h_ws };

    // Initialize owned values (inside write sections, under SC).
    for (k, &rid) in my_e_ids.iter().chain(my_h_ids.iter()).enumerate() {
        d.map(rid);
        d.start_write(rid);
        d.with_mut::<f64, _>(rid, |v| v[0] = (k % 17) as f64 * 0.25 + 1.0);
        d.end_write(rid);
        d.unmap(rid);
    }
    d.barrier(eval);
    d.barrier(hval);

    // Lines 8-9 of Figure 2: plug in the update library.
    match proto {
        Em3dProto::Sc => {}
        Em3dProto::Dynamic => {
            d.change_protocol(eval, ProtoSpec::DynUpdate);
            d.change_protocol(hval, ProtoSpec::DynUpdate);
        }
        Em3dProto::Static => {
            d.change_protocol(eval, ProtoSpec::StaticUpdate);
            d.change_protocol(hval, ProtoSpec::StaticUpdate);
        }
        Em3dProto::Adaptive => {
            // The programmer knows this is a producer→consumer pattern
            // (that is why the update candidates are listed at all) but
            // not which update flavor wins, so the engine starts at the
            // conservative family member — dynamic update — and is left
            // to discover the static-schedule refinement from the
            // profiles. Starting at SC instead would be safe but pays
            // invalidation-priced warmup intervals on the one app where
            // SC is 5x off.
            let spec = AdaptiveSpec::new(
                AdaptiveSpec::SC | AdaptiveSpec::DYN_UPDATE | AdaptiveSpec::STATIC_UPDATE,
            )
            .starting_at(AdaptiveSpec::DYN_UPDATE);
            d.change_protocol(eval, ProtoSpec::Adaptive(spec));
            d.change_protocol(hval, ProtoSpec::Adaptive(spec));
        }
        Em3dProto::AdaptiveFrom(bit) => {
            let spec = AdaptiveSpec::new(
                AdaptiveSpec::SC | AdaptiveSpec::DYN_UPDATE | AdaptiveSpec::STATIC_UPDATE,
            )
            .starting_at(bit);
            d.change_protocol(eval, ProtoSpec::Adaptive(spec));
            d.change_protocol(hval, ProtoSpec::Adaptive(spec));
        }
        Em3dProto::Pinned(bit) => {
            let spec = ProtoSpec::Adaptive(AdaptiveSpec::pinned(bit));
            // Pinning to SC still replaces the protocol object, so the
            // flush/adopt handover runs exactly as for any other target.
            d.change_protocol(eval, spec);
            d.change_protocol(hval, spec);
        }
    }

    // Hand-optimized structure (§5.3): map every neighbour and own value
    // once, before the time loop. The CRL-idiom version maps around each
    // access instead. Under the update protocols the first map is also
    // where subscriptions happen, so both styles warm up here or on first
    // touch.
    if p.hoist_maps {
        for ids in e_side.nbr_ids.iter().chain(h_side.nbr_ids.iter()) {
            for &r in ids {
                d.map(r);
            }
        }
        for &r in my_e_ids.iter().chain(my_h_ids.iter()) {
            d.map(r);
        }
    }
    d.barrier(eval);
    d.barrier(hval);

    // The computation of Figure 2, lines 12-17.
    for _ in 0..p.steps {
        compute_phase(d, &e_side, p.hoist_maps); // new E from H
        d.barrier(eval);
        compute_phase(d, &h_side, p.hoist_maps); // new H from E
        d.barrier(hval);
    }

    // Verification: global checksum of every value.
    let mut local = 0.0;
    for &rid in e_side.my_vals.iter().chain(h_side.my_vals.iter()) {
        d.map(rid);
        d.start_read(rid);
        local += d.with::<f64, _>(rid, |v| v[0]);
        d.end_read(rid);
        d.unmap(rid);
    }
    d.allreduce_f64(local, |a, b| a + b)
}

fn build_adjacency<D: Dsm>(
    d: &D,
    p: &Params,
    other_total: usize,
    rng: &mut StdRng,
    other_ids: &IdMap,
    my_count: usize,
) -> (Vec<Vec<u64>>, Vec<Vec<f64>>) {
    let mut nbr_ids = Vec::with_capacity(my_count);
    let mut weights = Vec::with_capacity(my_count);
    for _ in 0..my_count {
        let mut ids = Vec::with_capacity(p.degree);
        let mut ws = Vec::with_capacity(p.degree);
        for _ in 0..p.degree {
            let owner = if d.nprocs() > 1 && rng.gen_range(0u32..100) < p.pct_remote {
                let r = rng.gen_range(0..d.nprocs() - 1);
                if r >= d.rank() {
                    r + 1
                } else {
                    r
                }
            } else {
                d.rank()
            };
            let owned = block(other_total, d.nprocs(), owner).len();
            if owned == 0 {
                continue;
            }
            let idx = rng.gen_range(0..owned);
            ids.push(other_ids.rank(owner)[idx]);
            ws.push(rng.gen_range(0.01..0.2));
        }
        nbr_ids.push(ids);
        weights.push(ws);
    }
    (nbr_ids, weights)
}

/// Run EM3D under a [`Variant`] (the custom variant uses the static
/// update protocol, the paper's best).
pub fn run<D: Dsm>(d: &D, p: &Params, v: Variant) -> f64 {
    run_with(
        d,
        p,
        match v {
            Variant::Sc => Em3dProto::Sc,
            Variant::Custom => Em3dProto::Static,
            Variant::Adaptive => Em3dProto::Adaptive,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{launch_ace, launch_crl};
    use ace_core::CostModel;

    #[test]
    fn all_protocols_agree_on_ace() {
        let p = Params::small();
        let sc = launch_ace(4, CostModel::free(), |d| run_with(d, &p, Em3dProto::Sc));
        let dy = launch_ace(4, CostModel::free(), |d| run_with(d, &p, Em3dProto::Dynamic));
        let st = launch_ace(4, CostModel::free(), |d| run_with(d, &p, Em3dProto::Static));
        assert!(sc.verification.is_finite());
        assert_eq!(sc.verification, dy.verification, "dynamic update changed results");
        assert_eq!(sc.verification, st.verification, "static update changed results");
    }

    #[test]
    fn ace_and_crl_agree() {
        let p = Params::small();
        let a = launch_ace(3, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let c = launch_crl(3, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert_eq!(a.verification, c.verification);
    }

    #[test]
    fn update_protocols_cut_messages() {
        let p = Params::small();
        let sc = launch_ace(4, CostModel::free(), |d| run_with(d, &p, Em3dProto::Sc));
        let st = launch_ace(4, CostModel::free(), |d| run_with(d, &p, Em3dProto::Static));
        assert!(
            st.msgs < sc.msgs,
            "static update should send fewer messages: st={} sc={}",
            st.msgs,
            sc.msgs
        );
    }

    #[test]
    fn single_node_runs() {
        let p = Params::small();
        let out = launch_ace(1, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert!(out.verification.is_finite());
    }
}
