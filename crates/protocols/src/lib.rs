//! The Ace protocol library (§2, §5.2 of the paper).
//!
//! Every protocol here implements the full-access-control interface of
//! [`ace_core::Protocol`]: hooks before/after reads and writes, at
//! map/unmap, and at synchronization points, plus an active-message
//! handler. Each protocol's distributed state lives in the protocol-owned
//! fields of [`ace_core::RegionEntry`] (state code, sharer bitmask, owner,
//! pending count, aux word, blocked queue, twin buffer) and in
//! [`ace_core::SpaceEntry`] (dirty list, outstanding count, aux).
//!
//! | protocol | paper use | semantics |
//! |---|---|---|
//! | [`SeqInvalidate`] | the default | sequentially-consistent, home-based invalidation (CRL-class MSI) |
//! | [`DynamicUpdate`] | Barnes-Hut bodies, EM3D experiment | writes propagated to all sharers immediately after each write |
//! | [`StaticUpdate`] | EM3D | sharer lists built on first touch, updates pushed at barriers (Falsafi et al.'s EM3D protocol) |
//! | [`NullProtocol`] | Water intra-molecular phase | no coherence actions at all |
//! | [`Migratory`] | migratory data | single copy migrates to each accessor with exclusive ownership |
//! | [`PipelinedWrite`] | Water inter-molecular phase | local writes diffed against a twin; f64 deltas pipelined home and accumulated; completion checked at barriers |
//! | [`HomeOwned`] | BSC | asserts only the creating node writes; readers pull bulk copies, validity bounded by barriers |
//! | [`FetchAddCounter`] | TSP job counter | `lock` performs a one-round-trip fetch-and-add at home |
//! | [`AdaptiveEngine`] | runtime-chosen | meta-protocol: samples sharing signals, switches a space among the above at barriers |
//!
//! The [`registry`] module is the analogue of the paper's protocol
//! registration script (Figure 1): a table of protocol names, their
//! optimizability, and their null handlers, consumed by the Ace-C compiler.

pub mod adaptive;
pub mod counter;
pub mod dyn_update;
#[cfg(test)]
mod fast_mask_tests;
pub mod home_owned;
pub mod migratory;
pub mod null;
pub mod pipelined;
pub mod registry;
pub mod seq_inv;
pub mod static_update;

pub use adaptive::{AdaptiveEngine, AdaptiveSpec};
pub use counter::FetchAddCounter;
pub use dyn_update::DynamicUpdate;
pub use home_owned::HomeOwned;
pub use migratory::Migratory;
pub use null::NullProtocol;
pub use pipelined::PipelinedWrite;
pub use registry::{make, ProtoSpec};
pub use seq_inv::SeqInvalidate;
pub use static_update::StaticUpdate;

/// Region state codes shared by the invalidation-style protocols. The
/// runtime establishes `HOME` at `gmalloc` and `R_INVALID` on first map of
/// a remote region; protocols take it from there.
pub mod states {
    /// This node is the region's home (master copy lives here).
    pub const HOME: u32 = 0;
    /// Remote cache: no valid copy.
    pub const R_INVALID: u32 = 1;
    /// Remote cache: valid read copy.
    pub const R_SHARED: u32 = 2;
    /// Remote cache: exclusive, writable copy.
    pub const R_EXCL: u32 = 3;
    /// Remote cache: read request in flight.
    pub const R_WAIT_READ: u32 = 4;
    /// Remote cache: write/exclusive request in flight.
    pub const R_WAIT_WRITE: u32 = 5;
}

/// Aux-word bit assignments shared by the protocols (home and remote roles
/// never coexist for one entry, so the bits could overlap safely; they are
/// kept distinct anyway for debuggability).
pub mod auxbits {
    /// Home side: a directory round (recall or invalidation) is in flight.
    pub const BUSY: u64 = 1 << 0;
    /// Remote side: an invalidation arrived while an access section was
    /// open; it is honoured at the matching `end_*`.
    pub const INV_PENDING: u64 = 1 << 1;
    /// Remote side: a recall arrived while a section was open.
    pub const RECALL_PENDING: u64 = 1 << 2;
    /// Remote side: a request is in flight / a granted copy has not yet
    /// been used. Grants followed immediately by an invalidate or recall
    /// would otherwise be yanked before the waiting access ever sees them
    /// (both messages can be handled in one poll batch); while WANTED is
    /// set, yanks defer exactly like during an open section.
    pub const WANTED: u64 = 1 << 3;
    /// Shift for the home-side pending grantee (stored as rank + 1).
    pub const GRANTEE_SHIFT: u32 = 16;

    /// Read the pending grantee, if any.
    pub fn grantee(aux: u64) -> Option<usize> {
        let g = (aux >> GRANTEE_SHIFT) & 0xFFFF;
        (g != 0).then(|| g as usize - 1)
    }

    /// Store a pending grantee.
    pub fn with_grantee(aux: u64, rank: usize) -> u64 {
        (aux & !(0xFFFFu64 << GRANTEE_SHIFT)) | (((rank as u64) + 1) << GRANTEE_SHIFT)
    }

    /// Clear the pending grantee.
    pub fn clear_grantee(aux: u64) -> u64 {
        aux & !(0xFFFFu64 << GRANTEE_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::auxbits::*;

    #[test]
    fn grantee_round_trip() {
        let aux = with_grantee(BUSY, 13);
        assert_eq!(grantee(aux), Some(13));
        assert_eq!(aux & BUSY, BUSY);
        assert_eq!(grantee(clear_grantee(aux)), None);
        assert_eq!(clear_grantee(aux) & BUSY, BUSY);
    }

    #[test]
    fn grantee_zero_rank_distinct_from_none() {
        assert_eq!(grantee(with_grantee(0, 0)), Some(0));
        assert_eq!(grantee(0), None);
    }
}
