//! Offline stand-in for `criterion`.
//!
//! Same spelling as the real crate for the surface the benches use
//! (`benchmark_group`, `sample_size`, `warm_up_time`, `measurement_time`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros, and `black_box`), but a much simpler engine:
//! per sample it auto-scales the iteration count toward
//! `measurement_time / sample_size`, then reports min/median/mean over the
//! samples. No statistical regression analysis, no HTML reports.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up, self.measurement);
        BenchmarkGroup { _parent: self, name: name.into(), sample_size, warm_up, measurement }
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget, split across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Measure one closure and print a summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up: run single iterations until the budget is spent, and
        // use the fastest observed iteration to pick the batch size.
        let mut per_iter = Duration::MAX;
        let warm_start = Instant::now();
        loop {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_sample = self.measurement.as_nanos() / self.sample_size as u128;
        let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 100_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{}/{:<40} time: [min {:>12} median {:>12} mean {:>12}]  ({} samples x {} iters)",
            self.name,
            id,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            self.sample_size,
            iters,
        );
        self
    }

    /// End the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
