//! Structured runtime errors.
//!
//! The historical annotation API panics on misuse (an unmapped region is
//! the DSM equivalent of a wild pointer). [`AceError`] gives the same
//! failures a typed, `Result`-returning surface — [`crate::AceRt::try_entry`]
//! and friends — and routes the panicking paths through it so every
//! diagnostic carries the region, the space, and the last hook the runtime
//! executed on the failing node.

use std::fmt;

use ace_machine::ConfigError;

use crate::ids::{RegionId, SpaceId};

/// One completed access section, as recorded by the conformance checker
/// and exchanged between nodes at shutdown for the cross-node
/// conflicting-section analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionRecord {
    /// The region the section was held on.
    pub region: RegionId,
    /// The node that held the section.
    pub rank: usize,
    /// True for a write section, false for a read section.
    pub write: bool,
    /// Name of the protocol governing the region's space when the section
    /// opened (truncated to eight bytes on the wire).
    pub proto: String,
    /// Virtual time at which the outermost open hook completed.
    pub open_t: u64,
    /// Virtual time at which the outermost close began.
    pub close_t: u64,
    /// The node's vector clock just after the open hook completed.
    pub open_vc: Vec<u64>,
    /// The node's vector clock just before the close hook ran.
    pub close_vc: Vec<u64>,
}

impl fmt::Display for SectionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} section on node {} [{}..{} ns, protocol {}]",
            if self.write { "write" } else { "read" },
            self.rank,
            self.open_t,
            self.close_t,
            self.proto
        )
    }
}

/// What the conformance checker found wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceKind {
    /// Data access on a region with no access section open.
    AccessOutsideSection {
        /// The offending access, `"read"` or `"write"`.
        action: &'static str,
    },
    /// Mutable data access while only read sections were open — the
    /// protocol granted read permission, the program wrote.
    WriteUnderReadGrant,
    /// Mutable data access with no section open at all.
    WriteOutsideSection,
    /// An access section was still open when the node's program exited.
    SectionLeftOpen {
        /// True for a write section.
        write: bool,
        /// Virtual time at which the leaked section opened.
        opened_at: u64,
    },
    /// Two nodes held concurrent sections on one region in a combination
    /// the protocol never grants (vector-clock-concurrent, cross-node).
    /// The records are boxed so the common error variants stay small.
    ConflictingSections {
        /// One of the conflicting sections.
        a: Box<SectionRecord>,
        /// The other conflicting section.
        b: Box<SectionRecord>,
    },
}

/// A failed runtime operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AceError {
    /// The region has no entry on this node: it was never `gmalloc`ed
    /// here, mapped here, or fetched here by a lock.
    UnknownRegion {
        /// The region that was asked for.
        region: RegionId,
        /// The asking node.
        rank: usize,
        /// The last annotation hook the runtime ran on this node before
        /// the failure ("none" if no hook has run yet).
        last_hook: &'static str,
    },
    /// The region exists but belongs to a different space than required.
    SpaceMismatch {
        /// The region that was asked for.
        region: RegionId,
        /// The space the caller required.
        expected: SpaceId,
        /// The space the region actually belongs to.
        actual: SpaceId,
    },
    /// The region's entry survives as an unmapped cache entry (CRL-style
    /// unmapped-region caching) but the caller asked for a mapped view.
    UseAfterUnmap {
        /// The unmapped region.
        region: RegionId,
        /// The asking node.
        rank: usize,
        /// The last annotation hook the runtime ran on this node.
        last_hook: &'static str,
    },
    /// No space with this id exists on this node.
    UnknownSpace {
        /// The space that was asked for.
        space: SpaceId,
        /// The asking node.
        rank: usize,
    },
    /// The conformance checker (`ace-check`) caught the program or a
    /// protocol violating the access-control contract.
    Conformance {
        /// The region the violation is on.
        region: RegionId,
        /// The node that detected it (for cross-node conflicts, the
        /// analyzing node).
        rank: usize,
        /// What exactly went wrong.
        kind: ConformanceKind,
    },
    /// The machine configuration combined incompatible knobs (e.g. the
    /// socket transport with the deterministic scheduler); rejected
    /// eagerly before any node is spawned.
    Config(ConfigError),
}

impl From<ConfigError> for AceError {
    fn from(e: ConfigError) -> Self {
        AceError::Config(e)
    }
}

impl fmt::Display for AceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AceError::UnknownRegion { region, rank, last_hook } => {
                write!(f, "region {region} not known on node {rank} (last hook: {last_hook})")
            }
            AceError::SpaceMismatch { region, expected, actual } => {
                write!(f, "region {region} belongs to space {actual}, expected space {expected}")
            }
            AceError::UseAfterUnmap { region, rank, last_hook } => {
                write!(
                    f,
                    "region {region} is no longer mapped on node {rank} \
                     (last hook: {last_hook})"
                )
            }
            AceError::UnknownSpace { space, rank } => {
                write!(f, "unknown space {space} on node {rank}")
            }
            AceError::Config(e) => {
                write!(f, "invalid machine configuration: {e}")
            }
            AceError::Conformance { region, rank, kind } => {
                write!(f, "conformance violation on region {region}: ")?;
                match kind {
                    ConformanceKind::AccessOutsideSection { action } => {
                        write!(f, "{action} access outside any access section on node {rank}")
                    }
                    ConformanceKind::WriteUnderReadGrant => {
                        write!(
                            f,
                            "mutable access on node {rank} inside a read section \
                             (the protocol granted read, the program wrote)"
                        )
                    }
                    ConformanceKind::WriteOutsideSection => {
                        write!(f, "mutable access outside a write section on node {rank}")
                    }
                    ConformanceKind::SectionLeftOpen { write, opened_at } => {
                        write!(
                            f,
                            "{} section still open at node {rank} exit \
                             (opened at {opened_at} ns)",
                            if *write { "write" } else { "read" }
                        )
                    }
                    ConformanceKind::ConflictingSections { a, b } => {
                        write!(
                            f,
                            "concurrent {}+{} sections the protocol never grants: \
                             {a} overlaps {b}",
                            if a.write { "write" } else { "read" },
                            if b.write { "write" } else { "read" }
                        )
                    }
                }
            }
        }
    }
}

impl std::error::Error for AceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_region_message_keeps_wild_pointer_phrase() {
        // Downstream panic tests (and users' muscle memory) match on this
        // substring; the Display must keep it stable.
        let e = AceError::UnknownRegion {
            region: RegionId::new(0, 99),
            rank: 3,
            last_hook: "start_read",
        };
        let s = e.to_string();
        assert!(s.contains("not known on node 3"), "{s}");
        assert!(s.contains("start_read"), "{s}");
    }

    #[test]
    fn display_covers_all_variants() {
        let r = RegionId::new(1, 2);
        assert!(AceError::SpaceMismatch { region: r, expected: SpaceId(0), actual: SpaceId(1) }
            .to_string()
            .contains("expected space"));
        assert!(AceError::UseAfterUnmap { region: r, rank: 0, last_hook: "unmap" }
            .to_string()
            .contains("no longer mapped"));
        assert!(AceError::UnknownSpace { space: SpaceId(7), rank: 1 }
            .to_string()
            .contains("unknown space"));
    }

    #[test]
    fn config_errors_wrap_with_context() {
        let e: AceError = ConfigError::SocketDeterministic.into();
        let s = e.to_string();
        assert!(s.contains("invalid machine configuration"), "{s}");
        assert!(s.contains("deterministic"), "{s}");
    }

    #[test]
    fn conformance_display_names_region_node_and_offense() {
        let r = RegionId::new(1, 2);
        let conf = |kind| AceError::Conformance { region: r, rank: 3, kind };

        let s = conf(ConformanceKind::AccessOutsideSection { action: "read" }).to_string();
        assert!(s.contains("conformance violation"), "{s}");
        assert!(s.contains("read access outside any access section on node 3"), "{s}");

        let s = conf(ConformanceKind::WriteUnderReadGrant).to_string();
        assert!(s.contains("the protocol granted read, the program wrote"), "{s}");

        let s = conf(ConformanceKind::WriteOutsideSection).to_string();
        assert!(s.contains("outside a write section on node 3"), "{s}");

        let s = conf(ConformanceKind::SectionLeftOpen { write: true, opened_at: 42 }).to_string();
        assert!(s.contains("write section still open at node 3 exit"), "{s}");
        assert!(s.contains("42 ns"), "{s}");

        let rec = |rank: usize, write: bool| {
            Box::new(SectionRecord {
                region: r,
                rank,
                write,
                proto: "unfenced".into(),
                open_t: 10,
                close_t: 20,
                open_vc: vec![1, 0],
                close_vc: vec![2, 0],
            })
        };
        let s = conf(ConformanceKind::ConflictingSections { a: rec(0, true), b: rec(1, false) })
            .to_string();
        assert!(s.contains("concurrent write+read sections"), "{s}");
        assert!(s.contains("write section on node 0"), "{s}");
        assert!(s.contains("read section on node 1"), "{s}");
        assert!(s.contains("protocol unfenced"), "{s}");
    }
}
