//! Globally-unique identifiers for regions and spaces.
//!
//! A region id encodes its home node in the top 16 bits, so any node can
//! route a request for an unknown region without a directory lookup — the
//! analogue of the paper's `address_t` values that are meaningful on every
//! processor and can be stored inside shared data.

/// Identifier of a shared region. Bits 48..64 hold the home node's rank;
/// bits 0..48 hold a per-home allocation sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

impl RegionId {
    /// Compose an id from a home rank and per-home sequence number.
    pub fn new(home: usize, seq: u64) -> Self {
        debug_assert!(home < (1 << 16));
        debug_assert!(seq < (1 << 48));
        RegionId(((home as u64) << 48) | seq)
    }

    /// The rank of the region's home node.
    pub fn home(self) -> usize {
        (self.0 >> 48) as usize
    }

    /// The per-home allocation sequence number.
    pub fn seq(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }

    /// The sentinel "null pointer" region id.
    pub const NULL: RegionId = RegionId(u64::MAX);

    /// Whether this is the null region id.
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}.{}", self.home(), self.seq())
    }
}

/// Identifier of a space. Spaces are created collectively (every node calls
/// `new_space` in the same program order), so a simple per-node counter
/// yields identical ids machine-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpaceId(pub u32);

impl std::fmt::Display for SpaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_id_round_trip() {
        let r = RegionId::new(13, 0xABCDE);
        assert_eq!(r.home(), 13);
        assert_eq!(r.seq(), 0xABCDE);
    }

    #[test]
    fn null_is_distinct() {
        assert!(RegionId::NULL.is_null());
        assert!(!RegionId::new(0, 0).is_null());
        assert!(!RegionId::new(63, (1 << 48) - 2).is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(RegionId::new(3, 7).to_string(), "r3.7");
        assert_eq!(SpaceId(2).to_string(), "s2");
    }
}
