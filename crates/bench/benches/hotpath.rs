//! Wall-clock cost of one `start_read`/`end_read` pair on the annotation
//! hot path, in three configurations: the fast mask (CRL-style in-state
//! check, no hook dispatch), the forced slow path (`set_fast_paths(false)`,
//! full protocol dispatch), and the CRL baseline's own in-state fast path.
//! All three loops touch a home region in its quiescent state, so every
//! access is the common case the mask exists for.

use ace_core::{run_ace, CostModel, RegionId};
use ace_crl::run_crl;
use ace_protocols::SeqInvalidate;
use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;

const PAIRS: usize = 20_000;

fn read_pairs(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(20);
    // Report per-pair cost: Criterion's mean for one iteration divided by
    // PAIRS is the ns/pair headline the issue asks for.
    g.bench_function(format!("ace_fast_read_pair_x{PAIRS}"), |b| {
        b.iter(|| {
            run_ace(1, CostModel::free(), |rt| {
                let s = rt.new_space(Rc::new(SeqInvalidate::new()));
                let r: RegionId = rt.gmalloc::<u64>(s, 8);
                rt.map(r);
                let mut acc = 0u64;
                for _ in 0..PAIRS {
                    rt.start_read(r);
                    acc = acc.wrapping_add(rt.with::<u64, _>(r, |d| d[0]));
                    rt.end_read(r);
                }
                acc
            })
        })
    });
    g.bench_function(format!("ace_slow_read_pair_x{PAIRS}"), |b| {
        b.iter(|| {
            run_ace(1, CostModel::free(), |rt| {
                rt.set_fast_paths(false);
                let s = rt.new_space(Rc::new(SeqInvalidate::new()));
                let r: RegionId = rt.gmalloc::<u64>(s, 8);
                rt.map(r);
                let mut acc = 0u64;
                for _ in 0..PAIRS {
                    rt.start_read(r);
                    acc = acc.wrapping_add(rt.with::<u64, _>(r, |d| d[0]));
                    rt.end_read(r);
                }
                acc
            })
        })
    });
    g.bench_function(format!("crl_read_pair_x{PAIRS}"), |b| {
        b.iter(|| {
            run_crl(1, CostModel::free(), |crl| {
                let r = crl.create::<u64>(8);
                crl.map(r);
                let mut acc = 0u64;
                for _ in 0..PAIRS {
                    crl.start_read(r);
                    acc = acc.wrapping_add(crl.with::<u64, _>(r, |d| d[0]));
                    crl.end_read(r);
                }
                acc
            })
        })
    });
    g.finish();
}

criterion_group!(benches, read_pairs);
criterion_main!(benches);
