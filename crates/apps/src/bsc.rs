//! BSC: blocked sparse Cholesky factorization (§5.2).
//!
//! The paper factors Tk15.O (a Boeing/Harwell matrix we cannot
//! redistribute); we substitute a synthetic **block-banded SPD matrix**
//! with the same blocked supernodal structure: the matrix is constructed
//! as `A = L₀·L₀ᵀ` from a random block-banded lower-triangular `L₀` with a
//! positive diagonal, so the factorization has a closed-form answer to
//! verify against (Cholesky factors are unique).
//!
//! Each block is one region — the paper's point about user-specified
//! granularity: "the most important optimization is the use of bulk
//! transfer for the transport of blocks between processors. Since the Ace
//! runtime system supports user-specified granularity, the default
//! protocol uses bulk transfer automatically", which is why the
//! custom-protocol win is *marginal* for BSC. The custom variant plugs in
//! [`ace_protocols::HomeOwned`], exploiting "the fact that data are
//! written only by the processors that created them".
//!
//! The parallel algorithm is a bulk-synchronous right-looking fan-out:
//! factor the diagonal block, solve the sub-diagonal panel, apply the
//! trailing update, with a barrier between stages.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dsm::{exchange_ids, Dsm};
use crate::Variant;
use ace_protocols::{AdaptiveSpec, ProtoSpec};

/// BSC workload parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of block rows/columns.
    pub nblocks: usize,
    /// Block dimension (each block is `block × block` f64s).
    pub block: usize,
    /// Block half-bandwidth: block (i, j) is nonzero iff `i - j <= band`.
    pub band: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Params {
    /// A Tk15.O-scale stand-in: 24 block-columns of 24×24 blocks,
    /// bandwidth 8.
    pub fn paper() -> Self {
        Params { nblocks: 24, block: 24, band: 8, seed: 5 }
    }

    /// A scaled-down input for unit tests.
    pub fn small() -> Self {
        Params { nblocks: 8, block: 8, band: 3, seed: 5 }
    }
}

/// Deterministic generator for block (i, j) of L₀ (identical on all
/// nodes). Blocks outside the band are zero; diagonal blocks are lower
/// triangular with a dominant positive diagonal.
fn l0_block(p: &Params, i: usize, j: usize) -> Vec<f64> {
    let b = p.block;
    let mut m = vec![0.0; b * b];
    if i < j || i - j > p.band {
        return m;
    }
    let mut rng =
        StdRng::seed_from_u64(p.seed ^ ((i as u64) << 32) ^ ((j as u64) << 8) ^ 0xB5C0_u64);
    if i == j {
        for r in 0..b {
            for c in 0..=r {
                m[r * b + c] = if r == c {
                    rng.gen_range(2.0..3.0) + p.band as f64
                } else {
                    rng.gen_range(-0.5..0.5)
                };
            }
        }
    } else {
        for x in m.iter_mut() {
            *x = rng.gen_range(-0.5..0.5);
        }
    }
    m
}

/// A[i][j] = Σ_k L₀[i][k] · L₀[j][k]ᵀ (only k within both bands).
fn a_block(p: &Params, i: usize, j: usize) -> Vec<f64> {
    let b = p.block;
    let mut acc = vec![0.0; b * b];
    let klo = i.saturating_sub(p.band).max(j.saturating_sub(p.band));
    for k in klo..=j.min(i) {
        let li = l0_block(p, i, k);
        let lj = l0_block(p, j, k);
        for r in 0..b {
            for c in 0..b {
                let mut s = 0.0;
                for t in 0..b {
                    s += li[r * b + t] * lj[c * b + t];
                }
                acc[r * b + c] += s;
            }
        }
    }
    acc
}

/// Block owner: round-robin over anti-diagonals for load balance.
fn owner(i: usize, j: usize, nprocs: usize) -> usize {
    (i + j * 3) % nprocs
}

/// In-place Cholesky of a dense `b × b` block.
fn potrf(m: &mut [f64], b: usize) {
    for k in 0..b {
        let d = m[k * b + k].sqrt();
        m[k * b + k] = d;
        for r in (k + 1)..b {
            m[r * b + k] /= d;
        }
        for c in (k + 1)..b {
            for r in c..b {
                m[r * b + c] -= m[r * b + k] * m[c * b + k];
            }
        }
        // zero the strict upper triangle for cleanliness
        for c in (k + 1)..b {
            m[k * b + c] = 0.0;
        }
    }
}

/// Solve X · Lᵀ = B for X (triangular solve against a factored diagonal
/// block), in place in `x`.
fn trsm(x: &mut [f64], l: &[f64], b: usize) {
    for r in 0..b {
        for c in 0..b {
            let mut s = x[r * b + c];
            for t in 0..c {
                s -= x[r * b + t] * l[c * b + t];
            }
            x[r * b + c] = s / l[c * b + c];
        }
    }
}

/// C -= A · Bᵀ.
fn gemm_sub(cm: &mut [f64], am: &[f64], bm: &[f64], b: usize) {
    for r in 0..b {
        for c in 0..b {
            let mut s = 0.0;
            for t in 0..b {
                s += am[r * b + t] * bm[c * b + t];
            }
            cm[r * b + c] -= s;
        }
    }
}

fn in_band(p: &Params, i: usize, j: usize) -> bool {
    i >= j && i - j <= p.band && i < p.nblocks
}

/// Run BSC; returns the verification value: the max absolute deviation of
/// the computed factor from the closed-form `L₀` (should be ≈ 0) folded
/// into a checksum of Σ|L| (so harnesses can also compare run-to-run).
pub fn run<D: Dsm>(d: &D, p: &Params, v: Variant) -> f64 {
    let b = p.block;
    let blocks_space = d.new_space(ProtoSpec::Sc);

    // Allocate owned blocks and build the global id table.
    let mut my_blocks = Vec::new();
    for j in 0..p.nblocks {
        for i in j..p.nblocks {
            if in_band(p, i, j) && owner(i, j, d.nprocs()) == d.rank() {
                my_blocks.push((i, j));
            }
        }
    }
    let my_ids: Vec<u64> =
        my_blocks.iter().map(|_| d.gmalloc::<f64>(blocks_space, b * b)).collect();
    let all = exchange_ids(d, &my_ids);
    // Rebuild everyone's (i, j) lists deterministically to index their ids.
    let mut id_of = std::collections::HashMap::new();
    for rank in 0..d.nprocs() {
        let mut k = 0;
        for j in 0..p.nblocks {
            for i in j..p.nblocks {
                if in_band(p, i, j) && owner(i, j, d.nprocs()) == rank {
                    id_of.insert((i, j), all.rank(rank)[k]);
                    k += 1;
                }
            }
        }
    }

    // Fill owned blocks with A's entries.
    for (&(i, j), &rid) in my_blocks.iter().zip(&my_ids) {
        d.map(rid);
        let a = a_block(p, i, j);
        d.start_write(rid);
        d.with_mut::<f64, _>(rid, |m| m.copy_from_slice(&a));
        d.end_write(rid);
        d.unmap(rid);
        d.charge_flops((b * b * b) as u64 / 2);
    }
    d.barrier(blocks_space);

    if v == Variant::Custom {
        d.change_protocol(blocks_space, ProtoSpec::HomeOwned);
    } else if v == Variant::Adaptive {
        // Blocks are written only by their owner, so the home-owned
        // discipline is a legal candidate; the engine picks it when the
        // read fan-out makes SC's invalidation upkeep the dearer option.
        let spec = AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::HOME_OWNED);
        d.change_protocol(blocks_space, ProtoSpec::Adaptive(spec));
    }

    // Right-looking fan-out factorization. Blocks are mapped around each
    // access (the CRL idiom; block transfers are bulk either way).
    let read_block = |d: &D, rid: u64| -> Vec<f64> {
        d.map(rid);
        d.start_read(rid);
        let m = d.with::<f64, _>(rid, |x| x.to_vec());
        d.end_read(rid);
        d.unmap(rid);
        m
    };

    for k in 0..p.nblocks {
        // 1. Factor the diagonal block.
        let dk = id_of[&(k, k)];
        if owner(k, k, d.nprocs()) == d.rank() {
            d.map(dk);
            d.start_write(dk);
            d.with_mut::<f64, _>(dk, |m| potrf(m, b));
            d.end_write(dk);
            d.unmap(dk);
            d.charge_flops((b * b * b) as u64 / 3);
        }
        d.barrier(blocks_space);

        // 2. Panel solve: L[i][k] = A[i][k] · L[k][k]⁻ᵀ.
        for i in (k + 1)..p.nblocks {
            if in_band(p, i, k) && owner(i, k, d.nprocs()) == d.rank() {
                let l = read_block(d, dk);
                let rik = id_of[&(i, k)];
                d.map(rik);
                d.start_write(rik);
                d.with_mut::<f64, _>(rik, |m| trsm(m, &l, b));
                d.end_write(rik);
                d.unmap(rik);
                d.charge_flops((b * b * b) as u64 / 2);
            }
        }
        d.barrier(blocks_space);

        // 3. Trailing update: A[i][j] -= L[i][k] · L[j][k]ᵀ.
        for j in (k + 1)..p.nblocks {
            if !in_band(p, j, k) {
                continue;
            }
            for i in j..p.nblocks {
                if !in_band(p, i, k) || !in_band(p, i, j) {
                    continue;
                }
                if owner(i, j, d.nprocs()) != d.rank() {
                    continue;
                }
                let (rik, rjk) = (id_of[&(i, k)], id_of[&(j, k)]);
                let li = read_block(d, rik);
                let lj = read_block(d, rjk);
                let rij = id_of[&(i, j)];
                d.map(rij);
                d.start_write(rij);
                d.with_mut::<f64, _>(rij, |m| gemm_sub(m, &li, &lj, b));
                d.end_write(rij);
                d.unmap(rij);
                d.charge_flops(2 * (b * b * b) as u64);
            }
        }
        d.barrier(blocks_space);
    }

    // Verify owned blocks against the closed form and compute Σ|L|.
    let mut max_dev: f64 = 0.0;
    let mut checksum = 0.0;
    for (&(i, j), &rid) in my_blocks.iter().zip(&my_ids) {
        let want = l0_block(p, i, j);
        d.map(rid);
        d.start_read(rid);
        d.with::<f64, _>(rid, |m| {
            for (got, want) in m.iter().zip(&want) {
                max_dev = max_dev.max((got - want).abs());
                checksum += got.abs();
            }
        });
        d.end_read(rid);
        d.unmap(rid);
    }
    let dev = d.allreduce_f64(max_dev, |a, b| a.max(b));
    let sum = d.allreduce_f64(checksum, |a, b| a + b);
    assert!(dev < 1e-6, "factor deviates from closed form by {dev}");
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{launch_ace, launch_crl};
    use ace_core::CostModel;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-8 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn sequential_blocks_factor_exactly() {
        // potrf of A[0][0] must reproduce L₀[0][0].
        let p = Params::small();
        let mut a = a_block(&p, 0, 0);
        potrf(&mut a, p.block);
        let want = l0_block(&p, 0, 0);
        for (g, w) in a.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "potrf mismatch: {g} vs {w}");
        }
    }

    #[test]
    fn distributed_factorization_verifies() {
        let p = Params::small();
        let sc = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let cu = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Custom));
        let cr = launch_crl(4, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert!(close(sc.verification, cu.verification));
        assert!(close(sc.verification, cr.verification));
    }

    #[test]
    fn custom_protocol_saves_little_on_bsc() {
        // The paper: BSC's custom protocol win is marginal because bulk
        // transfer dominates. Check custom does not *increase* traffic by
        // much and the verification still holds.
        let p = Params::small();
        let sc = launch_ace(3, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let cu = launch_ace(3, CostModel::free(), |d| run(d, &p, Variant::Custom));
        assert!(close(sc.verification, cu.verification));
        assert!(cu.bytes < sc.bytes * 2, "custom should stay in the same traffic class");
    }

    #[test]
    fn single_node_factorizes() {
        let p = Params::small();
        let out = launch_ace(1, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert!(out.verification > 0.0);
    }
}
