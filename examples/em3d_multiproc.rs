//! EM3D across real OS processes: the multi-process quickstart.
//!
//! With no arguments this parent process launches one child OS process
//! per rank (`--rank R --procs N --rendezvous PATH`), each of which runs
//! one rank of the same Ace machine over the Unix-socket transport —
//! rank 0 hosts the rendezvous, the others join it. The parent then runs
//! the identical workload on the in-process transport and checks that
//! both machines produced bit-identical verification values: the
//! transport is a substrate choice, not a semantic one.
//!
//! Run with: `cargo run --release --example em3d_multiproc`

use std::process::{Command, Stdio};

use ace::apps::em3d;
use ace::apps::{AceDsm, Variant};
use ace::core::{run_ace_rank, run_ace_with, CostModel, SocketCfg, Spmd, TransportKind};

const NPROCS: usize = 2;

fn params() -> em3d::Params {
    em3d::Params {
        e_nodes: 64,
        h_nodes: 64,
        degree: 3,
        pct_remote: 25,
        steps: 2,
        seed: 11,
        hoist_maps: false,
    }
}

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Child mode: run exactly one rank of the socket machine, print the
/// verification value's bit pattern, exit.
fn child(rank: usize, nprocs: usize, rendezvous: &str) {
    let p = params();
    let builder = Spmd::builder()
        .nprocs(nprocs)
        .cost(CostModel::cm5())
        .transport(TransportKind::Socket(SocketCfg::unix(rendezvous)));
    let out = run_ace_rank(builder, rank, |rt| {
        let d = AceDsm::new(rt);
        em3d::run(&d, &p, Variant::Custom)
    })
    .unwrap_or_else(|e| panic!("rank {rank}: {e}"));
    println!("rank {} of {}: verification_bits {}", out.rank, out.nprocs, out.result.to_bits());
    println!(
        "rank {}: {} logical messages, {:.1} wall ms",
        out.rank,
        out.stats.logical_msgs,
        out.wall.as_secs_f64() * 1e3
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(rank) = arg_after(&args, "--rank") {
        let rank: usize = rank.parse().expect("--rank takes a number");
        let nprocs: usize =
            arg_after(&args, "--procs").expect("--procs required").parse().expect("number");
        let rdv = arg_after(&args, "--rendezvous").expect("--rendezvous required");
        child(rank, nprocs, &rdv);
        return;
    }

    // Parent mode: one child process per rank, all meeting at a fresh
    // Unix-socket rendezvous path.
    let exe = std::env::current_exe().expect("own executable path");
    let rdv = std::env::temp_dir().join(format!("ace-em3d-rdv-{}.sock", std::process::id()));
    let rdv = rdv.to_str().expect("utf-8 temp path").to_string();
    println!("launching {NPROCS} OS processes, rendezvous at {rdv}");

    let children: Vec<_> = (0..NPROCS)
        .map(|rank| {
            Command::new(&exe)
                .args(["--rank", &rank.to_string()])
                .args(["--procs", &NPROCS.to_string()])
                .args(["--rendezvous", &rdv])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn child rank")
        })
        .collect();

    let mut socket_bits: Option<u64> = None;
    for (rank, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("wait for child rank");
        let text = String::from_utf8_lossy(&out.stdout);
        print!("{text}");
        assert!(out.status.success(), "child rank {rank} failed");
        if let Some(bits) = text
            .lines()
            .find_map(|l| l.split("verification_bits ").nth(1).map(|b| b.trim().to_string()))
        {
            let bits: u64 = bits.parse().expect("verification bits");
            if let Some(prev) = socket_bits {
                assert_eq!(prev, bits, "ranks disagree on the verification value");
            }
            socket_bits = Some(bits);
        }
    }
    let socket_bits = socket_bits.expect("no child printed a verification value");

    // The reference run: same workload, same machine size, in-process.
    let p = params();
    let r = run_ace_with(Spmd::builder().nprocs(NPROCS).cost(CostModel::cm5()), |rt| {
        let d = AceDsm::new(rt);
        em3d::run(&d, &p, Variant::Custom)
    });
    let inproc_bits = r.results[0].to_bits();
    assert_eq!(inproc_bits, socket_bits, "socket machine and in-process machine disagree on EM3D");
    println!(
        "in-process machine agrees: verification {} on both transports",
        f64::from_bits(inproc_bits)
    );
}
