//! Spaces: the indirection between data structures and protocols.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::ids::{RegionId, SpaceId};
use crate::protocol::Protocol;

/// Node-local state for one space.
///
/// The paper (§4.1): "A space is implemented as a structure that holds
/// pointers to the appropriate protocol's routines. [...] The structure
/// also contains a pointer by which protocols may associate data with a
/// space (for example, a static update protocol may wish to associate the
/// sharer list for a particular data structure with its space)."
pub struct SpaceEntry {
    /// The space's machine-wide id.
    pub id: SpaceId,
    /// The protocol currently associated with the space. Swapped by
    /// `change_protocol`; the indirection is what makes protocol changes a
    /// one-line operation for applications (§2.2).
    pub protocol: RefCell<Rc<dyn Protocol>>,
    /// Regions of this space that the protocol wants revisited at the next
    /// barrier (e.g. dirty regions of a static update protocol).
    pub dirty: RefCell<Vec<RegionId>>,
    /// Outstanding asynchronous operations the protocol must drain before
    /// a barrier completes (pipelined writes in flight, unacked updates).
    pub outstanding: Cell<u64>,
    /// Protocol-defined scalar slot (learning-phase flags, epochs, ...).
    pub aux: Cell<u64>,
}

impl SpaceEntry {
    /// Create a space entry bound to `protocol`.
    pub fn new(id: SpaceId, protocol: Rc<dyn Protocol>) -> Self {
        SpaceEntry {
            id,
            protocol: RefCell::new(protocol),
            dirty: RefCell::new(Vec::new()),
            outstanding: Cell::new(0),
            aux: Cell::new(0),
        }
    }

    /// Clone out the current protocol (cheap `Rc` bump). Callers must not
    /// hold the borrow across a protocol call, so this is the only accessor.
    pub fn proto(&self) -> Rc<dyn Protocol> {
        self.protocol.borrow().clone()
    }

    /// Record a region as dirty if not already recorded.
    pub fn mark_dirty(&self, r: RegionId) {
        let mut d = self.dirty.borrow_mut();
        if !d.contains(&r) {
            d.push(r);
        }
    }

    /// Take and clear the dirty list.
    pub fn take_dirty(&self) -> Vec<RegionId> {
        std::mem::take(&mut *self.dirty.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests::NoopProtocol;

    #[test]
    fn dirty_list_dedups_and_drains() {
        let s = SpaceEntry::new(SpaceId(0), Rc::new(NoopProtocol));
        let r1 = RegionId::new(0, 1);
        let r2 = RegionId::new(0, 2);
        s.mark_dirty(r1);
        s.mark_dirty(r2);
        s.mark_dirty(r1);
        assert_eq!(s.take_dirty(), vec![r1, r2]);
        assert!(s.take_dirty().is_empty());
    }

    #[test]
    fn protocol_swap() {
        let s = SpaceEntry::new(SpaceId(0), Rc::new(NoopProtocol));
        assert_eq!(s.proto().name(), "noop");
        *s.protocol.borrow_mut() = Rc::new(NoopProtocol);
        assert_eq!(s.proto().name(), "noop");
    }
}
