//! Figure 7b: single (SC) protocol versus application-specific protocols
//! in Ace.
//!
//! Usage: fig7b [--small|--paper] [--procs N] [--runs K]

use ace_bench::fig7::{fig7b, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Default
    };
    let procs = arg_val(&args, "--procs").unwrap_or(8);
    let runs = arg_val(&args, "--runs").unwrap_or(3);

    println!(
        "Figure 7b: SC vs application-specific protocols in Ace, {procs} procs, avg of {runs} runs"
    );
    println!("{:<12} {:>12} {:>14} {:>10}", "benchmark", "SC (ms)", "custom (ms)", "speedup");
    let rows = fig7b(scale, procs, runs);
    let avg: f64 = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    for r in &rows {
        println!("{:<12} {:>12.2} {:>14.2} {:>10.2}", r.app, r.sc_ms, r.custom_ms, r.speedup);
    }
    println!("\naverage speedup: {avg:.2} (paper: range 1.02-5, average ~2)");
    println!("custom protocols: barnes=dynamic update, bsc=home-owned, em3d=static update,");
    println!("                  tsp=fetch-and-add counter, water=null+pipelined phases");
}

fn arg_val(args: &[String], key: &str) -> Option<usize> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
