//! Figure 7b: single (SC) protocol versus application-specific protocols
//! in Ace.
//!
//! Usage: fig7b [--small|--paper] [--procs N] [--runs K] [--json [PATH]]
//!        [--trace PATH]  (re-runs EM3D/custom traced and writes Chrome JSON)
//!        [--check [APP,...]]  (conformance-checker overhead table instead
//!        of the figure; default apps em3d,water; asserts zero violations)
//!        [--check-max-overhead PCT]  (with --check: fail if any row's
//!        simulated-time overhead exceeds PCT percent)
//!
//! `--json` without a path writes `BENCH_fig7b.json` at the repo root,
//! the canonical location CI and EXPERIMENTS.md point at.

use ace_apps::Variant;
use ace_bench::fig7::{check_overhead, fig7b, write_trace, Scale};
use ace_bench::json::{self, JsonRow};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Default
    };
    let procs = arg_val(&args, "--procs").unwrap_or(8);
    let runs = arg_val(&args, "--runs").unwrap_or(3);

    if args.iter().any(|a| a == "--check") {
        run_check(&args, scale, procs, runs);
        return;
    }

    println!(
        "Figure 7b: SC vs application-specific protocols in Ace, {procs} procs, avg of {runs} runs"
    );
    println!(
        "{:<12} {:>12} {:>14} {:>10} {:>14} {:>9} {:>22}",
        "benchmark",
        "SC (ms)",
        "custom (ms)",
        "speedup",
        "adaptive (ms)",
        "switches",
        "custom wire/logical"
    );
    let rows = fig7b(scale, procs, runs);
    let avg: f64 = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    for r in &rows {
        println!(
            "{:<12} {:>12.2} {:>14.2} {:>10.2} {:>14.2} {:>9} {:>12}/{}",
            r.app,
            r.sc_ms,
            r.custom_ms,
            r.speedup,
            r.adaptive_ms,
            r.adaptive.switches,
            r.custom.wire_msgs,
            r.custom.msgs
        );
    }
    println!("\naverage speedup: {avg:.2} (paper: range 1.02-5, average ~2)");
    println!("custom protocols: barnes=dynamic update, bsc=home-owned, em3d=static update,");
    println!("                  tsp=fetch-and-add counter, water=null+pipelined phases");
    println!("adaptive: the engine picks per-space protocols at flush points at runtime");
    println!("*-nocoal configs rerun with the coalescing transport disabled");

    if let Some(path) = json::out_path(&args, "BENCH_fig7b.json") {
        let mut out = Vec::new();
        for r in &rows {
            out.push(JsonRow::new("fig7b", &r.app, "sc", procs, r.sc));
            out.push(JsonRow::new("fig7b", &r.app, "custom", procs, r.custom));
            out.push(JsonRow::new("fig7b", &r.app, "sc-nocoal", procs, r.sc_nocoal));
            out.push(JsonRow::new("fig7b", &r.app, "custom-nocoal", procs, r.custom_nocoal));
            out.push(JsonRow::new("fig7b", &r.app, "adaptive", procs, r.adaptive));
        }
        json::write(&path, &out).expect("write --json file");
        println!("wrote {} rows to {}", out.len(), path.display());
    }

    if let Some(path) = arg_str(&args, "--trace") {
        write_trace("em3d", scale, Variant::Custom, procs, std::path::Path::new(&path))
            .expect("write --trace file");
    }
}

/// The `--check` mode: run the requested apps with the conformance
/// checker off and on (`CheckMode::Fail`) and print the overhead table.
/// A completed run already proves zero violations — `Fail` panics on the
/// first one — and the recorded count is asserted anyway.
fn run_check(args: &[String], scale: Scale, procs: usize, runs: usize) {
    let apps = ace_bench::parse_apps(args, "--check", &["em3d", "water"]);
    let refs: Vec<&str> = apps.iter().map(|s| s.as_str()).collect();

    println!("Conformance-checker overhead (CheckMode::Fail vs off), {procs} procs, {runs} runs");
    println!(
        "{:<12} {:<8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "benchmark", "variant", "sim off", "sim on", "sim %", "wall off", "wall on", "wall %"
    );
    let rows = check_overhead(&refs, scale, procs, runs);
    for r in &rows {
        println!(
            "{:<12} {:<8} {:>10.2}ms {:>10.2}ms {:>7.1}% {:>10.2}ms {:>10.2}ms {:>7.1}%",
            r.app,
            r.variant.name(),
            r.off.sim_ms(),
            r.on.sim_ms(),
            r.sim_overhead_pct(),
            r.off.wall_ns as f64 / 1e6,
            r.on.wall_ns as f64 / 1e6,
            r.wall_overhead_pct(),
        );
        assert_eq!(r.violations, 0, "{}/{}: checker found violations", r.app, r.variant.name());
        if let Some(max) = arg_val(args, "--check-max-overhead") {
            assert!(
                r.sim_overhead_pct() <= max as f64,
                "{}/{}: checker sim overhead {:.1}% exceeds the {max}% bound",
                r.app,
                r.variant.name(),
                r.sim_overhead_pct()
            );
        }
    }
    println!("\nall runs completed under CheckMode::Fail with zero violations");
    println!("(vector clocks and checker bookkeeping charge nothing to the cost model;");
    println!(" the simulated-time delta is the shutdown-time history gather plus jitter)");
}

fn arg_str(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_val(args: &[String], key: &str) -> Option<usize> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
