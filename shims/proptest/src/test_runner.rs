//! Deterministic RNG and per-test configuration.

use std::fmt;

/// Per-`proptest!` block configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property case; carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64 seeded from (test name, case index): case `i` of a given
/// test always sees identical inputs, so failures reproduce without a
/// persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
