//! Extensibility (§2.4): define a brand-new protocol outside the library
//! and plug it into a space.
//!
//! The paper's design goal: "a clean mechanism for adding new protocols
//! to the system." Here we write a **write-once** protocol from scratch —
//! for single-assignment data (futures/I-structures): a region is written
//! exactly once by its home; readers fetch a copy on first read and keep
//! it forever (no invalidations, no barrier work, no directory). The
//! protocol is ~60 lines and is registered simply by handing the object
//! to `new_space`.
//!
//! Run with: `cargo run --release --example custom_protocol`

use ace::core::{run_ace, AceRt, CostModel, ProtoMsg, Protocol, RegionEntry, RegionId};
use ace::protocols::states::{R_INVALID, R_SHARED, R_WAIT_READ};

/// Wire opcodes for the write-once protocol.
mod op {
    pub const FETCH: u16 = 1;
    pub const DATA: u16 = 2;
}

/// Single-assignment regions: written once at home, then immutable.
struct WriteOnce;

impl Protocol for WriteOnce {
    fn name(&self) -> &'static str {
        "WriteOnce"
    }

    fn optimizable(&self) -> bool {
        true // immutable data tolerates any motion
    }

    fn start_read(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) && e.st.get() == R_INVALID {
            rt.counters_mut(|c| c.read_misses += 1);
            e.st.set(R_WAIT_READ);
            rt.send_proto(e.id.home(), e.id, op::FETCH, 0, None);
            rt.wait("write-once fetch", || e.st.get() == R_SHARED);
        }
    }

    fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn start_write(&self, rt: &AceRt, e: &RegionEntry) {
        assert!(e.is_home_of(rt.rank()), "write-once data is written at home");
        assert_eq!(e.aux.get(), 0, "write-once region written twice: {}", e.id);
        e.aux.set(1);
    }

    fn end_write(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, _src: usize) {
        match msg.op {
            op::FETCH => {
                rt.send_proto(msg.from as usize, e.id, op::DATA, 0, Some(e.clone_data()));
            }
            op::DATA => {
                e.install_data(msg.data.as_deref().expect("data reply"));
                e.st.set(R_SHARED);
            }
            other => panic!("WriteOnce: unknown opcode {other}"),
        }
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) {
            e.st.set(R_INVALID);
        }
    }
}

fn main() {
    let outcome = run_ace(4, CostModel::cm5(), |rt| {
        let space = rt.new_space(std::rc::Rc::new(WriteOnce));

        // Every node publishes one single-assignment value.
        let mine = rt.gmalloc::<f64>(space, 4);
        rt.map(mine);
        rt.start_write(mine);
        rt.with_mut::<f64, _>(mine, |v| {
            for (i, x) in v.iter_mut().enumerate() {
                *x = (rt.rank() * 10 + i) as f64;
            }
        });
        rt.end_write(mine);

        // Exchange ids and read everyone's values — each region fetched
        // at most once per reader, then every later read is free.
        let all: Vec<RegionId> =
            (0..rt.nprocs()).map(|root| RegionId(rt.bcast(root, &[mine.0])[0])).collect();
        rt.machine_barrier();

        let mut sum = 0.0;
        for &r in &all {
            rt.map(r);
            for _ in 0..100 {
                rt.start_read(r);
                sum += rt.with::<f64, _>(r, |v| v[0]);
                rt.end_read(r);
            }
        }
        let misses = rt.counters().read_misses;
        rt.machine_barrier();
        (sum, rt.counters().proto_msgs, misses)
    });

    for (rank, (sum, msgs, misses)) in outcome.results.iter().enumerate() {
        println!(
            "node {rank}: checksum {sum:>7.1}, {msgs:>3} protocol msgs handled, \
             400 reads for only {misses} fetches"
        );
    }
    println!("\na 60-line user-defined protocol, registered by value — §2.4's extensibility");
}
