//! The protocol interface: full access control (§2.1, §3.2).

use crate::msg::ProtoMsg;
use crate::region::RegionEntry;
use crate::rt::AceRt;
use crate::space::SpaceEntry;

/// Bitmask of protocol hooks, used two ways: to declare which hooks a
/// protocol defines as null (so the compiler's direct-dispatch pass can
/// delete calls to them, §4.2), and in tests to describe hook coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Actions(pub u16);

impl Actions {
    pub const MAP: Actions = Actions(1 << 0);
    pub const UNMAP: Actions = Actions(1 << 1);
    pub const START_READ: Actions = Actions(1 << 2);
    pub const END_READ: Actions = Actions(1 << 3);
    pub const START_WRITE: Actions = Actions(1 << 4);
    pub const END_WRITE: Actions = Actions(1 << 5);
    pub const BARRIER: Actions = Actions(1 << 6);
    pub const LOCK: Actions = Actions(1 << 7);
    pub const UNLOCK: Actions = Actions(1 << 8);

    /// The four access-section hooks — the candidates for the per-region
    /// fast mask ([`crate::region::RegionEntry::fast`]).
    pub const ACCESS: Actions = Actions(
        Actions::START_READ.0 | Actions::END_READ.0 | Actions::START_WRITE.0 | Actions::END_WRITE.0,
    );

    /// The empty set.
    pub fn empty() -> Self {
        Actions(0)
    }

    /// Set-union of two masks.
    pub fn union(self, other: Actions) -> Actions {
        Actions(self.0 | other.0)
    }

    /// Whether all bits of `other` are present.
    pub fn contains(self, other: Actions) -> bool {
        self.0 & other.0 == other.0
    }
}

/// The cross-node concurrent-section combinations a protocol's coherence
/// discipline legitimately grants — the conformance checker's ground
/// truth (`ace-check`). Two read sections on different nodes are always
/// legal; the interesting questions are whether two *write* sections may
/// overlap, and whether a write section may overlap a *read* section.
/// A sequentially-consistent invalidation protocol grants neither; an
/// update protocol that pushes writes to standing copies grants both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantSet {
    /// Two nodes may hold write sections on one region concurrently.
    pub write_write: bool,
    /// A write section on one node may overlap a read section on another.
    pub read_write: bool,
}

impl GrantSet {
    /// The exclusive discipline (single-writer, no readers during a
    /// write): what the default sequentially-consistent protocol grants.
    pub fn exclusive() -> Self {
        GrantSet { write_write: false, read_write: false }
    }

    /// Fully concurrent: any combination of sections may overlap.
    pub fn concurrent() -> Self {
        GrantSet { write_write: true, read_write: true }
    }
}

/// A coherence protocol with full access control.
///
/// One protocol object is instantiated per space per node (protocols are
/// node-local; their distributed state lives in the protocol-owned fields
/// of [`RegionEntry`] and [`SpaceEntry`] plus their wire messages). Hooks
/// run on the node's own thread; the `handle` hook runs when a protocol
/// message arrives at a poll point, which is the Active Messages execution
/// model the paper targets.
///
/// Invariant required of implementations: `handle` must not block (no
/// nested waits) — multi-hop exchanges are written as state machines using
/// the entry's `st`/`pending`/`blocked` fields. The `start_*`/`lock`/
/// `barrier` hooks may block via [`AceRt::wait_region`] and friends.
pub trait Protocol: 'static {
    /// Protocol name, as registered with the system (Figure 1).
    fn name(&self) -> &'static str;

    /// Human-readable name for a protocol-private message opcode, used to
    /// label `handle` hook spans in traces. Protocols that define a
    /// `mod op` opcode table should override this; the default labels
    /// every opcode `"op"`.
    fn op_name(&self, _op: u16) -> &'static str {
        "op"
    }

    /// Whether the compiler may move or merge this protocol's calls
    /// (the `Optimizable` flag of Figure 1). Protocols whose accesses must
    /// appear atomic — like the default sequentially-consistent protocol —
    /// return false.
    fn optimizable(&self) -> bool {
        false
    }

    /// Which hooks are null for this protocol (candidates for removal by
    /// the direct-dispatch optimization).
    fn null_actions(&self) -> Actions {
        Actions::empty()
    }

    /// Which concurrent cross-node section combinations this protocol can
    /// legitimately grant. The conformance checker flags overlapping
    /// sections outside this set as [`crate::AceError::Conformance`]
    /// violations. The default is fully exclusive — correct for any
    /// single-writer protocol; update-style protocols that deliberately
    /// let sections overlap must widen it.
    fn grants(&self) -> GrantSet {
        GrantSet::exclusive()
    }

    /// A region was just allocated at its home node.
    fn on_create(&self, _rt: &AceRt, _e: &RegionEntry) {}

    /// A region was mapped on this node (entry exists; data buffer
    /// allocated but possibly invalid).
    fn on_map(&self, _rt: &AceRt, _e: &RegionEntry) {}

    /// The region was unmapped on this node.
    fn on_unmap(&self, _rt: &AceRt, _e: &RegionEntry) {}

    /// Before-read hook: must return with a readable local copy.
    fn start_read(&self, rt: &AceRt, e: &RegionEntry);

    /// After-read hook.
    fn end_read(&self, rt: &AceRt, e: &RegionEntry);

    /// Before-write hook: must return with a writable local copy.
    fn start_write(&self, rt: &AceRt, e: &RegionEntry);

    /// After-write hook.
    fn end_write(&self, rt: &AceRt, e: &RegionEntry);

    /// Barrier with this space's semantics. The default is the plain
    /// machine barrier.
    fn barrier(&self, rt: &AceRt, s: &SpaceEntry) {
        rt.space_barrier(s);
    }

    /// Region lock. The default is the runtime's home-queued FIFO lock.
    fn lock(&self, rt: &AceRt, e: &RegionEntry) {
        rt.default_lock(e);
    }

    /// Region unlock, pairing `lock`.
    fn unlock(&self, rt: &AceRt, e: &RegionEntry) {
        rt.default_unlock(e);
    }

    /// Handle one of this protocol's wire messages targeted at region `e`.
    /// `src` is the sending node. Must not block.
    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, src: usize);

    /// Bring the region to the *base state* (valid master copy at home, no
    /// remote copies, empty directory) so that another protocol can adopt
    /// it. Called on every node for its local entries during
    /// `change_protocol`; must complete synchronously (waiting for acks is
    /// allowed). The paper: "changing from the default protocol to any
    /// other protocol results in all cached regions being flushed back to
    /// their home processors" (§3.1).
    fn flush(&self, rt: &AceRt, e: &RegionEntry);

    /// Adopt a region previously brought to base state by another protocol
    /// (runs after the flush barrier during `change_protocol`).
    fn adopt(&self, _rt: &AceRt, _e: &RegionEntry) {}

    /// New space bound to this protocol (runs in `new_space` and after the
    /// swap in `change_protocol`).
    fn init_space(&self, _rt: &AceRt, _s: &SpaceEntry) {}
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A protocol stub for unit tests of the runtime plumbing: every hook
    /// is a no-op and every access hits locally.
    pub struct NoopProtocol;

    impl Protocol for NoopProtocol {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn optimizable(&self) -> bool {
            true
        }
        fn start_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
        fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
        fn start_write(&self, _rt: &AceRt, _e: &RegionEntry) {}
        fn end_write(&self, _rt: &AceRt, _e: &RegionEntry) {}
        fn handle(&self, _rt: &AceRt, _e: &RegionEntry, _msg: ProtoMsg, _src: usize) {}
        fn flush(&self, _rt: &AceRt, _e: &RegionEntry) {}
    }

    #[test]
    fn actions_mask_ops() {
        let m = Actions::MAP.union(Actions::END_READ);
        assert!(m.contains(Actions::MAP));
        assert!(m.contains(Actions::END_READ));
        assert!(!m.contains(Actions::START_WRITE));
        assert!(m.contains(Actions::empty()));
    }

    #[test]
    fn access_covers_exactly_the_section_hooks() {
        let m = Actions::ACCESS;
        assert!(m.contains(Actions::START_READ));
        assert!(m.contains(Actions::END_READ));
        assert!(m.contains(Actions::START_WRITE));
        assert!(m.contains(Actions::END_WRITE));
        assert!(!m.contains(Actions::MAP));
        assert!(!m.contains(Actions::LOCK));
    }
}
