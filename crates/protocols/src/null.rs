//! The null protocol: no coherence at all.
//!
//! Used for program phases in which every node touches only data it owns —
//! the paper's Water runs its intra-molecular phase under a null protocol
//! and gains 2× over a sequentially-consistent execution (§2.2). All
//! handlers are null, so the compiler's direct-dispatch pass deletes every
//! protocol call on accesses that provably use this protocol.

use ace_core::{AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry};

/// A protocol where every action is a no-op and data is purely local.
#[derive(Default)]
pub struct NullProtocol;

impl NullProtocol {
    /// Constructor for registry use.
    pub fn new() -> Self {
        NullProtocol
    }
}

impl Protocol for NullProtocol {
    fn name(&self) -> &'static str {
        "Null"
    }

    fn optimizable(&self) -> bool {
        true
    }

    fn null_actions(&self) -> Actions {
        Actions::MAP
            .union(Actions::UNMAP)
            .union(Actions::START_READ)
            .union(Actions::END_READ)
            .union(Actions::START_WRITE)
            .union(Actions::END_WRITE)
    }

    // No coherence at all: nothing is forbidden, so nothing conflicts.
    fn grants(&self) -> GrantSet {
        GrantSet::concurrent()
    }

    // Every access hook is an unconditional no-op, so every access is
    // fast in every state.
    fn on_create(&self, _rt: &AceRt, e: &RegionEntry) {
        e.fast.set(Actions::ACCESS);
    }

    fn on_map(&self, _rt: &AceRt, e: &RegionEntry) {
        e.fast.set(Actions::ACCESS);
    }

    fn adopt(&self, _rt: &AceRt, e: &RegionEntry) {
        e.fast.set(Actions::ACCESS);
    }

    fn start_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn start_write(&self, _rt: &AceRt, _e: &RegionEntry) {}
    fn end_write(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn handle(&self, _rt: &AceRt, _e: &RegionEntry, msg: ProtoMsg, src: usize) {
        panic!("null protocol received message op {} from {src}", msg.op);
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        // Drop any remote cache silently; the master at home is
        // authoritative by this protocol's usage contract (each node writes
        // only home data during a null phase).
        if !e.is_home_of(rt.rank()) {
            e.st.set(crate::states::R_INVALID);
        }
        e.sharers.clear();
        e.owner.set(-1);
        e.pending.set(0);
        e.aux.set(0);
        *e.twin.borrow_mut() = None;
        // Hand the region to the next protocol slow: it declares its own
        // fast states in `adopt`.
        e.fast.set(Actions::empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, CostModel};
    use std::rc::Rc;

    #[test]
    fn local_phase_is_message_free() {
        let r = run_ace(4, CostModel::free(), |rt| {
            let s = rt.new_space(Rc::new(NullProtocol));
            let rid = rt.gmalloc::<f64>(s, 64);
            rt.map(rid);
            for i in 0..100 {
                rt.start_write(rid);
                rt.with_mut::<f64, _>(rid, |d| d[i % 64] += 1.0);
                rt.end_write(rid);
            }
            rt.start_read(rid);
            let sum = rt.with::<f64, _>(rid, |d| d.iter().sum::<f64>());
            rt.end_read(rid);
            (sum, rt.counters().proto_msgs)
        });
        for (sum, msgs) in r.results {
            assert_eq!(sum, 100.0);
            assert_eq!(msgs, 0);
        }
    }

    #[test]
    fn declares_all_access_hooks_null() {
        let p = NullProtocol;
        let n = p.null_actions();
        assert!(n.contains(Actions::START_READ));
        assert!(n.contains(Actions::END_WRITE));
        assert!(n.contains(Actions::MAP));
        assert!(!n.contains(Actions::BARRIER));
        assert!(p.optimizable());
    }
}
