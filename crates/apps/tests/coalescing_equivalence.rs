//! Coalescing must be a pure transport optimization. Batching logical
//! sends into shared wire envelopes may change *when* messages depart and
//! how their cost is charged, but never *what* is delivered: the same
//! logical messages, in the same per-pair order, carrying the same
//! payloads. So running the same deterministic workload with coalescing
//! forced off and on has to agree on every logical observable — the
//! verification value, the per-node digest of every home region, the
//! logical message and byte counts (in total and per protocol tag), and
//! the annotation counters. Only the wire-envelope grouping (and with it
//! simulated time) may differ.
//!
//! As in `fast_path_equivalence`, EM3D and Water are bit-deterministic
//! end to end and get the strict comparison, including per-tag logical
//! counts read from a traced run. Water earns it through its fixed
//! (node, molecule-index) force reduction order (see `water::run`).
//!
//! The file ends with the liveness test the tentpole demands: a
//! `drain_batch(1)` machine with a coalescing threshold far larger than
//! the run's entire message count, so *every* departure relies on a
//! blocking point flushing the buffers. If any wait could block with
//! sends still buffered, this run would hang until the watchdog panics.

use std::collections::BTreeMap;

use ace_apps::{em3d, water, AceDsm, Variant};
use ace_core::{run_ace_with, CoalescePolicy, CostModel, OpCounters, Spmd, TraceConfig};
use proptest::prelude::*;

/// Logical observables plus the wire grouping for one traced run.
struct Obs {
    verification: f64,
    digests: Vec<u64>,
    counters: OpCounters,
    msgs: u64,
    wire_msgs: u64,
    bytes: u64,
    /// Protocol tag -> (logical messages, payload bytes).
    per_tag: BTreeMap<&'static str, (u64, u64)>,
}

fn run_app<F>(coalesce: bool, nprocs: usize, f: F) -> Obs
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    let r = run_ace_with(
        Spmd::builder().nprocs(nprocs).cost(CostModel::cm5()).trace(TraceConfig::on()),
        |rt| {
            rt.set_coalescing(coalesce);
            let d = AceDsm::new(rt);
            let v = f(&d);
            // Rendezvous so every node's digest sees the settled final state.
            rt.machine_barrier();
            (v, rt.data_digest(), rt.counters())
        },
    );
    let mut counters = OpCounters::default();
    for (_, _, c) in &r.results {
        counters.merge(c);
    }
    let trace = r.trace.expect("trace requested");
    let per_tag = trace.summary().tags.iter().map(|t| (t.tag, (t.logical, t.bytes))).collect();
    Obs {
        verification: r.results[0].0,
        digests: r.results.iter().map(|(_, d, _)| *d).collect(),
        counters,
        msgs: r.stats.total_msgs(),
        wire_msgs: r.stats.total_wire_msgs(),
        bytes: r.stats.total_bytes(),
        per_tag,
    }
}

/// The scheduling-independent invariants, valid for every workload.
fn assert_transport_accounting(off: &Obs, on: &Obs, ctx: &str) {
    assert_eq!(
        off.wire_msgs, off.msgs,
        "{ctx}: with coalescing off every logical send is its own envelope"
    );
    assert!(
        on.wire_msgs <= on.msgs,
        "{ctx}: coalescing can only merge envelopes (wire={} logical={})",
        on.wire_msgs,
        on.msgs
    );
    // Annotation counts are fixed by app control flow; the transport must
    // not change how often the runtime is asked to do anything.
    for (name, get) in [
        ("start_reads", (|c: &OpCounters| c.start_reads) as fn(&OpCounters) -> u64),
        ("start_writes", |c| c.start_writes),
        ("ends", |c| c.ends),
        ("unmaps", |c| c.unmaps),
        ("barriers", |c| c.barriers),
        ("locks", |c| c.locks),
    ] {
        assert_eq!(get(&off.counters), get(&on.counters), "{ctx}: {name}");
    }
}

/// Full logical bit-equivalence, for workloads deterministic end to end.
fn assert_equivalent(off: &Obs, on: &Obs, ctx: &str) {
    assert_eq!(off.verification.to_bits(), on.verification.to_bits(), "{ctx}: verification value");
    assert_eq!(off.digests, on.digests, "{ctx}: per-node region digests");
    assert_eq!(off.msgs, on.msgs, "{ctx}: total logical message count");
    assert_eq!(off.bytes, on.bytes, "{ctx}: total payload bytes");
    assert_eq!(off.per_tag, on.per_tag, "{ctx}: per-tag logical counts and bytes");

    // All counters must agree exactly except the wire grouping, which is
    // the one thing coalescing exists to change (and which carries
    // wall-clock jitter besides — see `fast_path_equivalence`).
    let strip = |c: &OpCounters| OpCounters { wire_msgs: 0, ..c.clone() };
    assert_eq!(strip(&off.counters), strip(&on.counters), "{ctx}: counters");
    assert_transport_accounting(off, on, ctx);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn em3d_coalescing_preserves_behavior(
        seed in 0u64..1000,
        steps in 1usize..4,
        pct_remote in 5u32..50,
        custom in any::<bool>(),
    ) {
        let p = em3d::Params {
            e_nodes: 40,
            h_nodes: 40,
            degree: 3,
            pct_remote,
            steps,
            seed,
            hoist_maps: false,
        };
        let v = if custom { Variant::Custom } else { Variant::Sc };
        let off = run_app(false, 4, |d| em3d::run(d, &p, v));
        let on = run_app(true, 4, |d| em3d::run(d, &p, v));
        assert_equivalent(&off, &on, "em3d");
    }

    #[test]
    fn water_coalescing_preserves_behavior(
        seed in 0u64..1000,
        molecules in 16usize..48,
        custom in any::<bool>(),
    ) {
        let p = water::Params { molecules, steps: 2, seed };
        let v = if custom { Variant::Custom } else { Variant::Sc };
        let off = run_app(false, 4, |d| water::run(d, &p, v));
        let on = run_app(true, 4, |d| water::run(d, &p, v));
        // Water's fixed (node, molecule) force reduction order makes it
        // bit-deterministic, so it earns the same strict comparison as
        // EM3D — digests, per-tag counts, and all.
        assert_equivalent(&off, &on, "water");
    }
}

#[test]
fn em3d_coalescing_reduces_wire_traffic_at_default_scale() {
    // One deterministic, larger configuration outside proptest. The
    // update-protocol variant is the fan-out-heavy one: each end_write
    // pushes a UPD per cross-region sharer, and consecutive pushes to the
    // same sharer share envelopes.
    let p = em3d::Params {
        e_nodes: 120,
        h_nodes: 120,
        degree: 4,
        pct_remote: 25,
        steps: 6,
        seed: 42,
        hoist_maps: false,
    };
    let off = run_app(false, 4, |d| em3d::run(d, &p, Variant::Custom));
    let on = run_app(true, 4, |d| em3d::run(d, &p, Variant::Custom));
    assert_equivalent(&off, &on, "em3d custom default scale");
    assert!(
        on.wire_msgs < on.msgs,
        "EM3D update pushes should coalesce: {} wire vs {} logical",
        on.wire_msgs,
        on.msgs
    );
}

#[test]
fn coalescing_cannot_deadlock_even_with_an_unreachable_threshold() {
    // drain_batch(1) forces the scheduler to block between every handled
    // message, and Threshold(1 << 30) means no send ever flushes on its
    // own — every departure in the whole run happens because a blocking
    // point flushed the buffers. A missing flush anywhere deadlocks the
    // machine and trips the watchdog.
    let p = em3d::Params {
        e_nodes: 30,
        h_nodes: 30,
        degree: 3,
        pct_remote: 30,
        steps: 2,
        seed: 7,
        hoist_maps: false,
    };
    for policy in [CoalescePolicy::Threshold(1 << 30), CoalescePolicy::FlushOnWait] {
        for variant in [Variant::Sc, Variant::Custom] {
            let r = run_ace_with(
                Spmd::builder().nprocs(4).cost(CostModel::cm5()).drain_batch(1),
                |rt| {
                    rt.node().set_coalesce(policy);
                    let d = AceDsm::new(rt);
                    em3d::run(&d, &p, variant)
                },
            );
            assert!(r.results[0].is_finite(), "{policy:?}/{variant:?} produced a result");
        }
    }
}
