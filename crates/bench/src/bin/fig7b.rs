//! Figure 7b: single (SC) protocol versus application-specific protocols
//! in Ace.
//!
//! Usage: fig7b [--small|--paper] [--procs N] [--runs K] [--json [PATH]]
//!        [--trace PATH]  (re-runs EM3D/custom traced and writes Chrome JSON)
//!
//! `--json` without a path writes `BENCH_fig7b.json` at the repo root,
//! the canonical location CI and EXPERIMENTS.md point at.

use ace_apps::Variant;
use ace_bench::fig7::{fig7b, write_trace, Scale};
use ace_bench::json::{self, JsonRow};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Default
    };
    let procs = arg_val(&args, "--procs").unwrap_or(8);
    let runs = arg_val(&args, "--runs").unwrap_or(3);

    println!(
        "Figure 7b: SC vs application-specific protocols in Ace, {procs} procs, avg of {runs} runs"
    );
    println!(
        "{:<12} {:>12} {:>14} {:>10} {:>22}",
        "benchmark", "SC (ms)", "custom (ms)", "speedup", "custom wire/logical"
    );
    let rows = fig7b(scale, procs, runs);
    let avg: f64 = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    for r in &rows {
        println!(
            "{:<12} {:>12.2} {:>14.2} {:>10.2} {:>12}/{}",
            r.app, r.sc_ms, r.custom_ms, r.speedup, r.custom.wire_msgs, r.custom.msgs
        );
    }
    println!("\naverage speedup: {avg:.2} (paper: range 1.02-5, average ~2)");
    println!("custom protocols: barnes=dynamic update, bsc=home-owned, em3d=static update,");
    println!("                  tsp=fetch-and-add counter, water=null+pipelined phases");
    println!("*-nocoal configs rerun with the coalescing transport disabled");

    if let Some(path) = json::out_path(&args, "BENCH_fig7b.json") {
        let mut out = Vec::new();
        for r in &rows {
            out.push(JsonRow::new("fig7b", &r.app, "sc", r.sc));
            out.push(JsonRow::new("fig7b", &r.app, "custom", r.custom));
            out.push(JsonRow::new("fig7b", &r.app, "sc-nocoal", r.sc_nocoal));
            out.push(JsonRow::new("fig7b", &r.app, "custom-nocoal", r.custom_nocoal));
        }
        json::write(&path, &out).expect("write --json file");
        println!("wrote {} rows to {}", out.len(), path.display());
    }

    if let Some(path) = arg_str(&args, "--trace") {
        write_trace("em3d", scale, Variant::Custom, procs, std::path::Path::new(&path))
            .expect("write --trace file");
    }
}

fn arg_str(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_val(args: &[String], key: &str) -> Option<usize> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
