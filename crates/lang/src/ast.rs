//! Abstract syntax for Ace-C.

/// A type expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Double,
    /// No value.
    Void,
    /// Opaque space handle (the paper's predefined `Space` type).
    Space,
    /// `shared T*`: a handle to a region of `T` elements. Table 1's
    /// declarations map onto this (arrays of shared data are regions
    /// indexed through the pointer).
    SharedPtr(Box<Ty>),
    /// A named struct (flat: all fields are one word).
    Struct(String),
}

impl Ty {
    /// Whether values of this type are region handles.
    pub fn is_shared_ptr(&self) -> bool {
        matches!(self, Ty::SharedPtr(_))
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An expression, annotated with its line for diagnostics.
#[derive(Debug, Clone)]
pub struct Expr {
    /// The expression node.
    pub kind: ExprKind,
    /// Source line.
    pub line: u32,
}

/// Expression nodes.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (protocol names only).
    Str(String),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// `base[index]` — local array access or shared region access,
    /// resolved during type checking.
    Index(Box<Expr>, Box<Expr>),
    /// `ptr->field` on a `shared struct*`.
    Member(Box<Expr>, String),
    /// `*ptr` (shorthand for `ptr[0]`).
    Deref(Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
    /// `(ty) expr` — explicit cast (int↔double, int↔shared pointer).
    Cast(Ty, Box<Expr>),
}

/// An l-value (assignment target).
#[derive(Debug, Clone)]
pub enum LValue {
    /// Local scalar variable.
    Var(String),
    /// `base[index]` (local array or shared region).
    Index(Box<Expr>, Box<Expr>),
    /// `ptr->field`.
    Member(Box<Expr>, String),
    /// `*ptr`.
    Deref(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `ty name = init;` or `ty name[len];`
    Decl { ty: Ty, name: String, array_len: Option<usize>, init: Option<Expr>, line: u32 },
    /// `lhs = rhs;`
    Assign { lhs: LValue, rhs: Expr, line: u32 },
    /// An expression evaluated for effect (calls).
    Expr(Expr),
    /// `if (c) { .. } else { .. }`
    If { cond: Expr, then_blk: Vec<Stmt>, else_blk: Vec<Stmt> },
    /// `while (c) { .. }`
    While { cond: Expr, body: Vec<Stmt> },
    /// `for (init; cond; step) { .. }`
    For { init: Box<Stmt>, cond: Expr, step: Box<Stmt>, body: Vec<Stmt> },
    /// `return e;`
    Return(Option<Expr>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct Func {
    /// Function name (`main` is the SPMD entry point).
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Parameters.
    pub params: Vec<(Ty, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Definition line.
    pub line: u32,
}

/// A struct definition (flat word-sized fields).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Field (type, name) pairs; each field occupies one word.
    pub fields: Vec<(Ty, String)>,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default)]
pub struct Unit {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Function definitions.
    pub funcs: Vec<Func>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_ptr_detection() {
        assert!(Ty::SharedPtr(Box::new(Ty::Double)).is_shared_ptr());
        assert!(!Ty::Int.is_shared_ptr());
        assert!(!Ty::Space.is_shared_ptr());
    }
}
