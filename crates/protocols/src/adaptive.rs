//! The adaptive meta-protocol: pick the protocol from observed sharing.
//!
//! The paper's position is that the *programmer* names the right protocol
//! per data structure (§2.2); this engine closes the loop for programs
//! whose sharing pattern is unknown until runtime, or drifts across
//! phases. [`AdaptiveEngine`] wraps one of the eight static protocols as
//! an interchangeable *inner* protocol, samples per-space sharing signals
//! on the slow path (remote misses, upgrades, write/read mix, home
//! fan-out), aggregates them machine-wide over the barrier the space
//! executes anyway, and switches the space between candidates at those
//! barriers — the flush points where the PR-3 fast-mask handover is
//! already defined.
//!
//! # Coherent switching with zero extra messages
//!
//! Every node stages its interval profile with
//! [`ace_core::AceRt::stage_bar_profile`]; the words ride the `BarArrive`
//! the barrier sends anyway, node 0 sums them element-wise, and the
//! aggregate rides every `BarRelease`. After the barrier all nodes hold
//! the *identical* machine-wide sum and run the identical deterministic
//! [`decide`] on it — so they reach the same verdict by construction, and
//! the switch itself is a collective that needs no arbitration round.
//! Two profile words are coherence proofs, not signals: the engine's
//! switch epoch and current-candidate bit must aggregate to exactly
//! `nprocs ×` the local value (debug-asserted).
//!
//! The switch sequence mirrors `change_protocol` §3.1 semantics: old
//! protocol flushes every region to base state → drain outstanding →
//! machine barrier → swap inner, bump the wire-visible switch epoch
//! ([`ace_core::AceRt::note_switch`]) → `init_space` + `adopt` (regions
//! re-declare their fast masks) → machine barrier. Because nothing blocks
//! between the first barrier's return and the swap, no node can observe a
//! message from more than one switch epoch ahead — the invariant the
//! substrate debug-asserts on every delivery.
//!
//! # What it costs
//!
//! Nothing on the fast path: fast-mask hits bypass protocol dispatch
//! entirely, so the engine's sampling only runs on accesses that were
//! already paying for a hook. Sampling itself is a few `Cell` increments,
//! and the profile exchange is metrologically invisible (the barrier
//! messages charge their fixed size with or without it).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use ace_core::{
    AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry, SpaceEntry, REMOTE_INVALID,
    REMOTE_SHARED,
};

use crate::registry::{make, ProtoSpec};

/// Candidate-set configuration for one adaptive space: which protocols
/// the engine may select, where it starts, and how eagerly it moves.
///
/// Candidates are a bitmask of [`AdaptiveSpec::SC`] and friends. A
/// single-bit set *pins* the engine: it delegates every hook to that
/// protocol and never profiles or switches — the harness for proving the
/// engine itself is free (pinned adaptive must be indistinguishable from
/// the static protocol in data and logical traffic).
///
/// [`AdaptiveSpec::NULL`] and [`AdaptiveSpec::FETCH_ADD`] are accepted
/// only pinned. Null is the trap candidate: under it every access is a
/// fast-path hit and no data moves, so the engine would see zero signals
/// while coherence silently rots. FetchAdd redefines `lock` itself (a
/// fetch-and-add, not a mutex), so crossing to or from it changes program
/// meaning, not just cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AdaptiveSpec {
    /// Bitmask of candidate protocols.
    pub candidates: u8,
    /// The single candidate bit the space starts on.
    pub initial: u8,
    /// Profiled barriers that must elapse after a switch (and before the
    /// first) before the next switch may commit.
    pub min_dwell: u8,
    /// Storm mode: ignore the cost model and rotate round-robin through
    /// the candidate set every `min_dwell` barriers. A stress harness for
    /// the handover machinery, not a policy.
    pub storm: bool,
}

impl AdaptiveSpec {
    /// Sequentially-consistent invalidation ([`crate::SeqInvalidate`]).
    pub const SC: u8 = 1 << 0;
    /// Dynamic update ([`crate::DynamicUpdate`]).
    pub const DYN_UPDATE: u8 = 1 << 1;
    /// Static update ([`crate::StaticUpdate`]).
    pub const STATIC_UPDATE: u8 = 1 << 2;
    /// Migratory single-copy ([`crate::Migratory`]).
    pub const MIGRATORY: u8 = 1 << 3;
    /// Null protocol ([`crate::NullProtocol`]) — pinned only.
    pub const NULL: u8 = 1 << 4;
    /// Pipelined delta writes ([`crate::PipelinedWrite`]).
    pub const PIPELINED: u8 = 1 << 5;
    /// Home-owned bulk regions ([`crate::HomeOwned`]).
    pub const HOME_OWNED: u8 = 1 << 6;
    /// Fetch-and-add counter ([`crate::FetchAddCounter`]) — pinned only.
    pub const FETCH_ADD: u8 = 1 << 7;

    /// The free-running default: the candidates that share the section
    /// programming model and move data (everything except the pinned-only
    /// Null and FetchAdd, and except HomeOwned, whose home-only-writes
    /// assertion a generic program cannot be assumed to honour).
    pub fn default_set() -> Self {
        AdaptiveSpec::new(
            Self::SC | Self::DYN_UPDATE | Self::STATIC_UPDATE | Self::MIGRATORY | Self::PIPELINED,
        )
    }

    /// An engine free to pick among `candidates`, starting from SC when
    /// present (else the lowest bit), with a dwell of 1: the engine may
    /// act on the very first profiled interval. The 25% hysteresis bar in
    /// `decide` is what damps oscillation; a longer dwell only delays the
    /// first (usually decisive) switch, and on barrier-dense apps those
    /// extra intervals under the wrong protocol are the dominant cost of
    /// adapting at all.
    pub fn new(candidates: u8) -> Self {
        assert!(candidates != 0, "adaptive spec needs at least one candidate");
        let initial =
            if candidates & Self::SC != 0 { Self::SC } else { 1 << candidates.trailing_zeros() };
        AdaptiveSpec { candidates, initial, min_dwell: 1, storm: false }
    }

    /// An engine pinned to a single protocol: pure delegation, no
    /// profiling, no switches.
    pub fn pinned(bit: u8) -> Self {
        assert_eq!(bit.count_ones(), 1, "pin takes exactly one candidate bit");
        AdaptiveSpec { candidates: bit, initial: bit, min_dwell: 0, storm: false }
    }

    /// Override the starting candidate.
    pub fn starting_at(mut self, bit: u8) -> Self {
        assert!(self.candidates & bit != 0 && bit.count_ones() == 1);
        self.initial = bit;
        self
    }

    /// Override the dwell.
    pub fn with_dwell(mut self, dwell: u8) -> Self {
        self.min_dwell = dwell;
        self
    }

    /// Turn on storm mode (see [`AdaptiveSpec::storm`]).
    pub fn storming(mut self) -> Self {
        self.storm = true;
        self
    }

    /// Whether the engine may actually switch (two or more candidates).
    pub fn is_adaptive(self) -> bool {
        self.candidates.count_ones() >= 2
    }

    /// The static [`ProtoSpec`] a candidate bit names.
    pub fn spec_for(bit: u8) -> ProtoSpec {
        match bit {
            Self::SC => ProtoSpec::Sc,
            Self::DYN_UPDATE => ProtoSpec::DynUpdate,
            Self::STATIC_UPDATE => ProtoSpec::StaticUpdate,
            Self::MIGRATORY => ProtoSpec::Migratory,
            Self::NULL => ProtoSpec::Null,
            Self::PIPELINED => ProtoSpec::Pipelined,
            Self::HOME_OWNED => ProtoSpec::HomeOwned,
            Self::FETCH_ADD => ProtoSpec::FetchAdd(1),
            other => panic!("not a single candidate bit: {other:#x}"),
        }
    }
}

// ---------------------------------------------------------------------
// The sharing profile: one word per signal, element-wise summable.
// ---------------------------------------------------------------------

/// Engine switch epoch (coherence check word: `sum == nprocs × local`).
const P_EPOCH: usize = 0;
/// Current candidate bit (second coherence check word).
const P_CUR: usize = 1;
/// Slow-path `start_read`s that found the non-home copy invalid.
const P_RMISS: usize = 2;
/// Slow-path `start_write`s that found the non-home copy invalid or
/// merely shared (an upgrade).
const P_WMISS: usize = 3;
/// All slow-path `start_read`s.
const P_READS: usize = 4;
/// All slow-path `start_write`s.
const P_WRITES: usize = 5;
/// Lock hook invocations.
const P_LOCKS: usize = 6;
/// Home fan-out: subscriber links, summed over home regions with sharers.
const P_FAN: usize = 7;
/// Home regions with at least one sharer.
const P_NSH: usize = 8;
const P_LEN: usize = 9;

/// The machine-wide sharing signals of one barrier interval, unpacked
/// from the summed profile vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Signals {
    /// Remote read misses (invalid copy → blocking fetch).
    pub rmiss: u64,
    /// Remote write misses + upgrades (→ blocking fetch / invalidation).
    pub wmiss: u64,
    /// Slow-path reads.
    pub reads: u64,
    /// Slow-path writes.
    pub writes: u64,
    /// Lock acquisitions.
    pub locks: u64,
    /// Subscriber links across home regions (sharer-set sizes summed).
    pub fan: u64,
    /// Home regions with a non-empty sharer set.
    pub shared_regions: u64,
    /// Whether the *current* protocol's write hooks are null (declared in
    /// its registration) — the profiler then never sees write volume, and
    /// an observed zero must not be read as "nobody writes". Set by
    /// [`decide`] from the incumbent candidate, not carried in the wire
    /// profile (every node derives it identically).
    pub writes_blind: bool,
}

impl Signals {
    fn from_profile(a: &[u64]) -> Signals {
        let w = |i: usize| a.get(i).copied().unwrap_or(0);
        Signals {
            rmiss: w(P_RMISS),
            wmiss: w(P_WMISS),
            reads: w(P_READS),
            writes: w(P_WRITES),
            locks: w(P_LOCKS),
            fan: w(P_FAN),
            shared_regions: w(P_NSH),
            writes_blind: false,
        }
    }

    /// Total interval activity — below a floor, the engine refuses to
    /// conclude anything (an idle interval looks like every protocol is
    /// free).
    pub fn activity(&self) -> u64 {
        self.rmiss + self.wmiss + self.reads + self.writes + self.locks + self.fan
    }
}

/// Predicted interval cost of running `bit` over the observed signals, in
/// latency-weighted message units: a blocking round trip costs 3 (two
/// messages plus an exposed stall), an overlapped push-with-ack 2, a
/// pipelined one-way message 1. `u64::MAX` marks a candidate the cost
/// model refuses to select free-running.
///
/// The read-demand proxy is `max(rmiss, fan)`: under an invalidation
/// protocol the re-fetch misses *are* the demand, while under an update
/// protocol misses vanish precisely because pushes serve them — the
/// subscriber links then measure what invalidation would have re-fetched.
/// Without the proxy the engine would oscillate: each family's steady
/// state hides the cost the other family would pay.
pub fn estimate(bit: u8, g: &Signals) -> u64 {
    let demand = g.rmiss.max(g.fan);
    let avg_fan = if g.shared_regions > 0 { g.fan.div_ceil(g.shared_regions) } else { 0 };
    // Remote writes break protocols whose discipline assumes home-only
    // writers; weight them out rather than forbidding outright so a
    // stray interval cannot wedge the model.
    const FORBID: u64 = 100_000;
    match bit {
        // Invalidation: every demand unit re-fetches (3), every write
        // miss pays a fetch plus an invalidation round, and the
        // directory invalidates every standing link on a home write.
        AdaptiveSpec::SC => 3 * demand + 4 * g.wmiss + g.fan + 3 * g.locks,
        // Per-write pushes to every subscriber (overlapped, 2 per link),
        // plus join upkeep. When the incumbent hides writes from the
        // profiler (`writes_blind`), the push term is floored at `fan`: an
        // interval whose dirty regions cost the incumbent one barrier push
        // per subscriber link costs immediate per-write pushes at least as
        // much, and without the floor StaticUpdate's null write hooks
        // would make dynamic update look free exactly when it is not.
        AdaptiveSpec::DYN_UPDATE => {
            let pushes = g.writes * avg_fan;
            let pushes = if g.writes_blind { pushes.max(g.fan) } else { pushes };
            2 * pushes + 2 * g.shared_regions + 3 * g.locks
        }
        // One overlapped push per link per barrier, regardless of how
        // many times the region was written (the dirty-list sweep is
        // local); remote writes unsupported.
        AdaptiveSpec::STATIC_UPDATE => 2 * g.fan + FORBID * g.wmiss + 3 * g.locks,
        // Three-hop migration per miss; standing sharers mean the single
        // copy is being fought over.
        AdaptiveSpec::MIGRATORY => 3 * (g.rmiss + g.wmiss) + 2 * g.fan + 3 * g.locks,
        // Reads still re-fetch per interval; writes become one-way
        // deltas drained at the barrier.
        AdaptiveSpec::PIPELINED => 3 * demand + g.wmiss + 3 * g.locks,
        // Bulk pulls with no directory upkeep; any remote write violates
        // the home-owned assertion.
        AdaptiveSpec::HOME_OWNED => 3 * demand + FORBID * g.wmiss + 3 * g.locks,
        // Pinned-only candidates never win a free-running decision.
        AdaptiveSpec::NULL | AdaptiveSpec::FETCH_ADD => u64::MAX,
        other => panic!("not a single candidate bit: {other:#x}"),
    }
}

/// Whether `bit`'s protocol declares its `start_write` hook null: the
/// engine's slow-path profiler then never observes writes while `bit` is
/// the incumbent (the runtime skips null hooks), so write-derived signals
/// are structurally zero rather than evidence.
fn writes_hidden(bit: u8) -> bool {
    make(AdaptiveSpec::spec_for(bit)).null_actions().contains(Actions::START_WRITE)
}

/// Pick the cheapest candidate in `candidates` for `g`, preferring `cur`
/// on ties and requiring a ≥25% predicted win to leave it (hysteresis:
/// the switch itself costs a flush sweep and two machine barriers).
pub fn decide(candidates: u8, cur: u8, g: &Signals) -> u8 {
    let g = &Signals { writes_blind: writes_hidden(cur), ..*g };
    let cur_cost = estimate(cur, g);
    let mut best = cur;
    let mut best_cost = cur_cost;
    let mut bits = candidates;
    while bits != 0 {
        let bit = bits & bits.wrapping_neg();
        bits &= bits - 1;
        if bit == cur {
            continue;
        }
        let c = estimate(bit, g);
        if c < best_cost {
            best = bit;
            best_cost = c;
        }
    }
    if best != cur && (cur_cost == u64::MAX || best_cost * 4 <= cur_cost * 3) {
        best
    } else {
        cur
    }
}

/// The adaptive meta-protocol (see the module docs).
pub struct AdaptiveEngine {
    spec: AdaptiveSpec,
    inner: RefCell<Rc<dyn Protocol>>,
    /// Current candidate bit.
    cur: Cell<u8>,
    /// Switches this engine committed (the space's share of the node's
    /// wire-visible switch epoch).
    epoch: Cell<u64>,
    /// Profiled barriers since the last switch.
    dwell: Cell<u32>,
    // Interval signal accumulators, drained into the staged profile at
    // each barrier. Slow-path only: fast-mask hits never reach the
    // engine, which is exactly why sampling is free at steady state.
    rmiss: Cell<u64>,
    wmiss: Cell<u64>,
    reads: Cell<u64>,
    writes: Cell<u64>,
    locks: Cell<u64>,
}

impl AdaptiveEngine {
    /// Build an engine from its candidate-set configuration.
    pub fn new(spec: AdaptiveSpec) -> Self {
        assert!(
            spec.candidates & spec.initial == spec.initial && spec.initial.count_ones() == 1,
            "initial must be a single candidate bit"
        );
        if spec.is_adaptive() {
            assert!(
                spec.candidates & (AdaptiveSpec::NULL | AdaptiveSpec::FETCH_ADD) == 0,
                "Null and FetchAdd are pinned-only candidates"
            );
        }
        AdaptiveEngine {
            spec,
            inner: RefCell::new(make(AdaptiveSpec::spec_for(spec.initial))),
            cur: Cell::new(spec.initial),
            epoch: Cell::new(0),
            dwell: Cell::new(0),
            rmiss: Cell::new(0),
            wmiss: Cell::new(0),
            reads: Cell::new(0),
            writes: Cell::new(0),
            locks: Cell::new(0),
        }
    }

    /// The configuration this engine runs.
    pub fn spec(&self) -> AdaptiveSpec {
        self.spec
    }

    /// The candidate bit currently serving the space.
    pub fn current(&self) -> u8 {
        self.cur.get()
    }

    /// The name of the protocol currently serving the space.
    pub fn current_name(&self) -> &'static str {
        self.inner().name()
    }

    /// Switches committed so far.
    pub fn switches(&self) -> u64 {
        self.epoch.get()
    }

    fn inner(&self) -> Rc<dyn Protocol> {
        self.inner.borrow().clone()
    }

    fn profiling(&self) -> bool {
        self.spec.is_adaptive()
    }

    /// Commit a switch to `next`: the `change_protocol` handover run from
    /// inside the engine, with the space's protocol identity (the engine)
    /// unchanged. All nodes enter together (they decided on identical
    /// aggregates), so the flush drain and the two machine barriers
    /// align. Nothing blocks between the first barrier's return and the
    /// swap — the epoch-skew invariant the substrate asserts.
    fn switch_to(&self, rt: &AceRt, s: &SpaceEntry, next: u8) {
        let regions = rt.regions_of_space(s.id);
        let old = self.inner();
        for e in &regions {
            old.flush(rt, e);
        }
        rt.wait("adaptive flush drain", || s.outstanding.get() == 0);
        rt.machine_barrier();
        let new = make(AdaptiveSpec::spec_for(next));
        s.dirty.borrow_mut().clear();
        s.aux.set(0);
        rt.note_switch(s.id, old.name(), new.name());
        *self.inner.borrow_mut() = Rc::clone(&new);
        self.cur.set(next);
        self.epoch.set(self.epoch.get() + 1);
        new.init_space(rt, s);
        for e in &regions {
            new.adopt(rt, e);
        }
        rt.machine_barrier();
    }

    /// Storm mode's rotation: the next candidate bit above `cur`,
    /// wrapping — deterministic, so all nodes rotate in lockstep.
    fn next_round_robin(&self) -> u8 {
        let cur = self.cur.get();
        let higher = self.spec.candidates & !(cur | cur.wrapping_sub(1));
        let pool = if higher != 0 { higher } else { self.spec.candidates };
        1 << pool.trailing_zeros()
    }

    fn on_aggregate(&self, rt: &AceRt, s: &SpaceEntry, a: &[u64]) {
        let n = rt.nprocs() as u64;
        debug_assert_eq!(a[P_EPOCH], self.epoch.get() * n, "adaptive engines out of lockstep");
        debug_assert_eq!(a[P_CUR], self.cur.get() as u64 * n, "candidate disagreement");
        self.dwell.set(self.dwell.get() + 1);
        if self.dwell.get() < self.spec.min_dwell as u32 {
            return;
        }
        let g = Signals::from_profile(a);
        let next = if self.spec.storm {
            self.next_round_robin()
        } else {
            // An idle interval is evidence of nothing; demand a signal
            // per node before trusting the model.
            if g.activity() < n {
                return;
            }
            decide(self.spec.candidates, self.cur.get(), &g)
        };
        if next != self.cur.get() {
            self.switch_to(rt, s, next);
            self.dwell.set(0);
        }
    }

    #[inline]
    fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }
}

impl Protocol for AdaptiveEngine {
    fn name(&self) -> &'static str {
        "Adaptive"
    }

    fn op_name(&self, op: u16) -> &'static str {
        self.inner().op_name(op)
    }

    // Reordering calls across a potential switch point is never safe.
    fn optimizable(&self) -> bool {
        false
    }

    // The checker samples grants at section open; sections never span the
    // barrier where the inner protocol changes, so delegating keeps the
    // grant set exact per interval.
    fn grants(&self) -> GrantSet {
        self.inner().grants()
    }

    fn on_create(&self, rt: &AceRt, e: &RegionEntry) {
        self.inner().on_create(rt, e);
    }

    fn on_map(&self, rt: &AceRt, e: &RegionEntry) {
        self.inner().on_map(rt, e);
    }

    fn on_unmap(&self, rt: &AceRt, e: &RegionEntry) {
        self.inner().on_unmap(rt, e);
    }

    fn start_read(&self, rt: &AceRt, e: &RegionEntry) {
        if self.profiling() {
            Self::bump(&self.reads);
            if !e.is_home_of(rt.rank()) && e.st.get() == REMOTE_INVALID {
                Self::bump(&self.rmiss);
            }
        }
        self.inner().start_read(rt, e);
    }

    fn end_read(&self, rt: &AceRt, e: &RegionEntry) {
        self.inner().end_read(rt, e);
    }

    fn start_write(&self, rt: &AceRt, e: &RegionEntry) {
        if self.profiling() {
            Self::bump(&self.writes);
            if !e.is_home_of(rt.rank()) {
                let st = e.st.get();
                if st == REMOTE_INVALID || st == REMOTE_SHARED {
                    Self::bump(&self.wmiss);
                }
            }
        }
        self.inner().start_write(rt, e);
    }

    fn end_write(&self, rt: &AceRt, e: &RegionEntry) {
        self.inner().end_write(rt, e);
    }

    fn barrier(&self, rt: &AceRt, s: &SpaceEntry) {
        if !self.profiling() {
            self.inner().barrier(rt, s);
            return;
        }
        let mut prof = vec![0u64; P_LEN];
        prof[P_EPOCH] = self.epoch.get();
        prof[P_CUR] = self.cur.get() as u64;
        prof[P_RMISS] = self.rmiss.take();
        prof[P_WMISS] = self.wmiss.take();
        prof[P_READS] = self.reads.take();
        prof[P_WRITES] = self.writes.take();
        prof[P_LOCKS] = self.locks.take();
        for e in rt.regions_of_space(s.id) {
            if e.is_home_of(rt.rank()) {
                let links = e.sharer_ranks().count() as u64;
                if links > 0 {
                    prof[P_FAN] += links;
                    prof[P_NSH] += 1;
                }
            }
        }
        rt.stage_bar_profile(s.id, prof);
        self.inner().barrier(rt, s);
        if let Some(agg) = rt.take_bar_aggregate(s.id) {
            self.on_aggregate(rt, s, &agg);
        }
    }

    fn lock(&self, rt: &AceRt, e: &RegionEntry) {
        if self.profiling() {
            Self::bump(&self.locks);
        }
        self.inner().lock(rt, e);
    }

    fn unlock(&self, rt: &AceRt, e: &RegionEntry) {
        self.inner().unlock(rt, e);
    }

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, src: usize) {
        self.inner().handle(rt, e, msg, src);
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        self.inner().flush(rt, e);
    }

    fn adopt(&self, rt: &AceRt, e: &RegionEntry) {
        self.inner().adopt(rt, e);
    }

    fn init_space(&self, rt: &AceRt, s: &SpaceEntry) {
        self.inner().init_space(rt, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, run_ace_with, CheckMode, CostModel, RegionId, Spmd};

    // ---------------- cost-model units ----------------

    #[test]
    fn static_update_wins_the_producer_consumer_pattern() {
        // EM3D-shaped interval: home-only writes, every boundary value
        // re-missed by its consumers each step, stable fan.
        let g = Signals {
            rmiss: 400,
            wmiss: 0,
            reads: 500,
            writes: 200,
            locks: 0,
            fan: 400,
            shared_regions: 200,
            ..Default::default()
        };
        let set = AdaptiveSpec::SC | AdaptiveSpec::STATIC_UPDATE | AdaptiveSpec::DYN_UPDATE;
        assert_eq!(decide(set, AdaptiveSpec::SC, &g), AdaptiveSpec::STATIC_UPDATE);
        // ... and once there it stays: misses vanish, links remain, and
        // the proxy prices SC at what it would re-fetch.
        let steady = Signals { rmiss: 0, fan: 400, shared_regions: 200, writes: 200, ..g };
        assert_eq!(decide(set, AdaptiveSpec::STATIC_UPDATE, &steady), AdaptiveSpec::STATIC_UPDATE);
    }

    #[test]
    fn pipelined_wins_mixed_remote_writes() {
        // Water-shaped interval: heavy remote read+write mix.
        let g = Signals {
            rmiss: 300,
            wmiss: 300,
            reads: 400,
            writes: 400,
            locks: 0,
            fan: 100,
            shared_regions: 50,
            ..Default::default()
        };
        let set = AdaptiveSpec::SC | AdaptiveSpec::PIPELINED;
        assert_eq!(decide(set, AdaptiveSpec::SC, &g), AdaptiveSpec::PIPELINED);
        assert_eq!(decide(set, AdaptiveSpec::PIPELINED, &g), AdaptiveSpec::PIPELINED);
    }

    #[test]
    fn home_owned_wins_read_only_consumers() {
        let g = Signals {
            rmiss: 200,
            wmiss: 0,
            reads: 300,
            writes: 50,
            locks: 0,
            fan: 200,
            shared_regions: 10,
            ..Default::default()
        };
        let set = AdaptiveSpec::SC | AdaptiveSpec::HOME_OWNED;
        assert_eq!(decide(set, AdaptiveSpec::SC, &g), AdaptiveSpec::HOME_OWNED);
        // A single remote write prices HomeOwned out immediately.
        let bad = Signals { wmiss: 1, ..g };
        assert_eq!(decide(set, AdaptiveSpec::HOME_OWNED, &bad), AdaptiveSpec::SC);
    }

    #[test]
    fn quiet_intervals_and_small_wins_do_not_switch() {
        let quiet = Signals::default();
        let set = AdaptiveSpec::SC | AdaptiveSpec::STATIC_UPDATE;
        // Zero activity gives every candidate cost 0; ties keep the
        // incumbent.
        assert_eq!(decide(set, AdaptiveSpec::SC, &quiet), AdaptiveSpec::SC);
        // A ~10% predicted win (SC 400 vs DynUpdate 360 message units)
        // is below the 25% hysteresis bar: the switch itself costs a
        // flush sweep and two machine barriers.
        let mild =
            Signals { rmiss: 100, reads: 100, writes: 80, fan: 100, shared_regions: 100, ..quiet };
        assert_eq!(
            decide(AdaptiveSpec::SC | AdaptiveSpec::DYN_UPDATE, AdaptiveSpec::SC, &mild),
            AdaptiveSpec::SC
        );
    }

    #[test]
    fn pinned_only_candidates_never_win_free_running() {
        let g = Signals { locks: 1000, ..Signals::default() };
        // Even a pure lock workload cannot elect FetchAdd via decide();
        // it must be pinned.
        assert_eq!(
            decide(AdaptiveSpec::SC | AdaptiveSpec::MIGRATORY, AdaptiveSpec::SC, &g),
            AdaptiveSpec::SC
        );
        assert_eq!(estimate(AdaptiveSpec::FETCH_ADD, &g), u64::MAX);
        assert_eq!(estimate(AdaptiveSpec::NULL, &g), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "pinned-only")]
    fn free_running_null_is_rejected_at_construction() {
        AdaptiveEngine::new(AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::NULL));
    }

    // ---------------- engine integration ----------------

    fn adaptive(spec: AdaptiveSpec) -> Rc<dyn Protocol> {
        Rc::new(AdaptiveEngine::new(spec))
    }

    /// One shared region homed at node 0, everyone mapped.
    fn setup(rt: &AceRt, spec: AdaptiveSpec, words: usize) -> (ace_core::SpaceId, RegionId) {
        let s = rt.new_space(adaptive(spec));
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc_words(s, words).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        (s, rid)
    }

    #[test]
    fn engine_switches_producer_consumer_space_to_static_update() {
        // Node 0 writes, everyone re-reads each step: the canonical
        // invalidate-vs-update case. The engine must move off SC and the
        // data must stay exact through the switch.
        let r = run_ace(4, CostModel::free(), |rt| {
            let spec = AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::STATIC_UPDATE);
            let (s, rid) = setup(rt, spec, 4);
            let mut last = 0;
            for i in 0..12u64 {
                if rt.rank() == 0 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] = i + 1);
                    rt.end_write(rid);
                }
                rt.barrier(s);
                rt.start_read(rid);
                last = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                assert_eq!(last, i + 1);
                rt.barrier(s);
            }
            (last, rt.counters().switches, rt.node().switch_epoch())
        });
        for &(last, switches, epoch) in &r.results {
            assert_eq!(last, 12);
            assert!(switches >= 1, "engine never switched");
            assert_eq!(switches, epoch, "every switch bumps the wire epoch");
        }
        // All nodes committed the same number of switches.
        let counts: Vec<u64> = r.results.iter().map(|t| t.1).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "switch counts diverge: {counts:?}");
    }

    #[test]
    fn pinned_engine_matches_static_protocol_exactly() {
        // The engine pinned to SC must be indistinguishable from SC in
        // results, data digests, and logical message counts.
        let program = |rt: &AceRt, rid: RegionId, s: ace_core::SpaceId| {
            let mut acc = 0;
            for i in 0..6u64 {
                if rt.rank() as u64 == i % 3 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] += i);
                    rt.end_write(rid);
                }
                rt.barrier(s);
                rt.start_read(rid);
                acc += rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                rt.barrier(s);
            }
            acc
        };
        let run = |pinned: bool| {
            run_ace(3, CostModel::free(), move |rt| {
                let proto: Rc<dyn Protocol> = if pinned {
                    adaptive(AdaptiveSpec::pinned(AdaptiveSpec::SC))
                } else {
                    make(ProtoSpec::Sc)
                };
                let s = rt.new_space(proto);
                let rid = if rt.rank() == 0 {
                    RegionId(rt.bcast(0, &[rt.gmalloc_words(s, 2).0])[0])
                } else {
                    RegionId(rt.bcast(0, &[])[0])
                };
                rt.map(rid);
                let acc = program(rt, rid, s);
                (acc, rt.data_digest(), rt.counters().logical_msgs, rt.counters().switches)
            })
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn storm_mode_rotates_through_candidates_without_corruption() {
        // Forced switches every profiled barrier, cycling SC → Static →
        // Pipelined → SC...; the shared value must survive every handover.
        let r = run_ace(4, CostModel::free(), |rt| {
            let spec = AdaptiveSpec::new(
                AdaptiveSpec::SC | AdaptiveSpec::STATIC_UPDATE | AdaptiveSpec::PIPELINED,
            )
            .with_dwell(1)
            .storming();
            let (s, rid) = setup(rt, spec, 2);
            for i in 0..9u64 {
                if rt.rank() == 0 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] = (i + 1) * 10);
                    rt.end_write(rid);
                }
                rt.barrier(s);
                rt.start_read(rid);
                let v = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                assert_eq!(v, (i + 1) * 10, "stale data after a storm switch");
                rt.barrier(s);
            }
            rt.counters().switches
        });
        // 18 profiled barriers with dwell 1: a switch at every other
        // barrier at least (the rotation always moves).
        for &s in &r.results {
            assert!(s >= 6, "storm produced too few switches: {s}");
        }
    }

    #[test]
    fn free_running_engine_is_violation_free_under_check_fail() {
        // The checker's grant sets follow the inner protocol across
        // switches; a clean program must stay clean while the engine
        // moves between exclusive (SC) and concurrent (Static) grants.
        let builder = Spmd::builder().nprocs(3).cost(CostModel::free()).check(CheckMode::Fail);
        let r = run_ace_with(builder, |rt| {
            let spec = AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::STATIC_UPDATE);
            let (s, rid) = setup(rt, spec, 1);
            for i in 0..10u64 {
                if rt.rank() == 0 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] = i);
                    rt.end_write(rid);
                }
                rt.barrier(s);
                rt.start_read(rid);
                let _ = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                rt.barrier(s);
            }
            rt.counters().switches
        });
        assert_eq!(r.stats.total_violations(), 0);
        assert!(r.results.iter().all(|&s| s >= 1));
    }
}
