//! Protocol-specific property tests: each protocol's *relaxed* semantics
//! still guarantee its documented invariants under random workloads.

use ace::core::{run_ace, CostModel, RegionId};
use ace::protocols::{make, ProtoSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipelined delta writes: concurrent additive contributions from
    /// random writers sum exactly (commutative accumulation, no lost
    /// updates), even though no writer ever holds exclusive access.
    #[test]
    fn pipelined_accumulation_is_exact(
        contributions in proptest::collection::vec((0usize..4, 1i32..100), 1..40),
    ) {
        let expected: f64 = contributions.iter().map(|(_, v)| *v as f64).sum();
        let contributions2 = contributions.clone();
        let r = run_ace(4, CostModel::free(), move |rt| {
            let s = rt.new_space(make(ProtoSpec::Pipelined));
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<f64>(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            rt.barrier(s);
            for (writer, v) in &contributions2 {
                if *writer == rt.rank() {
                    rt.start_write(rid);
                    rt.with_mut::<f64, _>(rid, |d| d[0] += *v as f64);
                    rt.end_write(rid);
                }
            }
            rt.barrier(s);
            rt.start_read(rid);
            let v = rt.with::<f64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            rt.barrier(s);
            v
        });
        for v in r.results {
            prop_assert_eq!(v, expected);
        }
    }

    /// Static update: after each barrier, every prior subscriber observes
    /// exactly the home's latest value, for random write sequences.
    #[test]
    fn static_update_publishes_exactly_at_barriers(
        writes in proptest::collection::vec(1u64..1000, 1..8),
    ) {
        let writes2 = writes.clone();
        let r = run_ace(3, CostModel::free(), move |rt| {
            let s = rt.new_space(make(ProtoSpec::StaticUpdate));
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid); // subscribes
            rt.barrier(s);
            let mut seen = Vec::new();
            for w in &writes2 {
                if rt.rank() == 0 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] = *w);
                    rt.end_write(rid);
                }
                rt.barrier(s);
                rt.start_read(rid);
                seen.push(rt.with::<u64, _>(rid, |d| d[0]));
                rt.end_read(rid);
                rt.barrier(s);
            }
            seen
        });
        for seen in r.results {
            prop_assert_eq!(&seen, &writes);
        }
    }

    /// Fetch-and-add: random interleavings of acquisitions from random
    /// nodes issue every ticket exactly once.
    #[test]
    fn fetch_add_tickets_unique(per_node in 1usize..20, nprocs in 2usize..6) {
        let r = run_ace(nprocs, CostModel::free(), move |rt| {
            let s = rt.new_space(make(ProtoSpec::FetchAdd(1)));
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            rt.machine_barrier();
            let mut got = Vec::new();
            for _ in 0..per_node {
                rt.lock(rid);
                rt.start_read(rid);
                let t = rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
                rt.start_write(rid);
                rt.with_mut::<u64, _>(rid, |d| d[0] = t + 1);
                rt.end_write(rid);
                rt.unlock(rid);
                got.push(t);
            }
            rt.machine_barrier();
            got
        });
        let mut all: Vec<u64> = r.results.into_iter().flatten().collect();
        all.sort_unstable();
        let want: Vec<u64> = (0..(per_node * nprocs) as u64).collect();
        prop_assert_eq!(all, want);
    }

    /// Migratory: random ownership-hopping read-modify-write chains never
    /// lose an increment.
    #[test]
    fn migratory_rmw_chain_is_lossless(
        ops in proptest::collection::vec(0usize..4, 1..30),
    ) {
        let ops2 = ops.clone();
        let r = run_ace(4, CostModel::free(), move |rt| {
            let s = rt.new_space(make(ProtoSpec::Migratory));
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            rt.machine_barrier();
            for w in &ops2 {
                if *w == rt.rank() {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] += 1);
                    rt.end_write(rid);
                }
            }
            rt.machine_barrier();
            rt.start_read(rid);
            let v = rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            rt.machine_barrier();
            v
        });
        for v in r.results {
            prop_assert_eq!(v, ops.len() as u64);
        }
    }

    /// Pod views: arbitrary f64/u32 data round-trips bit-exactly through
    /// region storage and bulk transfer.
    #[test]
    fn region_data_round_trips(vals in proptest::collection::vec(any::<f64>(), 1..64)) {
        let vals2 = vals.clone();
        let r = run_ace(2, CostModel::free(), move |rt| {
            let s = rt.new_space(make(ProtoSpec::Sc));
            let rid = if rt.rank() == 0 {
                RegionId(rt.bcast(0, &[rt.gmalloc::<f64>(s, vals2.len()).0])[0])
            } else {
                RegionId(rt.bcast(0, &[])[0])
            };
            rt.map(rid);
            if rt.rank() == 0 {
                rt.start_write(rid);
                rt.with_mut::<f64, _>(rid, |d| d[..vals2.len()].copy_from_slice(&vals2));
                rt.end_write(rid);
            }
            rt.machine_barrier();
            rt.start_read(rid);
            let got = rt.with::<f64, _>(rid, |d| d[..vals2.len()].to_vec());
            rt.end_read(rid);
            rt.machine_barrier();
            got
        });
        for got in r.results {
            for (g, w) in got.iter().zip(&vals) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }
}
