//! SPMD launcher: run one closure on every simulated processor.

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;

use crate::cost::CostModel;
use crate::envelope::MsgSize;
use crate::node::Node;
use crate::stats::{MachineStats, NodeStats};
use crate::MAX_NODES;

/// Outcome of an SPMD run: per-node results, counters, and both clocks.
#[derive(Debug)]
pub struct SpmdResult<R> {
    /// Per-node return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-node communication counters.
    pub stats: MachineStats,
    /// Simulated completion time (max final virtual clock), nanoseconds.
    pub sim_ns: u64,
    /// Real elapsed time of the whole run.
    pub wall: Duration,
}

/// Records the first rank whose thread dies by panic into the machine-wide
/// failure flag, so peers blocked in a poll loop can fail fast with a
/// "peer exited" diagnostic instead of stalling into the watchdog.
struct FailGuard {
    rank: usize,
    failed: Arc<AtomicIsize>,
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // First writer wins: cascade panics must not mask the culprit.
            let _ = self.failed.compare_exchange(
                -1,
                self.rank as isize,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }
}

/// Launch `nprocs` simulated processors, each running `f` with its own
/// [`Node`], in the single-program-multiple-data style of the paper
/// ("a single user thread per processor (SPMD)", §3.1).
///
/// The closure must uphold the quiescence contract: when it returns on one
/// node, no other node may still require service from it. The runtimes
/// enforce this by ending every program with a machine-wide barrier.
///
/// # Panics
///
/// Panics if `nprocs` is zero or exceeds [`MAX_NODES`], or if any node's
/// closure panics. When several nodes die (one crashes and its blocked
/// peers then fail with "peer exited"), the panic propagated is the
/// *first* thread that died — the root cause, not a symptom.
pub fn run_spmd<M, R, F>(nprocs: usize, cost: CostModel, f: F) -> SpmdResult<R>
where
    M: MsgSize + Send,
    R: Send,
    F: Fn(&Node<M>) -> R + Sync,
{
    assert!(nprocs >= 1, "need at least one node");
    assert!(nprocs <= MAX_NODES, "at most {MAX_NODES} nodes supported");

    let cost = Arc::new(cost);
    let mut txs = Vec::with_capacity(nprocs);
    let mut rxs = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let txs = Arc::new(txs);
    let failed = Arc::new(AtomicIsize::new(-1));

    let start = Instant::now();
    let mut outcomes: Vec<Option<(R, NodeStats)>> = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        outcomes.push(None);
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nprocs);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let txs = Arc::clone(&txs);
            let cost = Arc::clone(&cost);
            let failed = Arc::clone(&failed);
            let f = &f;
            handles.push(scope.spawn(move || {
                let _guard = FailGuard { rank, failed: Arc::clone(&failed) };
                let node = Node::new(rank, nprocs, rx, txs, cost, failed);
                let r = f(&node);
                (r, node.stats())
            }));
        }
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(out) => outcomes[rank] = Some(out),
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(|s| s.as_str())
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    failures.push((rank, msg.to_string()));
                }
            }
        }
        if !failures.is_empty() {
            let culprit = failed.load(Ordering::SeqCst);
            let (rank, msg) =
                failures.iter().find(|(r, _)| *r as isize == culprit).unwrap_or(&failures[0]);
            panic!("node {rank} panicked: {msg}");
        }
    });

    let wall = start.elapsed();
    let mut results = Vec::with_capacity(nprocs);
    let mut stats = MachineStats::default();
    for out in outcomes {
        let (r, s) = out.expect("node produced no result");
        results.push(r);
        stats.nodes.push(s);
    }
    let sim_ns = stats.sim_time();
    SpmdResult { results, stats, sim_ns, wall }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rank_runs_once() {
        let r = run_spmd::<(), _, _>(8, CostModel::free(), |node| node.rank());
        assert_eq!(r.results, (0..8).collect::<Vec<_>>());
        assert_eq!(r.stats.nodes.len(), 8);
    }

    #[test]
    fn sim_time_is_max_clock() {
        let r = run_spmd::<(), _, _>(4, CostModel::free(), |node| {
            node.charge(node.rank() as u64 * 1000);
        });
        assert_eq!(r.sim_ns, 3000);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_nodes_rejected() {
        run_spmd::<(), _, _>(MAX_NODES + 1, CostModel::free(), |_| {});
    }

    #[test]
    #[should_panic(expected = "node 2 panicked: boom")]
    fn panics_propagate_with_rank() {
        run_spmd::<(), _, _>(4, CostModel::free(), |node| {
            if node.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "node 1 panicked: boom")]
    fn peer_death_reports_root_cause() {
        // Node 1 crashes while node 0 is blocked waiting on it. Node 0 must
        // detect the death promptly (well under the watchdog) and the
        // propagated panic must name the crashing node, not the waiter.
        let start = Instant::now();
        let r = std::panic::catch_unwind(|| {
            run_spmd::<u64, _, _>(2, CostModel::free(), |node| {
                if node.rank() == 1 {
                    panic!("boom");
                }
                node.poll_until("a message that never comes", |_, _| {}, || false);
            })
        });
        assert!(r.is_err());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "peer death took {:?} to detect; watchdog should not be involved",
            start.elapsed()
        );
        std::panic::resume_unwind(r.unwrap_err());
    }

    #[test]
    fn all_to_all_ring() {
        // Every node sends its rank to every other node and sums receipts.
        let n = 6usize;
        let r = run_spmd::<u64, _, _>(n, CostModel::cm5(), |node| {
            for dst in 0..n {
                if dst != node.rank() {
                    node.send(dst, node.rank() as u64 + 1);
                }
            }
            let acc = std::cell::Cell::new((0u64, 0usize));
            node.poll_until(
                "ring receipts",
                |_, env| {
                    let (sum, cnt) = acc.get();
                    acc.set((sum + env.msg, cnt + 1));
                },
                || acc.get().1 == n - 1,
            );
            acc.get().0
        });
        let total: u64 = (1..=n as u64).sum();
        for (rank, got) in r.results.iter().enumerate() {
            assert_eq!(*got, total - (rank as u64 + 1));
        }
    }
}
