//! `ace-check`: the runtime access-control conformance layer.
//!
//! When a machine is built with [`CheckMode::Log`] or [`CheckMode::Fail`]
//! (see `MachineBuilder::check`), every node carries a `Checker` that
//! validates the paper's annotation contract *as the protocol actually
//! granted it*:
//!
//! * data accesses must happen inside an open access section of the right
//!   kind (the release-build teeth behind the debug-only asserts in
//!   [`crate::AceRt::with`] / [`crate::AceRt::with_mut`]),
//! * access sections must open/close/nest correctly and be empty when the
//!   node's program exits, and
//! * two nodes must not hold vector-clock-concurrent sections on one
//!   region in a combination the protocol's [`GrantSet`] never grants
//!   (write+write, or write+read).
//!
//! The cross-node check works by recording completed sections together
//! with vector-clock snapshots. Clocks are maintained by the substrate
//! and piggybacked on message envelopes (`Envelope::vc`), so any two
//! sections separated by a message chain — a coherence grant, a barrier
//! epoch through node 0 — are causally ordered and never reported. At
//! shutdown every node's section history is gathered at node 0, which
//! runs the pairwise analysis. Checker metadata is metrologically
//! invisible: vector clocks add no bytes or virtual-time charges, so a
//! checked run reports the same simulated time as an unchecked one (wall
//! clock differs; see DESIGN.md §12).
//!
//! Violations become structured [`AceError::Conformance`] values and
//! `EventKind::Violation` trace events. `Log` records and keeps going;
//! `Fail` panics on the first violation with the rendered report.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use ace_machine::{CheckMode, EventKind, Node, NO_REGION};

use crate::error::{AceError, ConformanceKind, SectionRecord};
use crate::ids::RegionId;
use crate::msg::AceMsg;
use crate::protocol::GrantSet;

/// An access section currently open on this node.
struct OpenSection {
    /// Virtual time the outermost open completed.
    open_t: u64,
    /// Vector clock just after the outermost open completed.
    open_vc: Arc<[u64]>,
    /// Protocol governing the region's space at open time.
    proto: &'static str,
    /// That protocol's declared concurrency grants.
    grants: GrantSet,
}

/// Words per encoded section record on the wire: five header words plus
/// two vector clocks of `nprocs` words each.
fn record_stride(nprocs: usize) -> usize {
    5 + 2 * nprocs
}

/// Per-node conformance state. Constructed unconditionally by the runtime
/// but inert (every entry point returns immediately) under
/// [`CheckMode::Off`].
pub(crate) struct Checker {
    mode: CheckMode,
    /// Open outermost sections, keyed by (region bits, is-write).
    open: RefCell<HashMap<(u64, bool), OpenSection>>,
    /// Completed sections that can participate in a cross-node conflict
    /// (sections whose every overlap is granted are filtered at close).
    history: RefCell<Vec<(SectionRecord, GrantSet)>>,
    /// Violations recorded on this node (including, on node 0, the
    /// cross-node conflicts found at shutdown).
    violations: RefCell<Vec<AceError>>,
    /// Idempotence guard for the shutdown analysis: `AceRt::shutdown` can
    /// run twice (once by the program, once by the `run_ace` wrapper) and
    /// the gather/analysis must happen exactly once.
    analyzed: Cell<bool>,
}

impl Checker {
    pub(crate) fn new(mode: CheckMode) -> Self {
        Checker {
            mode,
            open: RefCell::new(HashMap::new()),
            history: RefCell::new(Vec::new()),
            violations: RefCell::new(Vec::new()),
            analyzed: Cell::new(false),
        }
    }

    /// Whether any checking is active. Callers gate every per-access call
    /// on this so `Off` costs one branch.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.mode.enabled()
    }

    /// Record a violation: structured error, trace event, node counter —
    /// then panic under [`CheckMode::Fail`].
    pub(crate) fn report(&self, node: &Node<AceMsg>, err: AceError) {
        let region = match &err {
            AceError::Conformance { region, .. } => region.0,
            _ => NO_REGION,
        };
        let sink = node.trace_sink();
        if sink.enabled() {
            sink.emit(
                node.now(),
                EventKind::Violation { region, what: err.to_string().into_boxed_str() },
            );
        }
        node.note_violation();
        self.violations.borrow_mut().push(err.clone());
        if self.mode == CheckMode::Fail {
            panic!("{err}");
        }
    }

    /// Snapshot of every violation recorded on this node so far.
    pub(crate) fn violations(&self) -> Vec<AceError> {
        self.violations.borrow().clone()
    }

    /// An outermost section just opened (its start hook has completed and
    /// the section counter went 0 → 1). Ticking the clock *after* the hook
    /// means the open is causally after whatever grant messages the hook
    /// exchanged — a peer that merged those messages opens "later".
    pub(crate) fn on_open(
        &self,
        node: &Node<AceMsg>,
        region: RegionId,
        write: bool,
        proto: &'static str,
        grants: GrantSet,
    ) {
        let open_vc = node.vc_tick();
        self.open
            .borrow_mut()
            .insert((region.0, write), OpenSection { open_t: node.now(), open_vc, proto, grants });
    }

    /// An outermost section is about to close (counter hit zero, end hook
    /// not yet dispatched). Ticking *before* the hook means whatever
    /// write-back or release messages the hook sends carry a clock that
    /// dominates the close — a peer that merged them opens strictly after
    /// this section in vector-clock order.
    pub(crate) fn on_close(&self, node: &Node<AceMsg>, region: RegionId, write: bool) {
        let Some(open) = self.open.borrow_mut().remove(&(region.0, write)) else {
            return;
        };
        let close_vc = node.vc_tick();
        let g = open.grants;
        // Sections whose every possible overlap is granted can never be
        // the subject of a conflict report; skip recording them so the
        // shutdown exchange stays proportional to what can actually
        // conflict. Read/read never conflicts, so a read section matters
        // only when read+write is ungranted; a write section matters
        // unless both write+write and read+write are granted.
        let recordable = if write { !(g.write_write && g.read_write) } else { !g.read_write };
        if recordable {
            self.history.borrow_mut().push((
                SectionRecord {
                    region,
                    rank: node.rank(),
                    write,
                    proto: open.proto.to_string(),
                    open_t: open.open_t,
                    close_t: node.now(),
                    open_vc: open.open_vc.to_vec(),
                    close_vc: close_vc.to_vec(),
                },
                g,
            ));
        }
    }

    /// Whether the shutdown analysis already ran (sets the guard on first
    /// call). All nodes call this the same number of times in SPMD order,
    /// so the collective gather below it stays aligned.
    pub(crate) fn begin_analysis(&self) -> bool {
        !self.analyzed.replace(true)
    }

    /// Node-exit sweep: every section still open is a leak.
    pub(crate) fn sweep_open(&self, node: &Node<AceMsg>) {
        let mut leaked: Vec<((u64, bool), OpenSection)> = self.open.borrow_mut().drain().collect();
        leaked.sort_by_key(|((bits, write), _)| (*bits, *write));
        for ((bits, write), sec) in leaked {
            self.report(
                node,
                AceError::Conformance {
                    region: RegionId(bits),
                    rank: node.rank(),
                    kind: ConformanceKind::SectionLeftOpen { write, opened_at: sec.open_t },
                },
            );
        }
    }

    /// Flatten this node's section history for the shutdown gather.
    pub(crate) fn encode_history(&self, nprocs: usize) -> Vec<u64> {
        let hist = self.history.borrow();
        let mut out = Vec::with_capacity(hist.len() * record_stride(nprocs));
        for (r, g) in hist.iter() {
            out.push(r.region.0);
            let mut packed = r.rank as u64;
            packed |= (r.write as u64) << 8;
            packed |= (g.write_write as u64) << 9;
            packed |= (g.read_write as u64) << 10;
            out.push(packed);
            out.push(r.open_t);
            out.push(r.close_t);
            let mut name8 = [0u8; 8];
            for (i, &b) in r.proto.as_bytes().iter().take(8).enumerate() {
                name8[i] = b;
            }
            out.push(u64::from_le_bytes(name8));
            debug_assert_eq!(r.open_vc.len(), nprocs);
            out.extend_from_slice(&r.open_vc);
            out.extend_from_slice(&r.close_vc);
        }
        out
    }

    /// Node-0 side of the shutdown exchange: decode every rank's history
    /// and report each vector-clock-concurrent, ungranted pair.
    pub(crate) fn analyze(&self, node: &Node<AceMsg>, all: &[Arc<[u64]>]) {
        let nprocs = node.nprocs();
        let mut by_region: HashMap<u64, Vec<(SectionRecord, GrantSet)>> = HashMap::new();
        for words in all {
            for rec in words.chunks_exact(record_stride(nprocs)) {
                let (r, g) = decode_record(rec, nprocs);
                by_region.entry(r.region.0).or_default().push((r, g));
            }
        }
        let mut regions: Vec<u64> = by_region.keys().copied().collect();
        regions.sort_unstable();
        for bits in regions {
            let recs = &by_region[&bits];
            for (i, j) in find_conflicts(recs) {
                self.report(
                    node,
                    AceError::Conformance {
                        region: RegionId(bits),
                        rank: recs[i].0.rank,
                        kind: ConformanceKind::ConflictingSections {
                            a: Box::new(recs[i].0.clone()),
                            b: Box::new(recs[j].0.clone()),
                        },
                    },
                );
            }
        }
    }
}

/// Decode one wire record (see [`Checker::encode_history`]).
fn decode_record(rec: &[u64], nprocs: usize) -> (SectionRecord, GrantSet) {
    let region = RegionId(rec[0]);
    let packed = rec[1];
    let rank = (packed & 0xff) as usize;
    let write = packed & (1 << 8) != 0;
    let grants =
        GrantSet { write_write: packed & (1 << 9) != 0, read_write: packed & (1 << 10) != 0 };
    let name8 = rec[4].to_le_bytes();
    let len = name8.iter().position(|&b| b == 0).unwrap_or(8);
    let proto = String::from_utf8_lossy(&name8[..len]).into_owned();
    (
        SectionRecord {
            region,
            rank,
            write,
            proto,
            open_t: rec[2],
            close_t: rec[3],
            open_vc: rec[5..5 + nprocs].to_vec(),
            close_vc: rec[5 + nprocs..5 + 2 * nprocs].to_vec(),
        },
        grants,
    )
}

/// Pairwise conflict scan over one region's records: returns index pairs
/// `(i, j)` with `i < j` that are cross-rank, in an ungranted
/// combination, and vector-clock concurrent.
fn find_conflicts(recs: &[(SectionRecord, GrantSet)]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..recs.len() {
        for j in (i + 1)..recs.len() {
            let (a, ga) = &recs[i];
            let (b, gb) = &recs[j];
            if a.rank == b.rank || (!a.write && !b.write) {
                continue;
            }
            let permitted = if a.write && b.write {
                ga.write_write && gb.write_write
            } else {
                ga.read_write && gb.read_write
            };
            if permitted {
                continue;
            }
            // Concurrent iff neither happened-before the other: B's open
            // does not know A's close, and A's open does not know B's.
            let concurrent =
                b.open_vc[a.rank] < a.close_vc[a.rank] && a.open_vc[b.rank] < b.close_vc[b.rank];
            if concurrent {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        rank: usize,
        write: bool,
        open_vc: Vec<u64>,
        close_vc: Vec<u64>,
        g: GrantSet,
    ) -> (SectionRecord, GrantSet) {
        (
            SectionRecord {
                region: RegionId(7),
                rank,
                write,
                proto: "sc".into(),
                open_t: 0,
                close_t: 10,
                open_vc,
                close_vc,
            },
            g,
        )
    }

    #[test]
    fn record_wire_round_trip() {
        let (r, g) = rec(3, true, vec![1, 2], vec![5, 2], GrantSet::exclusive());
        let mut r = r;
        r.proto = "migratory".into(); // truncates to 8 bytes on the wire
        let checker = Checker::new(CheckMode::Log);
        checker.history.borrow_mut().push((r.clone(), g));
        let words = checker.encode_history(2);
        assert_eq!(words.len(), record_stride(2));
        let (d, dg) = decode_record(&words, 2);
        assert_eq!(dg, g);
        assert_eq!(d.region, r.region);
        assert_eq!(d.rank, 3);
        assert!(d.write);
        assert_eq!(d.proto, "migrator", "name truncated to eight bytes");
        assert_eq!(d.open_vc, r.open_vc);
        assert_eq!(d.close_vc, r.close_vc);
    }

    #[test]
    fn concurrent_ungranted_writes_conflict() {
        let ex = GrantSet::exclusive();
        // Neither node's open clock knows the other's close: concurrent.
        let recs = vec![
            rec(0, true, vec![1, 0], vec![3, 0], ex),
            rec(1, true, vec![0, 1], vec![0, 3], ex),
        ];
        assert_eq!(find_conflicts(&recs), vec![(0, 1)]);
    }

    #[test]
    fn causally_ordered_sections_do_not_conflict() {
        let ex = GrantSet::exclusive();
        // Node 1 opened after merging node 0's close (open_vc[0] >= 3).
        let recs = vec![
            rec(0, true, vec![1, 0], vec![3, 0], ex),
            rec(1, true, vec![3, 1], vec![3, 3], ex),
        ];
        assert!(find_conflicts(&recs).is_empty());
    }

    #[test]
    fn granted_overlaps_and_read_read_are_legal() {
        let conc = GrantSet::concurrent();
        let recs = vec![
            rec(0, true, vec![1, 0], vec![3, 0], conc),
            rec(1, true, vec![0, 1], vec![0, 3], conc),
        ];
        assert!(find_conflicts(&recs).is_empty(), "write+write granted");
        let ex = GrantSet::exclusive();
        let recs = vec![
            rec(0, false, vec![1, 0], vec![3, 0], ex),
            rec(1, false, vec![0, 1], vec![0, 3], ex),
        ];
        assert!(find_conflicts(&recs).is_empty(), "read+read never conflicts");
        let recs = vec![
            rec(0, false, vec![1, 0], vec![3, 0], ex),
            rec(1, true, vec![0, 1], vec![0, 3], ex),
        ];
        assert_eq!(find_conflicts(&recs), vec![(0, 1)], "read+write under exclusive grants");
    }

    #[test]
    fn same_rank_pairs_are_skipped() {
        let ex = GrantSet::exclusive();
        let recs = vec![
            rec(0, true, vec![1, 0], vec![3, 0], ex),
            rec(0, true, vec![4, 0], vec![6, 0], ex),
        ];
        assert!(find_conflicts(&recs).is_empty());
    }
}
