//! Microbenchmarks for the three wall-clock optimization layers: zero-copy
//! payload fan-out, the inline region-lookup cache, and the batched
//! message drain. Each bench isolates one layer's hot path.

use ace_core::{run_ace, CostModel, RegionId};
use ace_machine::{CostModel as MachineCost, Spmd};
use ace_protocols::{DynamicUpdate, NullProtocol};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::rc::Rc;

/// Layer 1 — zero-copy payloads: broadcast an 8 KiB payload to 8 nodes
/// repeatedly. The fan-out shares one `Arc` allocation per round; the
/// simulated bandwidth charge is per-recipient as before.
fn zero_copy(c: &mut Criterion) {
    let mut g = c.benchmark_group("layers");
    g.sample_size(10);
    g.bench_function("bcast_8kib_8procs_x50", |b| {
        b.iter(|| {
            run_ace(8, CostModel::free(), |rt| {
                let vals: Vec<u64> = (0..1024).collect();
                for _ in 0..50 {
                    if rt.rank() == 0 {
                        rt.bcast(0, &vals);
                    } else {
                        rt.bcast(0, &[]);
                    }
                }
            })
        })
    });
    // A protocol-level fan-out: one home pushes a region update to 7
    // sharers per round (DynUpdate's start-of-round snapshot fan-out).
    g.bench_function("update_fanout_1kib_8procs_x50", |b| {
        b.iter(|| {
            run_ace(8, CostModel::free(), |rt| {
                let s = rt.new_space(Rc::new(DynamicUpdate::new()));
                let rid = if rt.rank() == 0 {
                    RegionId(rt.bcast(0, &[rt.gmalloc::<u64>(s, 128).0])[0])
                } else {
                    RegionId(rt.bcast(0, &[])[0])
                };
                rt.map(rid);
                // Subscribe every node with one read round.
                rt.start_read(rid);
                rt.end_read(rid);
                rt.barrier(s);
                for i in 0..50u64 {
                    if rt.rank() == 0 {
                        rt.start_write(rid);
                        rt.with_mut::<u64, _>(rid, |d| d[0] = i);
                        rt.end_write(rid);
                    }
                    rt.barrier(s);
                }
            })
        })
    });
    g.finish();
}

/// Layer 2 — region-lookup fast path: a tight access loop over a small
/// working set. Every annotation funnels through `AceRt::lookup`, so this
/// measures the inline cache against hash-map probing.
fn region_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("layers");
    g.sample_size(10);
    g.bench_function("lookup_hot_loop_20k", |b| {
        b.iter(|| {
            run_ace(1, CostModel::free(), |rt| {
                let s = rt.new_space(Rc::new(NullProtocol));
                let regions: Vec<RegionId> = (0..4).map(|_| rt.gmalloc::<u64>(s, 8)).collect();
                for r in &regions {
                    rt.map(*r);
                }
                let mut acc = 0u64;
                for i in 0..20_000usize {
                    let r = regions[i % regions.len()];
                    rt.start_read(r);
                    acc = acc.wrapping_add(rt.with::<u64, _>(r, |d| d[0]));
                    rt.end_read(r);
                }
                acc
            })
        })
    });
    g.finish();
}

/// Layer 3 — batched drain: one node floods another with small messages;
/// the receiver's throughput is bounded by how fast it can pull them off
/// the channel.
fn batched_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("layers");
    g.sample_size(10);
    for &batch in &[1usize, 64] {
        g.bench_function(format!("drain_flood_30k_batch{batch}"), |b| {
            b.iter(|| {
                Spmd::builder()
                    .nprocs(2)
                    .cost(MachineCost::free())
                    .drain_batch(batch)
                    .run::<u64, _, _>(|node| {
                        const K: usize = 30_000;
                        if node.rank() == 0 {
                            for i in 0..K as u64 {
                                node.send(1, i);
                            }
                            0
                        } else {
                            let seen = RefCell::new(0usize);
                            node.poll_until(
                                "flood",
                                |_, _| *seen.borrow_mut() += 1,
                                || *seen.borrow() == K,
                            );
                            let n = *seen.borrow();
                            n
                        }
                    })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, zero_copy, region_lookup, batched_drain);
criterion_main!(benches);
