//! Wire messages of the Ace runtime.
//!
//! Bulk payloads travel as `Arc<[u64]>`: a fan-out of one payload to N
//! sharers is N refcount bumps, not N deep copies. The simulated network
//! still charges full payload bytes per message ([`MsgSize`] reports
//! `len * 8` exactly as it would for an owned buffer), so zero-copy is
//! purely a wall-clock optimization — simulated time, message counts, and
//! byte counts are unchanged.

use std::sync::Arc;

use ace_machine::MsgSize;

use crate::ids::{RegionId, SpaceId};

/// A protocol-level active message. The runtime routes it to the protocol
/// of the target region's space; the `op`/`arg` fields are interpreted by
/// the protocol alone, which is what lets new protocols define their own
/// wire protocols without touching the runtime (§2.4, extensibility).
#[derive(Debug)]
pub struct ProtoMsg {
    /// Target region.
    pub region: RegionId,
    /// Protocol-defined opcode.
    pub op: u16,
    /// The node on whose behalf this message was sent (for three-hop
    /// forwarding this differs from the envelope's `src`).
    pub from: u16,
    /// Protocol-defined scalar argument.
    pub arg: u64,
    /// Optional bulk payload (region data, deltas, ...), shared zero-copy
    /// with the sender; receivers that mutate must copy-on-write.
    pub data: Option<Arc<[u64]>>,
}

/// Everything that travels between Ace nodes.
#[derive(Debug)]
pub enum AceMsg {
    /// Protocol-defined message, dispatched through the region's space.
    Proto(ProtoMsg),
    /// First map of a region by a non-home node: ask home for metadata.
    MetaReq { region: RegionId },
    /// Home's answer: the region's space and size.
    MetaReply { region: RegionId, space: SpaceId, words: u64 },
    /// Barrier arrival at the coordinator (node 0). `tag` distinguishes
    /// per-space barriers from the global machine barrier.
    BarArrive { tag: u32, epoch: u64 },
    /// Barrier release broadcast from the coordinator.
    BarRelease { tag: u32, epoch: u64 },
    /// Default region-lock request, queued FIFO at the region's home.
    LockReq { region: RegionId },
    /// Lock granted to the requester.
    LockGrant { region: RegionId },
    /// Lock released by the holder.
    LockRelease { region: RegionId },
    /// Broadcast payload from a root node (used to distribute root region
    /// ids after setup, like exchanging `address_t`s in the paper's apps).
    Bcast { seq: u64, vals: Arc<[u64]> },
    /// One node's contribution to a gather at a root node.
    Gather { seq: u64, vals: Arc<[u64]> },
}

impl MsgSize for AceMsg {
    fn size_bytes(&self) -> usize {
        match self {
            AceMsg::Proto(p) => 12 + p.data.as_ref().map_or(0, |d| d.len() * 8),
            AceMsg::MetaReq { .. } => 8,
            AceMsg::MetaReply { .. } => 20,
            AceMsg::BarArrive { .. } | AceMsg::BarRelease { .. } => 12,
            AceMsg::LockReq { .. } | AceMsg::LockGrant { .. } | AceMsg::LockRelease { .. } => 8,
            AceMsg::Bcast { vals, .. } | AceMsg::Gather { vals, .. } => 8 + vals.len() * 8,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            AceMsg::Proto(_) => "proto",
            AceMsg::MetaReq { .. } => "meta_req",
            AceMsg::MetaReply { .. } => "meta_reply",
            AceMsg::BarArrive { .. } => "bar_arrive",
            AceMsg::BarRelease { .. } => "bar_release",
            AceMsg::LockReq { .. } => "lock_req",
            AceMsg::LockGrant { .. } => "lock_grant",
            AceMsg::LockRelease { .. } => "lock_release",
            AceMsg::Bcast { .. } => "bcast",
            AceMsg::Gather { .. } => "gather",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_size_includes_payload() {
        let m = AceMsg::Proto(ProtoMsg {
            region: RegionId::new(0, 1),
            op: 3,
            from: 0,
            arg: 0,
            data: Some(Arc::from(vec![0u64; 10])),
        });
        assert_eq!(m.size_bytes(), 12 + 80);
        let m2 = AceMsg::Proto(ProtoMsg {
            region: RegionId::new(0, 1),
            op: 3,
            from: 0,
            arg: 0,
            data: None,
        });
        assert_eq!(m2.size_bytes(), 12);
    }

    #[test]
    fn bcast_size_scales() {
        let m = AceMsg::Bcast { seq: 0, vals: Arc::from(vec![1, 2, 3]) };
        assert_eq!(m.size_bytes(), 8 + 24);
    }

    #[test]
    fn shared_payload_charges_full_bytes_per_message() {
        // Zero-copy must not change bandwidth accounting: two messages
        // sharing one Arc payload still charge the payload twice.
        let payload: Arc<[u64]> = Arc::from(vec![0u64; 16]);
        let mk = || {
            AceMsg::Proto(ProtoMsg {
                region: RegionId::new(0, 1),
                op: 1,
                from: 0,
                arg: 0,
                data: Some(payload.clone()),
            })
        };
        assert_eq!(mk().size_bytes() + mk().size_bytes(), 2 * (12 + 128));
    }
}
