//! The adaptive engine against the real workloads.
//!
//! Three claims, each load-bearing for trusting adaptive numbers:
//!
//! 1. **Pinned equivalence** — an engine pinned to one candidate is
//!    *bit-identical* to the static protocol it names: same verification
//!    value, same per-node data digests, same logical message count, same
//!    operation counters. Anything the engine adds (sampling, profile
//!    piggyback, decision logic) must cost exactly nothing when there is
//!    nothing to decide.
//! 2. **Free-running safety** — the engine switching on its own is
//!    violation-free under `CheckMode::Fail` on all five paper apps and
//!    never changes a verification value.
//! 3. **Storm tolerance** — forced round-robin switching every barrier
//!    at 64 ranks keeps data exact, on both execution backends, with the
//!    per-node switch epochs in lockstep.

use std::rc::Rc;

use ace_apps::{barnes, bsc, em3d, tsp, water, AceDsm, Variant};
use ace_core::{
    run_ace_with, CheckMode, CostModel, ExecBackend, OpCounters, Protocol, RegionId, Spmd,
    TransportKind,
};
use ace_protocols::{make, AdaptiveEngine, AdaptiveSpec, ProtoSpec};
use proptest::prelude::*;

/// Logical observables of one run: everything that must not depend on
/// whether a protocol was reached directly or through the engine.
#[derive(Debug, PartialEq)]
struct Obs {
    verification: u64,
    digests: Vec<u64>,
    msgs: u64,
    bytes: u64,
    counters: OpCounters,
}

fn observe<F>(nprocs: usize, f: F) -> Obs
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    let r = run_ace_with(
        Spmd::builder().nprocs(nprocs).cost(CostModel::cm5()).check(CheckMode::Fail),
        |rt| {
            let d = AceDsm::new(rt);
            let v = f(&d);
            rt.machine_barrier();
            (v, rt.data_digest(), rt.counters())
        },
    );
    assert_eq!(r.stats.total_violations(), 0, "checker counted violations");
    let mut counters = OpCounters::default();
    for (_, _, c) in &r.results {
        counters.merge(c);
    }
    // Wire grouping is timing-dependent; logical accounting is not.
    counters.wire_msgs = 0;
    Obs {
        verification: r.results[0].0.to_bits(),
        digests: r.results.iter().map(|(_, d, _)| *d).collect(),
        msgs: r.stats.total_msgs(),
        bytes: r.stats.total_bytes(),
        counters,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Pinned adaptive vs the static protocol it names, on EM3D, across
    /// random workloads: bit-identical in results, digests, and logical
    /// traffic. Both sides pay one identical `change_protocol` handover
    /// per space, so even the switch counters must match.
    #[test]
    fn pinned_adaptive_is_bit_identical_to_static_on_em3d(
        seed in 0u64..1000,
        steps in 1usize..4,
        pct_remote in 5u32..50,
        dynamic in any::<bool>(),
    ) {
        let p = em3d::Params {
            e_nodes: 40,
            h_nodes: 40,
            degree: 3,
            pct_remote,
            steps,
            seed,
            hoist_maps: false,
        };
        let (stat, bit) = if dynamic {
            (em3d::Em3dProto::Dynamic, AdaptiveSpec::DYN_UPDATE)
        } else {
            (em3d::Em3dProto::Static, AdaptiveSpec::STATIC_UPDATE)
        };
        let a = observe(4, |d| em3d::run_with(d, &p, em3d::Em3dProto::Pinned(bit)));
        let b = observe(4, |d| em3d::run_with(d, &p, stat));
        prop_assert_eq!(&a, &b);
    }
}

/// Free-running adaptive on every paper app: violation-free under
/// `CheckMode::Fail` and the same verification value as the SC variant.
#[test]
fn adaptive_runs_all_apps_violation_free_and_exact() {
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);

    let p = em3d::Params::small();
    let sc = observe(4, |d| em3d::run(d, &p, Variant::Sc));
    let ad = observe(4, |d| em3d::run(d, &p, Variant::Adaptive));
    assert_eq!(ad.verification, sc.verification, "em3d: adaptive changed results");

    let p = barnes::Params::small();
    let sc = observe(4, |d| barnes::run(d, &p, Variant::Sc));
    let ad = observe(4, |d| barnes::run(d, &p, Variant::Adaptive));
    assert_eq!(ad.verification, sc.verification, "barnes: adaptive changed results");

    let p = bsc::Params::small();
    let sc = observe(4, |d| bsc::run(d, &p, Variant::Sc));
    let ad = observe(4, |d| bsc::run(d, &p, Variant::Adaptive));
    assert_eq!(ad.verification, sc.verification, "bsc: adaptive changed results");

    // Water's force reduction is order-deterministic, so even adaptive
    // runs reproduce SC bit-for-bit; TSP's search is protocol-dependent
    // only in traffic, not in the optimal tour length.
    let p = water::Params::small();
    let sc = observe(3, |d| water::run(d, &p, Variant::Sc));
    let ad = observe(3, |d| water::run(d, &p, Variant::Adaptive));
    assert!(
        close(f64::from_bits(sc.verification), f64::from_bits(ad.verification)),
        "water: adaptive changed results"
    );

    let p = tsp::Params::small();
    let sc = observe(4, |d| tsp::run(d, &p, Variant::Sc));
    let ad = observe(4, |d| tsp::run(d, &p, Variant::Adaptive));
    assert_eq!(ad.verification, sc.verification, "tsp: adaptive changed results");
}

/// The engine actually discovers the switch on EM3D — started at SC, the
/// signals are strong enough to move off it — and every node commits the
/// same number of switches. (`Variant::Adaptive` itself starts at the
/// programmer's hint and may never need to switch, so the discovery claim
/// is tested through `AdaptiveFrom(SC)`.)
#[test]
fn adaptive_em3d_switches_and_stays_in_lockstep() {
    let p = em3d::Params { steps: 8, ..em3d::Params::small() };
    let r = run_ace_with(
        Spmd::builder().nprocs(4).cost(CostModel::cm5()).check(CheckMode::Fail),
        |rt| {
            let d = AceDsm::new(rt);
            let v = em3d::run_with(&d, &p, em3d::Em3dProto::AdaptiveFrom(AdaptiveSpec::SC));
            (v, rt.counters().switches, rt.node().switch_epoch())
        },
    );
    assert_eq!(r.stats.total_violations(), 0);
    let switches: Vec<u64> = r.results.iter().map(|t| t.1).collect();
    // 2 change_protocol calls install the engines; the engines must add
    // at least one flush-point switch on top.
    assert!(switches[0] > 2, "engine never switched: {switches:?}");
    assert!(switches.windows(2).all(|w| w[0] == w[1]), "switch counts diverge: {switches:?}");
    let epochs: Vec<u64> = r.results.iter().map(|t| t.2).collect();
    assert!(epochs.windows(2).all(|w| w[0] == w[1]), "switch epochs diverge: {epochs:?}");
}

/// Switch-storm stress: a storming engine rotating through four protocols
/// every profiled barrier, with a producer/consumer workload riding
/// through every handover. Run at 64 ranks under both execution backends
/// and at 8 ranks over real loopback sockets; data must stay exact and
/// the epochs in lockstep.
fn switch_storm(builder: ace_core::MachineBuilder) {
    let r = run_ace_with(builder.cost(CostModel::cm5()).check(CheckMode::Fail), |rt| {
        let n = rt.nprocs();
        let spec = AdaptiveSpec::new(
            AdaptiveSpec::SC
                | AdaptiveSpec::DYN_UPDATE
                | AdaptiveSpec::STATIC_UPDATE
                | AdaptiveSpec::PIPELINED,
        )
        .with_dwell(1)
        .storming();
        let engine: Rc<dyn Protocol> = Rc::new(AdaptiveEngine::new(spec));
        let s = rt.new_space(engine);
        // One region per rank, everyone maps every region.
        let mine = [rt.gmalloc_words(s, 2).0];
        let ids: Vec<u64> = (0..rt.nprocs())
            .map(|r| rt.bcast(r, if r == rt.rank() { &mine } else { &[] })[0])
            .collect();
        let mine = mine[0];
        for &id in &ids {
            rt.map(RegionId(id));
        }
        for step in 0..6u64 {
            rt.start_write(RegionId(mine));
            rt.with_mut::<u64, _>(RegionId(mine), |d| d[0] = step * n as u64 + rt.rank() as u64);
            rt.end_write(RegionId(mine));
            rt.barrier(s);
            // Read the left neighbour's value through whatever
            // protocol the storm installed this interval.
            let left_rank = (rt.rank() + n - 1) % n;
            let left = ids[left_rank];
            rt.start_read(RegionId(left));
            let v = rt.with::<u64, _>(RegionId(left), |d| d[0]);
            rt.end_read(RegionId(left));
            assert_eq!(v, step * n as u64 + left_rank as u64, "stale neighbour value");
            rt.barrier(s);
        }
        (rt.counters().switches, rt.node().switch_epoch(), rt.data_digest())
    });
    assert_eq!(r.stats.total_violations(), 0);
    let switches: Vec<u64> = r.results.iter().map(|t| t.0).collect();
    assert!(switches[0] >= 4, "storm produced too few switches: {}", switches[0]);
    assert!(switches.windows(2).all(|w| w[0] == w[1]), "switch counts diverge");
    let epochs: Vec<u64> = r.results.iter().map(|t| t.1).collect();
    assert!(epochs.windows(2).all(|w| w[0] == w[1]), "switch epochs diverge");
}

#[test]
fn switch_storm_64_ranks_threads() {
    switch_storm(Spmd::builder().nprocs(64).backend(ExecBackend::Threads));
}

#[test]
fn switch_storm_64_ranks_multiplexed() {
    switch_storm(Spmd::builder().nprocs(64).backend(ExecBackend::Multiplexed));
}

/// Every handover crosses the codec: the flush pushes, the barrier
/// piggybacking the profile words, and the epoch-stamped envelopes after
/// the switch all travel through real loopback sockets.
#[test]
fn switch_storm_8_ranks_socket() {
    switch_storm(Spmd::builder().nprocs(8).transport(TransportKind::socket_loopback()));
}

/// The registry path: `ProtoSpec::Adaptive` via `make()` behaves exactly
/// like constructing the engine directly (the route the apps use).
#[test]
fn registry_adaptive_spec_runs_end_to_end() {
    let r = run_ace_with(Spmd::builder().nprocs(2).cost(CostModel::free()), |rt| {
        let spec = AdaptiveSpec::pinned(AdaptiveSpec::SC);
        let s = rt.new_space(make(ProtoSpec::Adaptive(spec)));
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc_words(s, 1).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        if rt.rank() == 0 {
            rt.start_write(rid);
            rt.with_mut::<u64, _>(rid, |d| d[0] = 7);
            rt.end_write(rid);
        }
        rt.barrier(s);
        rt.start_read(rid);
        let v = rt.with::<u64, _>(rid, |d| d[0]);
        rt.end_read(rid);
        v
    });
    assert_eq!(r.results, vec![7, 7]);
}
