//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal property-testing core with the same spelling as the real crate:
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, [`collection::vec`], [`option::of`], `any::<T>()`,
//! regex-flavoured `&str` strategies (approximated), and the `proptest!`,
//! `prop_assert*!`, and `prop_oneof!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking.** A failing case reports its deterministic seed
//!   (test name + case index) instead of a minimized input.
//! * **Deterministic by construction.** Case `i` of test `t` always sees
//!   the same inputs, so failures reproduce without a persistence file.

// Boxed-closure strategy types mirror the upstream crate's API shape.
#![allow(clippy::type_complexity)]

pub mod test_runner;

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod option;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(__test_name, __case as u64);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __out {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        __test_name, __case, __cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Soft assertion: fails the current case (with its deterministic seed)
/// instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    l, r, format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut u = $crate::strategy::Union::empty();
        $( u.push($strat); )+
        u
    }};
}
