//! A simulated processor: rank, message endpoints, virtual clock, counters.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender, TryRecvError};

use crate::cost::CostModel;
use crate::envelope::{Envelope, MsgSize, HEADER_BYTES};
use crate::stats::NodeStats;

/// How long a blocked node waits before concluding the run is wedged.
/// Protocol bugs in a message-passing system manifest as silent hangs; the
/// watchdog converts them into a panic with the caller-provided diagnostic.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// One simulated processor.
///
/// A `Node` is owned by exactly one OS thread and is deliberately `!Sync`:
/// everything inside uses `Cell`/`RefCell`. The only cross-thread objects
/// are the channel endpoints.
pub struct Node<M> {
    rank: usize,
    nprocs: usize,
    rx: Receiver<Envelope<M>>,
    txs: Arc<Vec<Sender<Envelope<M>>>>,
    cost: Arc<CostModel>,
    clock: Cell<u64>,
    stats: RefCell<NodeStats>,
    watchdog: Cell<Duration>,
}

impl<M: MsgSize + Send> Node<M> {
    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        rx: Receiver<Envelope<M>>,
        txs: Arc<Vec<Sender<Envelope<M>>>>,
        cost: Arc<CostModel>,
    ) -> Self {
        Node {
            rank,
            nprocs,
            rx,
            txs,
            cost,
            clock: Cell::new(0),
            stats: RefCell::new(NodeStats::default()),
            watchdog: Cell::new(DEFAULT_WATCHDOG),
        }
    }

    /// This node's rank in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes in the machine.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Current virtual clock in nanoseconds.
    pub fn now(&self) -> u64 {
        self.clock.get()
    }

    /// Advance the virtual clock by a computation charge.
    pub fn charge(&self, ns: u64) {
        self.clock.set(self.clock.get() + ns);
    }

    /// Override the hang watchdog (tests use short values).
    pub fn set_watchdog(&self, d: Duration) {
        self.watchdog.set(d);
    }

    /// Inject a message to `dst`. Charges send overhead and records stats.
    /// Sending to self is allowed (the message is delivered via the normal
    /// polling path, like a loopback active message).
    pub fn send(&self, dst: usize, msg: M) {
        debug_assert!(dst < self.nprocs, "send to nonexistent node {dst}");
        self.charge(self.cost.send_overhead);
        let bytes = msg.size_bytes() + HEADER_BYTES;
        {
            let mut s = self.stats.borrow_mut();
            s.msgs_sent += 1;
            s.bytes_sent += bytes as u64;
        }
        let env = Envelope { src: self.rank, send_time: self.clock.get(), bytes, msg };
        // A send can only fail if the destination thread already exited,
        // which means the SPMD program violated its quiescence contract;
        // losing the message is the faithful outcome (the wire goes dead).
        let _ = self.txs[dst].send(env);
    }

    /// Non-blocking receive. On delivery the local clock advances to cover
    /// the message's flight time and the receive overhead is charged.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.rx.try_recv() {
            Ok(env) => {
                self.absorb(&env);
                Some(env)
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive with a short timeout, for poll loops that should
    /// yield the CPU while idle. Returns `None` on timeout.
    pub fn recv_timeout(&self, d: Duration) -> Option<Envelope<M>> {
        match self.rx.recv_timeout(d) {
            Ok(env) => {
                self.absorb(&env);
                Some(env)
            }
            Err(_) => None,
        }
    }

    fn absorb(&self, env: &Envelope<M>) {
        let arrival = env.send_time + self.cost.wire_time(env.bytes);
        let now = self.clock.get().max(arrival) + self.cost.recv_overhead;
        self.clock.set(now);
        self.stats.borrow_mut().msgs_recv += 1;
    }

    /// Spin-with-backoff until `pred` returns true, invoking `handle` on
    /// messages that arrive in the meantime. This is the substrate's
    /// equivalent of an Active Messages poll loop: a blocked processor keeps
    /// servicing incoming protocol requests. Panics with `what` if the
    /// watchdog expires (a wedged protocol).
    ///
    /// `pred` is re-checked after **every** message: as soon as the wait is
    /// satisfied the loop returns, leaving any further queued messages for
    /// the node's next poll. This matters for virtual-time fidelity — a
    /// thread that races ahead in wall-clock time can enqueue messages
    /// whose virtual send time is far in this node's future, and absorbing
    /// them while blocked on an earlier event would serialize logically
    /// parallel phases (the node's own next compute phase would start
    /// *after* the peer's, inflating simulated time from max-of-nodes
    /// toward sum-of-nodes).
    pub fn poll_until(
        &self,
        what: &str,
        mut handle: impl FnMut(&Self, Envelope<M>),
        mut pred: impl FnMut() -> bool,
    ) {
        if pred() {
            return;
        }
        let start = Instant::now();
        loop {
            match self.try_recv() {
                Some(env) => {
                    handle(self, env);
                    if pred() {
                        return;
                    }
                }
                None => {
                    if pred() {
                        return;
                    }
                    match self.recv_timeout(Duration::from_micros(100)) {
                        Some(env) => {
                            handle(self, env);
                            if pred() {
                                return;
                            }
                        }
                        None => {
                            if start.elapsed() > self.watchdog.get() {
                                panic!(
                                    "node {} wedged waiting for: {what} (clock {} ns)",
                                    self.rank,
                                    self.now()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Snapshot of this node's statistics (final clock filled in).
    pub fn stats(&self) -> NodeStats {
        let mut s = self.stats.borrow().clone();
        s.final_clock = self.clock.get();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn clock_advances_on_send_and_recv() {
        let cost = CostModel::cm5();
        let r = run_spmd::<u64, _, _>(2, cost.clone(), |node| {
            if node.rank() == 0 {
                node.send(1, 42u64);
                node.now()
            } else {
                let got = Cell::new(0u64);
                node.poll_until("payload", |_, env| got.set(env.msg), || got.get() != 0);
                assert_eq!(got.get(), 42);
                node.now()
            }
        });
        // Sender paid send overhead; receiver's clock covers flight time.
        assert_eq!(r.results[0], cost.send_overhead);
        assert!(r.results[1] >= cost.send_overhead + cost.wire_time(8 + HEADER_BYTES));
    }

    #[test]
    fn self_send_is_delivered() {
        let r = run_spmd::<u64, _, _>(1, CostModel::free(), |node| {
            node.send(0, 7);
            let got = Cell::new(0u64);
            node.poll_until("self message", |_, env| got.set(env.msg), || got.get() != 0);
            got.get()
        });
        assert_eq!(r.results[0], 7);
    }

    #[test]
    #[should_panic(expected = "wedged waiting for")]
    fn watchdog_fires() {
        run_spmd::<u64, _, _>(1, CostModel::free(), |node| {
            node.set_watchdog(Duration::from_millis(50));
            node.poll_until("never", |_, _| {}, || false);
        });
    }

    #[test]
    fn stats_count_messages() {
        let r = run_spmd::<u64, _, _>(2, CostModel::free(), |node| {
            if node.rank() == 0 {
                for i in 0..5 {
                    node.send(1, i + 1);
                }
            } else {
                let seen = Cell::new(0u64);
                node.poll_until("5 messages", |_, _| seen.set(seen.get() + 1), || seen.get() == 5);
            }
        });
        assert_eq!(r.stats.nodes[0].msgs_sent, 5);
        assert_eq!(r.stats.nodes[1].msgs_recv, 5);
        assert_eq!(r.stats.nodes[0].bytes_sent, 5 * (8 + HEADER_BYTES as u64));
    }

    #[test]
    fn fifo_between_pair() {
        let r = run_spmd::<u64, _, _>(2, CostModel::free(), |node| {
            if node.rank() == 0 {
                for i in 0..100 {
                    node.send(1, i);
                }
                Vec::new()
            } else {
                let seen = RefCell::new(Vec::new());
                node.poll_until(
                    "100 msgs",
                    |_, env| seen.borrow_mut().push(env.msg),
                    || seen.borrow().len() == 100,
                );
                seen.into_inner()
            }
        });
        assert_eq!(r.results[1], (0..100).collect::<Vec<_>>());
    }
}
