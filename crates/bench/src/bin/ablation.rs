//! Ablations for the design decisions DESIGN.md calls out:
//!   1. network-latency sweep (sensitivity of the Fig 7b speedups),
//!   2. region-granularity sweep (the bulk-transfer story of §2.3),
//!   3. CRL URC-capacity sweep (mapping-design sensitivity, §5.1).

use ace_apps::runner::{launch_ace, RunOutcome};
use ace_apps::{em3d, Variant};
use ace_core::{CostModel, RegionId, Spmd};
use ace_crl::CrlRt;

fn em3d_speedup(cost: CostModel) -> f64 {
    let p = em3d::Params {
        e_nodes: 200,
        h_nodes: 200,
        degree: 5,
        pct_remote: 20,
        steps: 10,
        seed: 7,
        hoist_maps: false,
    };
    let sc: RunOutcome = launch_ace(8, cost.clone(), |d| em3d::run(d, &p, Variant::Sc));
    let cu: RunOutcome = launch_ace(8, cost, |d| em3d::run(d, &p, Variant::Custom));
    sc.sim_ms() / cu.sim_ms()
}

fn main() {
    println!("== Ablation 1: EM3D custom-protocol speedup vs network latency scale ==");
    for scale in [1u64, 2, 4, 8] {
        let s = em3d_speedup(CostModel::cm5_net_scaled(scale));
        println!("  net x{scale:<2}  static-update speedup = {s:.2}");
    }

    println!("\n== Ablation 2: bulk transfer — total time vs region granularity ==");
    // Move a fixed 64 KiB of data as R regions of varying size.
    for nregions in [1usize, 8, 64, 512] {
        let words = 8192 / nregions;
        let r = ace_core::run_ace(2, CostModel::cm5(), move |rt| {
            let s = rt.new_space(std::rc::Rc::new(ace_protocols::SeqInvalidate::new()));
            let ids: Vec<u64> = if rt.rank() == 0 {
                let ids: Vec<u64> = (0..nregions).map(|_| rt.gmalloc_words(s, words).0).collect();
                rt.bcast(0, &ids).to_vec()
            } else {
                rt.bcast(0, &[]).to_vec()
            };
            rt.machine_barrier();
            if rt.rank() == 1 {
                for id in ids {
                    let rid = RegionId(id);
                    rt.map(rid);
                    rt.start_read(rid);
                    rt.end_read(rid);
                    rt.unmap(rid);
                }
            }
            rt.machine_barrier();
        });
        println!("  {nregions:>4} regions x {words:>5} words: {:>8.2} ms", r.sim_ns as f64 / 1e6);
    }

    println!("\n== Ablation 3: CRL unmapped-region-cache capacity (4096-region sweep) ==");
    for cap in [64usize, 256, 1024, 4096] {
        let r = Spmd::builder().nprocs(2).cost(CostModel::cm5()).run(move |node| {
            let crl = CrlRt::with_urc_capacity(node, cap);
            let ids: Vec<u64> = if crl.rank() == 0 {
                let ids: Vec<u64> = (0..2048).map(|_| crl.create_words(4).0).collect();
                crl.bcast(0, &ids).to_vec()
            } else {
                crl.bcast(0, &[]).to_vec()
            };
            crl.barrier();
            if crl.rank() == 1 {
                for _ in 0..2 {
                    for &id in &ids {
                        let rid = RegionId(id);
                        crl.map(rid);
                        crl.start_read(rid);
                        crl.end_read(rid);
                        crl.unmap(rid);
                    }
                }
            }
            crl.barrier();
            let c = crl.counters();
            crl.inner().shutdown();
            (c.map_misses, c.read_misses)
        });
        let (mm, rm) = r.results[1];
        println!(
            "  URC {cap:>5}: {:>8.2} ms  (map re-misses {mm}, read misses {rm})",
            r.sim_ns as f64 / 1e6
        );
    }
}
