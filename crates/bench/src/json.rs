//! Machine-readable benchmark output.
//!
//! Each harness binary accepts `--json <path>` and appends one row per
//! (app, configuration) pair so successive PRs can track the perf
//! trajectory as `BENCH_*.json` files. The format is a plain JSON array
//! of flat objects — simulated ns, wall ns, logical message count, wire-envelope count,
//! payload bytes, protocol-switch count — written by hand because the
//! workspace builds offline (no serde).

use std::fmt::Write as _;
use std::path::Path;

use crate::fig7::VariantStats;

/// One emitted row: a benchmark under one configuration.
#[derive(Debug, Clone)]
pub struct JsonRow {
    /// Which table produced the row ("fig7a", "fig7b", "table4").
    pub table: &'static str,
    /// Benchmark name.
    pub app: String,
    /// Configuration within the table (e.g. "sc", "custom", "crl", an
    /// optimization level, or "hand").
    pub config: &'static str,
    /// Simulated processor count for the run.
    pub procs: usize,
    /// Accounting for the run.
    pub stats: VariantStats,
}

impl JsonRow {
    /// Row from a [`VariantStats`].
    pub fn new(
        table: &'static str,
        app: &str,
        config: &'static str,
        procs: usize,
        stats: VariantStats,
    ) -> Self {
        JsonRow { table, app: app.to_string(), config, procs, stats }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render rows as a JSON array (one object per line, for easy diffing).
pub fn render(rows: &[JsonRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"table\":\"{}\",\"app\":\"{}\",\"config\":\"{}\",\"procs\":{},\"sim_ns\":{},\"wall_ns\":{},\"msgs\":{},\"wire_msgs\":{},\"bytes\":{},\"switches\":{}}}",
            escape(r.table),
            escape(&r.app),
            escape(r.config),
            r.procs,
            r.stats.sim_ns,
            r.stats.wall_ns,
            r.stats.msgs,
            r.stats.wire_msgs,
            r.stats.bytes,
            r.stats.switches,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Write rows to `path`, replacing any existing file.
pub fn write(path: &Path, rows: &[JsonRow]) -> std::io::Result<()> {
    std::fs::write(path, render(rows))
}

/// Resolve the `--json [PATH]` flag from a harness's argv. An explicit
/// path wins; bare `--json` (next arg missing or another flag) falls back
/// to `default_name` at the repo root, where CI and EXPERIMENTS.md expect
/// the tracked `BENCH_*.json` files.
pub fn out_path(args: &[String], default_name: &str) -> Option<std::path::PathBuf> {
    let i = args.iter().position(|a| a == "--json")?;
    match args.get(i + 1) {
        Some(p) if !p.starts_with("--") => Some(std::path::PathBuf::from(p)),
        _ => Some(Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(default_name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_rows() {
        let rows = vec![
            JsonRow::new(
                "fig7b",
                "em3d",
                "sc",
                8,
                VariantStats {
                    sim_ns: 10,
                    wall_ns: 20,
                    msgs: 3,
                    wire_msgs: 2,
                    bytes: 4,
                    switches: 1,
                },
            ),
            JsonRow::new("fig7b", "em3d", "custom", 8, VariantStats::default()),
        ];
        let s = render(&rows);
        assert!(s.starts_with("[\n"));
        assert!(s.contains("\"procs\":8"));
        assert!(s.contains("\"sim_ns\":10"));
        assert!(s.contains("\"msgs\":3,\"wire_msgs\":2"));
        assert!(s.contains("\"switches\":1"));
        assert!(s.contains("\"config\":\"custom\""));
        assert_eq!(s.matches('{').count(), 2);
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let row = JsonRow::new("t", "we\"ird\\na\nme", "sc", 4, VariantStats::default());
        let s = render(&[row]);
        assert!(s.contains("we\\\"ird\\\\na\\u000ame"));
    }
}
