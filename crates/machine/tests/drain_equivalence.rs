//! Batched message drain must be observationally identical to unbatched
//! reception: same per-pair FIFO order, same per-message virtual-clock
//! arrival times, same statistics. The drain is a wall-clock optimization
//! only — it pulls messages off the channel in bursts but absorbs each one
//! at pop time, exactly where the unbatched path absorbed it.

use std::cell::{Cell, RefCell};

use ace_machine::{CostModel, Spmd};
use proptest::collection::vec;
use proptest::prelude::*;

/// One sender (rank 0) emits `sends` with compute charges between them;
/// the receiver (rank 1) charges from `recv_charges` after each receipt.
/// With a single sender the receiver's observation — each message and the
/// virtual clock right after it is absorbed — is fully deterministic, so
/// two runs that differ only in drain batch size must agree exactly.
fn run_scenario(batch: usize, sends: &[(u64, u64)], recv_charges: &[u64]) -> Vec<(u64, u64)> {
    let r = Spmd::builder().nprocs(2).cost(CostModel::cm5()).drain_batch(batch).run::<u64, _, _>(
        |node| {
            if node.rank() == 0 {
                for &(m, charge) in sends {
                    node.charge(charge);
                    node.send(1, m);
                }
                Vec::new()
            } else {
                let seen = RefCell::new(Vec::new());
                let i = Cell::new(0usize);
                node.poll_until(
                    "scenario messages",
                    |n, env| {
                        n.charge(recv_charges[i.get() % recv_charges.len()]);
                        i.set(i.get() + 1);
                        seen.borrow_mut().push((env.msg, n.now()));
                    },
                    || seen.borrow().len() == sends.len(),
                );
                seen.into_inner()
            }
        },
    );
    let mut out = r.results;
    out.swap_remove(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_drain_matches_unbatched_exactly(
        sends in vec((1u64..1_000_000, 0u64..5_000), 1..40),
        recv_charges in vec(0u64..3_000, 1..8),
        batch in 2u64..100,
    ) {
        let unbatched = run_scenario(1, &sends, &recv_charges);
        let batched = run_scenario(batch as usize, &sends, &recv_charges);
        prop_assert_eq!(unbatched, batched);
    }
}

#[test]
fn per_pair_fifo_holds_under_batching() {
    // Several senders racing at the same receiver: cross-pair interleaving
    // is free to vary, but each pair's stream must arrive in send order
    // even when the drain pulls many messages per burst.
    const N: usize = 4;
    const PER: u64 = 300;
    let r = Spmd::builder().nprocs(N).cost(CostModel::free()).run::<u64, _, _>(|node| {
        if node.rank() == 0 {
            let seqs = RefCell::new(vec![Vec::new(); N]);
            node.poll_until(
                "all streams",
                |_, env| seqs.borrow_mut()[env.src].push(env.msg),
                || seqs.borrow().iter().skip(1).all(|s| s.len() == PER as usize),
            );
            seqs.into_inner()
        } else {
            for i in 0..PER {
                node.send(0, i);
            }
            Vec::new()
        }
    });
    for (src, seq) in r.results[0].iter().enumerate().skip(1) {
        assert_eq!(seq, &(0..PER).collect::<Vec<_>>(), "stream from node {src} reordered");
    }
}
