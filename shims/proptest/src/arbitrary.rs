//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Full bit-pattern domain: subnormals, infinities, and NaNs
        // included — round-trip tests compare raw bits.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
