//! The §3.3 experiment: EM3D under three protocols.
//!
//! Reproduces the paper's narrative — the application is developed under
//! the default sequentially-consistent protocol, then sped up ~3.5× by
//! plugging in a dynamic update library and ~5× by a static update
//! library, changing only the protocol associated with the two spaces.
//!
//! Run with: `cargo run --release --example em3d_protocols`

use ace::apps::em3d::{self, Em3dProto};
use ace::apps::runner::launch_ace;
use ace::core::CostModel;

fn main() {
    let nprocs = 8;
    let p = em3d::Params {
        e_nodes: 400,
        h_nodes: 400,
        degree: 6,
        pct_remote: 20,
        steps: 20,
        seed: 7,
        hoist_maps: false,
    };

    println!(
        "EM3D: {} E + {} H vertices, degree {}, {}% remote, {} steps, {} procs\n",
        p.e_nodes, p.h_nodes, p.degree, p.pct_remote, p.steps, nprocs
    );

    let mut base_ms = 0.0;
    for (name, proto) in [
        ("sequentially consistent (default)", Em3dProto::Sc),
        ("dynamic update library", Em3dProto::Dynamic),
        ("static update library", Em3dProto::Static),
    ] {
        let pp = p.clone();
        let out = launch_ace(nprocs, CostModel::cm5(), move |d| em3d::run_with(d, &pp, proto));
        if base_ms == 0.0 {
            base_ms = out.sim_ms();
        }
        println!(
            "{name:<36} {:>9.2} ms   speedup {:>4.2}x   msgs {:>7}   checksum {:.6}",
            out.sim_ms(),
            base_ms / out.sim_ms(),
            out.msgs,
            out.verification
        );
    }
    println!("\n(the paper reports ~3.5x for dynamic update and ~5x for static update)");
}
