//! Per-node bookkeeping for one shared region.
//!
//! Region data lives in an `Arc<[u64]>` so protocol messages can carry the
//! payload zero-copy: snapshotting for the wire ([`RegionEntry::share_data`])
//! is a refcount bump, and installing a received full-region payload
//! ([`RegionEntry::install_shared`]) is a pointer swap. The invariant that
//! makes this safe is that *every* local mutation goes through
//! [`RegionEntry::with_data_mut`], which copies-on-write when the buffer is
//! shared — an outstanding wire snapshot (or another node's installed
//! alias) is therefore never observably mutated.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::ids::{RegionId, SpaceId};
use crate::protocol::Actions;

/// Get a mutable view of an `Arc<[u64]>` buffer, copying first if the
/// buffer is shared. (`Arc::make_mut` requires `Sized`, hence manual COW.)
fn cow_slice(slot: &mut Arc<[u64]>) -> &mut [u64] {
    if Arc::strong_count(slot) != 1 || Arc::weak_count(slot) != 0 {
        *slot = Arc::from(&slot[..]);
    }
    Arc::get_mut(slot).expect("uniquely owned after copy-on-write")
}

/// A home-side sharer set scaling past 64 ranks without giving up the
/// one-word fast path real directories use.
///
/// Ranks 0..63 live in a single `Cell<u64>` bitmask (the overwhelmingly
/// common case, and the representation every protocol used when the
/// machine was capped at 64 nodes); ranks 64 and up spill lazily into a
/// word vector that is only allocated the first time a wide rank shows up.
/// All operations stay `&self` (`Cell`/`RefCell` inside) to match the
/// node-local single-threaded discipline of [`RegionEntry`].
#[derive(Default)]
pub struct Sharers {
    /// Ranks 0..=63, one bit each.
    small: Cell<u64>,
    /// Ranks 64.., bit `r - 64` in word `(r - 64) / 64`. Empty until a
    /// wide rank is added.
    spill: RefCell<Vec<u64>>,
}

impl Sharers {
    /// An empty sharer set.
    pub fn new() -> Self {
        Sharers::default()
    }

    /// Add `rank` to the set.
    pub fn add(&self, rank: usize) {
        if rank < 64 {
            self.small.set(self.small.get() | (1 << rank));
        } else {
            let (w, b) = ((rank - 64) / 64, (rank - 64) % 64);
            let mut spill = self.spill.borrow_mut();
            if spill.len() <= w {
                spill.resize(w + 1, 0);
            }
            spill[w] |= 1 << b;
        }
    }

    /// Remove `rank` from the set.
    pub fn remove(&self, rank: usize) {
        if rank < 64 {
            self.small.set(self.small.get() & !(1 << rank));
        } else {
            let (w, b) = ((rank - 64) / 64, (rank - 64) % 64);
            let mut spill = self.spill.borrow_mut();
            if let Some(word) = spill.get_mut(w) {
                *word &= !(1 << b);
            }
        }
    }

    /// Whether `rank` is in the set.
    pub fn contains(&self, rank: usize) -> bool {
        if rank < 64 {
            self.small.get() & (1 << rank) != 0
        } else {
            let (w, b) = ((rank - 64) / 64, (rank - 64) % 64);
            self.spill.borrow().get(w).is_some_and(|word| word & (1 << b) != 0)
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.small.get() == 0 && self.spill.borrow().iter().all(|&w| w == 0)
    }

    /// Drop every member.
    pub fn clear(&self) {
        self.small.set(0);
        self.spill.borrow_mut().clear();
    }

    /// Backwards-compatible raw accessors for the ≤64-rank fast path:
    /// the low word of the set (exactly the old `Cell<u64>` mask when no
    /// rank ≥ 64 was ever added).
    pub fn get(&self) -> u64 {
        self.small.get()
    }

    /// Replace the low word; only meaningful on machines ≤ 64 ranks
    /// (asserts nothing has spilled).
    pub fn set(&self, mask: u64) {
        debug_assert!(
            self.spill.borrow().iter().all(|&w| w == 0),
            "raw mask write would drop spilled sharers"
        );
        self.small.set(mask);
    }

    /// A content fingerprint for snapshots/tests: equals the raw bitmask
    /// for ≤64-rank sets, and folds the spill words in (position-salted)
    /// above that.
    pub fn fingerprint(&self) -> u64 {
        let mut f = self.small.get();
        for (i, &w) in self.spill.borrow().iter().enumerate() {
            f ^= w.rotate_left((i as u32 + 1) * 7);
        }
        f
    }

    /// Iterate member ranks in ascending order. The iterator walks a
    /// snapshot taken at the call, so callers may mutate the set (drop
    /// sharers, send messages) while iterating.
    pub fn iter(&self) -> SharerRanks {
        SharerRanks {
            cur: self.small.get(),
            base: 0,
            words: {
                let spill = self.spill.borrow();
                if spill.iter().all(|&w| w == 0) {
                    Vec::new()
                } else {
                    spill.clone()
                }
            },
            next_word: 0,
        }
    }
}

/// Snapshot iterator over [`Sharers`] members, ascending.
pub struct SharerRanks {
    cur: u64,
    base: usize,
    words: Vec<u64>,
    next_word: usize,
}

impl Iterator for SharerRanks {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(self.base + bit);
            }
            if self.next_word >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.next_word];
            self.base = 64 * (self.next_word + 1);
            self.next_word += 1;
        }
    }
}

/// Node-local state for one region: the cached data, access bookkeeping,
/// and a bag of protocol-owned fields.
///
/// Rather than a `Box<dyn Any>` per region, protocols share a fixed set of
/// fields that cover what real directory protocols keep per line: a state
/// code, a sharer bitmask, an owner, an outstanding-ack count, a scalar, a
/// blocked-request queue and an optional twin buffer. Each protocol
/// documents its own interpretation. This keeps the per-region footprint
/// flat and the hot path allocation-free.
pub struct RegionEntry {
    /// The region's global id (home rank is `id.home()`).
    pub id: RegionId,
    /// The space this region was allocated from. Fixed for the region's
    /// lifetime; the space's *protocol* may change.
    pub space: SpaceId,
    /// Size of the region in 8-byte words.
    pub words: usize,
    /// The local copy of the region's data. At the home node this is the
    /// master copy; elsewhere it is a cache whose validity the protocol
    /// tracks in `st`. Shared zero-copy with in-flight messages; mutate
    /// only through [`RegionEntry::with_data_mut`].
    pub data: RefCell<Arc<[u64]>>,
    /// Map count (maps nest, per CRL semantics).
    pub mapped: Cell<u32>,
    /// Number of open read sections.
    pub read_active: Cell<u32>,
    /// Number of open write sections.
    pub write_active: Cell<u32>,

    // ---- protocol-owned fields ----
    /// Fast mask: the set of annotations that are state-preserving no-ops
    /// in the region's *current* state, maintained by the protocol at its
    /// state transitions (the analogue of CRL's in-cache fast path). The
    /// runtime checks this before dispatching a hook; a set bit promises
    /// the hook would neither send messages nor mutate any entry or space
    /// state, so the runtime may skip it entirely. Empty = always slow.
    pub fast: Cell<Actions>,
    /// Protocol-defined state code.
    pub st: Cell<u32>,
    /// Home-side sharer set (rank *i* present = node *i* holds a copy).
    /// One-word bitmask up to 64 ranks, lazy spill vector beyond.
    pub sharers: Sharers,
    /// Home-side exclusive owner rank, or -1.
    pub owner: Cell<i32>,
    /// Outstanding acknowledgements (invalidations, flushes, deltas...).
    pub pending: Cell<u32>,
    /// Protocol-defined scalar (epoch numbers, fetched tickets, ...).
    pub aux: Cell<u64>,
    /// Requests that arrived while the region was in a transient state,
    /// replayed when the region quiesces: `(from, op, arg)`.
    pub blocked: RefCell<VecDeque<(u16, u16, u64)>>,
    /// Twin buffer for diffing protocols (pipelined delta writes). Taken
    /// as a zero-copy snapshot of `data`; copy-on-write keeps it frozen.
    pub twin: RefCell<Option<Arc<[u64]>>>,

    // ---- default region lock (home side + requester side) ----
    /// Home side: lock currently held by someone.
    pub lock_held: Cell<bool>,
    /// Home side: FIFO of waiting rank(s).
    pub lock_queue: RefCell<VecDeque<u16>>,
    /// Requester side: our pending lock request has been granted.
    pub lock_granted: Cell<bool>,
}

impl RegionEntry {
    /// Create the entry with zeroed data (home allocation or fresh cache).
    pub fn new(id: RegionId, space: SpaceId, words: usize) -> Self {
        RegionEntry {
            id,
            space,
            words,
            data: RefCell::new(Arc::from(vec![0u64; words])),
            mapped: Cell::new(0),
            read_active: Cell::new(0),
            write_active: Cell::new(0),
            fast: Cell::new(Actions::empty()),
            st: Cell::new(0),
            sharers: Sharers::new(),
            owner: Cell::new(-1),
            pending: Cell::new(0),
            aux: Cell::new(0),
            blocked: RefCell::new(VecDeque::new()),
            twin: RefCell::new(None),
            lock_held: Cell::new(false),
            lock_queue: RefCell::new(VecDeque::new()),
            lock_granted: Cell::new(false),
        }
    }

    /// Whether this node is the region's home.
    pub fn is_home_of(&self, rank: usize) -> bool {
        self.id.home() == rank
    }

    /// Whether any access section (read or write) is currently open.
    pub fn busy(&self) -> bool {
        self.read_active.get() > 0 || self.write_active.get() > 0
    }

    /// Snapshot the current data for the wire: a refcount bump, not a
    /// copy. The snapshot stays frozen because all local mutation goes
    /// through [`RegionEntry::with_data_mut`] (copy-on-write).
    pub fn share_data(&self) -> Arc<[u64]> {
        self.data.borrow().clone()
    }

    /// Snapshot the current data (bulk transfer payload). Zero-copy alias
    /// of [`RegionEntry::share_data`], kept under the historical name.
    pub fn clone_data(&self) -> Arc<[u64]> {
        self.share_data()
    }

    /// Mutate the region data in place, copying first if the buffer is
    /// aliased by an in-flight message, a twin, or another entry.
    pub fn with_data_mut<R>(&self, f: impl FnOnce(&mut [u64]) -> R) -> R {
        let mut slot = self.data.borrow_mut();
        f(cow_slice(&mut slot))
    }

    /// Overwrite the local copy with incoming data.
    ///
    /// # Panics
    ///
    /// Panics if the payload size does not match the region size.
    pub fn install_data(&self, incoming: &[u64]) {
        let mut slot = self.data.borrow_mut();
        assert_eq!(incoming.len(), slot.len(), "payload size mismatch for {}", self.id);
        cow_slice(&mut slot).copy_from_slice(incoming);
    }

    /// Adopt a full-region payload by reference: a pointer swap, aliasing
    /// the sender's buffer. Copy-on-write protects both sides afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the payload size does not match the region size.
    pub fn install_shared(&self, incoming: Arc<[u64]>) {
        let mut slot = self.data.borrow_mut();
        assert_eq!(incoming.len(), slot.len(), "payload size mismatch for {}", self.id);
        *slot = incoming;
    }

    /// Add `rank` to the sharer set.
    pub fn add_sharer(&self, rank: usize) {
        self.sharers.add(rank);
    }

    /// Remove `rank` from the sharer set.
    pub fn drop_sharer(&self, rank: usize) {
        self.sharers.remove(rank);
    }

    /// Whether `rank` is in the sharer set.
    pub fn is_sharer(&self, rank: usize) -> bool {
        self.sharers.contains(rank)
    }

    /// Iterate the ranks present in the sharer set (snapshot: the set may
    /// be mutated while iterating).
    pub fn sharer_ranks(&self) -> impl Iterator<Item = usize> {
        self.sharers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(words: usize) -> RegionEntry {
        RegionEntry::new(RegionId::new(2, 5), SpaceId(1), words)
    }

    #[test]
    fn fresh_entry_is_zeroed_and_quiescent() {
        let e = entry(4);
        assert_eq!(&**e.data.borrow(), &[0u64; 4]);
        assert!(!e.busy());
        assert_eq!(e.owner.get(), -1);
        assert!(e.is_home_of(2));
        assert!(!e.is_home_of(0));
    }

    #[test]
    fn sharer_bitmask_ops() {
        let e = entry(1);
        e.add_sharer(0);
        e.add_sharer(5);
        e.add_sharer(63);
        assert!(e.is_sharer(5));
        assert_eq!(e.sharer_ranks().collect::<Vec<_>>(), vec![0, 5, 63]);
        e.drop_sharer(5);
        assert!(!e.is_sharer(5));
        assert_eq!(e.sharer_ranks().collect::<Vec<_>>(), vec![0, 63]);
    }

    #[test]
    fn sharers_spill_past_64_ranks() {
        let s = Sharers::new();
        s.add(3);
        s.add(64);
        s.add(200);
        s.add(4095);
        assert!(s.contains(3) && s.contains(64) && s.contains(200) && s.contains(4095));
        assert!(!s.contains(65) && !s.contains(4094));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 200, 4095]);
        s.remove(200);
        assert!(!s.contains(200));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 4095]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn sharers_fingerprint_matches_raw_mask_when_small() {
        let s = Sharers::new();
        s.add(1);
        s.add(63);
        assert_eq!(s.fingerprint(), s.get());
        assert_eq!(s.fingerprint(), (1u64 << 1) | (1u64 << 63));
        // A spilled rank changes the fingerprint even with the low word
        // unchanged.
        let before = s.fingerprint();
        s.add(100);
        assert_ne!(s.fingerprint(), before);
        assert_eq!(s.get(), before, "low word untouched by a wide add");
    }

    #[test]
    fn sharers_iter_snapshot_tolerates_mutation() {
        let s = Sharers::new();
        for r in [0usize, 2, 70, 130] {
            s.add(r);
        }
        let mut seen = Vec::new();
        for r in s.iter() {
            // Dropping members mid-iteration (what an invalidation sweep
            // does) must not disturb the snapshot walk.
            s.remove(r);
            seen.push(r);
        }
        assert_eq!(seen, vec![0, 2, 70, 130]);
        assert!(s.is_empty());
    }

    #[test]
    fn data_install_round_trip() {
        let e = entry(3);
        e.install_data(&[7, 8, 9]);
        assert_eq!(&*e.clone_data(), &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn mismatched_install_panics() {
        entry(3).install_data(&[1, 2]);
    }

    #[test]
    fn cow_write_never_mutates_outstanding_snapshot() {
        let e = entry(3);
        e.install_data(&[1, 2, 3]);
        let snap = e.share_data();
        e.with_data_mut(|d| d[0] = 99);
        assert_eq!(&*snap, &[1, 2, 3], "wire snapshot must stay frozen");
        assert_eq!(&*e.share_data(), &[99, 2, 3]);
    }

    #[test]
    fn install_shared_aliases_until_first_write() {
        let e = entry(2);
        let payload: Arc<[u64]> = Arc::from(vec![5, 6]);
        e.install_shared(payload.clone());
        assert!(Arc::ptr_eq(&payload, &e.data.borrow()), "install is a pointer swap");
        e.with_data_mut(|d| d[1] = 7);
        assert_eq!(&*payload, &[5, 6], "sender's buffer untouched by receiver write");
        assert_eq!(&*e.share_data(), &[5, 7]);
    }

    #[test]
    fn unshared_mutation_stays_in_place() {
        let e = entry(2);
        e.install_data(&[3, 4]);
        let p0 = e.data.borrow().as_ptr();
        e.with_data_mut(|d| d[0] = 8);
        assert_eq!(p0, e.data.borrow().as_ptr(), "no copy when uniquely owned");
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn mismatched_install_shared_panics() {
        entry(3).install_shared(Arc::from(vec![1, 2]));
    }

    #[test]
    fn busy_tracks_open_sections() {
        let e = entry(1);
        e.read_active.set(1);
        assert!(e.busy());
        e.read_active.set(0);
        e.write_active.set(2);
        assert!(e.busy());
        e.write_active.set(0);
        assert!(!e.busy());
    }
}
