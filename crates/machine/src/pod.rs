//! Typed views over word-aligned region storage.
//!
//! Region data in both runtimes is stored as `[u64]` words (8-byte aligned,
//! like the CM-5's double-word-aligned heap). Applications view a region as
//! a slice of some plain-old-data element type. The casts here are the only
//! `unsafe` in the workspace and are guarded by size/alignment checks.

/// Marker for types that are valid for any bit pattern and contain no
/// padding requirements beyond 8-byte alignment.
///
/// # Safety
///
/// Implementors must be `repr(C)` (or primitive), contain no references,
/// no interior mutability and no invalid bit patterns, and have alignment
/// at most 8.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Number of `u64` words needed to store `count` elements of `T`.
pub fn words_for<T: Pod>(count: usize) -> usize {
    let bytes = count * std::mem::size_of::<T>();
    bytes.div_ceil(8)
}

fn check<T: Pod>(words: usize, count: usize) {
    assert!(std::mem::align_of::<T>() <= 8, "Pod alignment must be <= 8");
    assert!(
        words_for::<T>(count) <= words,
        "view of {count} x {} ({} words) exceeds region of {words} words",
        std::any::type_name::<T>(),
        words_for::<T>(count),
    );
}

/// View `count` elements of `T` over word storage.
///
/// # Panics
///
/// Panics if the storage is too small for `count` elements.
pub fn view<T: Pod>(words: &[u64], count: usize) -> &[T] {
    check::<T>(words.len(), count);
    // SAFETY: `words` is 8-byte aligned which satisfies align_of::<T>() <= 8,
    // the length check above guarantees `count` elements fit, and `T: Pod`
    // promises every bit pattern is valid.
    unsafe { std::slice::from_raw_parts(words.as_ptr() as *const T, count) }
}

/// Mutable view of `count` elements of `T` over word storage.
///
/// # Panics
///
/// Panics if the storage is too small for `count` elements.
pub fn view_mut<T: Pod>(words: &mut [u64], count: usize) -> &mut [T] {
    check::<T>(words.len(), count);
    // SAFETY: as in `view`, plus exclusivity inherited from `&mut`.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut T, count) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let mut store = vec![0u64; 4];
        {
            let v = view_mut::<f64>(&mut store, 4);
            v[0] = 1.5;
            v[3] = -2.25;
        }
        let v = view::<f64>(&store, 4);
        assert_eq!(v[0], 1.5);
        assert_eq!(v[3], -2.25);
    }

    #[test]
    fn u32_packing() {
        assert_eq!(words_for::<u32>(3), 2);
        let mut store = vec![0u64; 2];
        {
            let v = view_mut::<u32>(&mut store, 3);
            v.copy_from_slice(&[10, 20, 30]);
        }
        assert_eq!(view::<u32>(&store, 3), &[10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn oversized_view_rejected() {
        let store = vec![0u64; 1];
        let _ = view::<f64>(&store, 2);
    }

    #[test]
    fn struct_view() {
        #[derive(Copy, Clone, Debug, PartialEq)]
        #[repr(C)]
        struct P {
            x: f64,
            y: f64,
            tag: u64,
        }
        unsafe impl Pod for P {}
        let mut store = vec![0u64; words_for::<P>(2)];
        {
            let v = view_mut::<P>(&mut store, 2);
            v[1] = P { x: 3.0, y: 4.0, tag: 9 };
        }
        assert_eq!(view::<P>(&store, 2)[1], P { x: 3.0, y: 4.0, tag: 9 });
    }

    #[test]
    fn words_for_exact_and_ragged() {
        assert_eq!(words_for::<u64>(5), 5);
        assert_eq!(words_for::<u8>(1), 1);
        assert_eq!(words_for::<u8>(8), 1);
        assert_eq!(words_for::<u8>(9), 2);
        assert_eq!(words_for::<f64>(0), 0);
    }
}
