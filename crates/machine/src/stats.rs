//! Per-node and whole-machine counters.

/// Communication counters for one node.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NodeStats {
    /// Messages injected by this node.
    pub msgs_sent: u64,
    /// Payload bytes injected (excluding headers).
    pub bytes_sent: u64,
    /// Messages received and handled by this node.
    pub msgs_recv: u64,
    /// Final virtual clock, filled in when the node's program returns.
    pub final_clock: u64,
}

/// Aggregated statistics for a whole SPMD run.
#[derive(Debug, Default, Clone)]
pub struct MachineStats {
    /// Per-node counters, indexed by rank.
    pub nodes: Vec<NodeStats>,
}

impl MachineStats {
    /// Total messages sent across all nodes.
    pub fn total_msgs(&self) -> u64 {
        self.nodes.iter().map(|n| n.msgs_sent).sum()
    }

    /// Total payload bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Simulated completion time of the run: the maximum final clock.
    pub fn sim_time(&self) -> u64 {
        self.nodes.iter().map(|n| n.final_clock).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let stats = MachineStats {
            nodes: vec![
                NodeStats { msgs_sent: 3, bytes_sent: 100, msgs_recv: 1, final_clock: 50 },
                NodeStats { msgs_sent: 2, bytes_sent: 10, msgs_recv: 4, final_clock: 80 },
            ],
        };
        assert_eq!(stats.total_msgs(), 5);
        assert_eq!(stats.total_bytes(), 110);
        assert_eq!(stats.sim_time(), 80);
    }

    #[test]
    fn empty_machine() {
        let stats = MachineStats::default();
        assert_eq!(stats.total_msgs(), 0);
        assert_eq!(stats.sim_time(), 0);
    }
}
