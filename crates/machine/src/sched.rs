//! Cooperative node scheduling: multiplex many simulated nodes over a
//! fixed pool of execution slots.
//!
//! The substrate's original design gave every simulated node its own OS
//! thread and let the kernel schedule all of them. That is faithful and
//! simple, but it stops scaling long before the node counts where the
//! protocol-customization story gets interesting: thousands of runnable
//! threads thrash the kernel scheduler, and a machine-wide barrier turns
//! into a context-switch storm.
//!
//! The multiplexed backend keeps one OS thread per node (so node state can
//! stay `Cell`/`RefCell` and app closures can block naturally at any call
//! depth) but gates *execution* through a fixed number of slots — one per
//! host core by default. A node holds a slot while it computes and
//! releases it exactly at the substrate's existing blocking points (the
//! channel wait inside `poll_until` / `recv_timeout` — the same points
//! that already flush the coalescing buffers), so at any instant only
//! `workers` node threads are runnable and everyone else is parked on its
//! channel with no slot held. The per-node stacks are shrunk (see
//! [`MUX_STACK_BYTES`]) so thousands of mostly-parked threads stay cheap.
//!
//! Slot handoff is FIFO: a release grants the slot directly to the oldest
//! waiter instead of returning it to the free pool, so no node starves
//! even when the machine is oversubscribed a hundredfold.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

/// How simulated nodes map onto OS execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// One freely-running OS thread per node (the legacy substrate).
    /// Exact at small scale; collapses past a few hundred nodes.
    #[default]
    Threads,
    /// One small-stacked thread per node, cooperatively multiplexed over
    /// a worker-sized pool of execution slots (see module docs). Required
    /// for the 256–4096 node runs; observationally equivalent to
    /// `Threads` (same messages, same virtual clocks) because nodes only
    /// yield where they already blocked.
    Multiplexed,
}

/// Stack size for node threads under [`ExecBackend::Multiplexed`]. The
/// apps recurse only logarithmically (Barnes' octree walk), so 1 MiB is
/// deep water; at 4096 nodes this is 4 GiB of *virtual* reservation, of
/// which only the touched pages materialize.
pub(crate) const MUX_STACK_BYTES: usize = 1 << 20;

/// Default worker-pool width: one slot per host core.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// One parked node thread waiting for an execution slot.
struct Waiter {
    thread: Thread,
    granted: AtomicBool,
}

struct Gate {
    free: usize,
    queue: VecDeque<Arc<Waiter>>,
}

/// The execution-slot gate shared by every node of one machine.
///
/// This is a counting semaphore with a FIFO waiter queue, built on
/// `park`/`unpark` so an idle machine burns no CPU. The mutex guards only
/// the tiny grant/queue state — it is held for a handful of instructions
/// per slot transfer, never across a park.
pub(crate) struct Scheduler {
    gate: Mutex<Gate>,
}

impl Scheduler {
    pub(crate) fn new(workers: usize) -> Self {
        Scheduler { gate: Mutex::new(Gate { free: workers.max(1), queue: VecDeque::new() }) }
    }

    fn acquire(&self, w: &Arc<Waiter>) {
        {
            let mut g = self.gate.lock().unwrap();
            if g.free > 0 {
                g.free -= 1;
                return;
            }
            w.granted.store(false, Ordering::Relaxed);
            g.queue.push_back(Arc::clone(w));
        }
        // Park until a releaser hands us the slot. `park` may return
        // spuriously and the grant may land before we park (the token is
        // buffered), so loop on the flag.
        while !w.granted.load(Ordering::Acquire) {
            std::thread::park();
        }
    }

    fn release(&self) {
        let mut g = self.gate.lock().unwrap();
        match g.queue.pop_front() {
            Some(w) => {
                // Direct handoff: the slot never revisits the free pool,
                // so waiters are served strictly FIFO.
                w.granted.store(true, Ordering::Release);
                w.thread.unpark();
            }
            None => g.free += 1,
        }
    }
}

/// A node thread's handle on the slot gate. Owned by the thread that
/// created it (not `Sync`); the `held` flag makes `acquire`/`release`
/// idempotent so the exit-path release is safe no matter where a panic
/// unwound from.
pub(crate) struct SlotHandle {
    sched: Arc<Scheduler>,
    waiter: Arc<Waiter>,
    held: Cell<bool>,
}

impl SlotHandle {
    pub(crate) fn new(sched: Arc<Scheduler>) -> Self {
        let waiter =
            Arc::new(Waiter { thread: std::thread::current(), granted: AtomicBool::new(false) });
        SlotHandle { sched, waiter, held: Cell::new(false) }
    }

    /// Block until this thread holds an execution slot.
    pub(crate) fn acquire(&self) {
        if !self.held.get() {
            self.sched.acquire(&self.waiter);
            self.held.set(true);
        }
    }

    /// Give the slot up (before parking on the node's channel).
    pub(crate) fn release(&self) {
        if self.held.get() {
            self.held.set(false);
            self.sched.release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn gate_bounds_concurrency() {
        let sched = Arc::new(Scheduler::new(3));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..24 {
                let sched = Arc::clone(&sched);
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    let slot = SlotHandle::new(sched);
                    for _ in 0..50 {
                        slot.acquire();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::hint::black_box(now);
                        live.fetch_sub(1, Ordering::SeqCst);
                        slot.release();
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "slots leaked: peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn release_is_idempotent_and_acquire_reentrant() {
        let sched = Arc::new(Scheduler::new(1));
        let slot = SlotHandle::new(Arc::clone(&sched));
        slot.acquire();
        slot.acquire(); // no-op: already held
        slot.release();
        slot.release(); // no-op: not held
        assert_eq!(sched.gate.lock().unwrap().free, 1, "slot returned exactly once");
    }

    #[test]
    fn oversubscribed_fifo_makes_progress() {
        // 64 "nodes" over 2 slots, each yielding many times: everyone
        // must finish (no starvation, no lost wakeup).
        let sched = Arc::new(Scheduler::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..64 {
                let sched = Arc::clone(&sched);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    let slot = SlotHandle::new(sched);
                    for _ in 0..100 {
                        slot.acquire();
                        slot.release();
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }
}
