//! Collection strategies (`vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable element-count specifications for [`vec`]: an exact `usize`
/// or a half-open `Range<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let Range { start, end } = self.size.0;
        assert!(start < end, "vec strategy size range is empty");
        let len = start + rng.below((end - start) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy: `size` elements (or a count drawn from the range), each
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
