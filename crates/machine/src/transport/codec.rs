//! Hand-rolled wire encoding for envelopes and batches.
//!
//! The build environment is offline (no serde/bincode), so the socket
//! backend frames messages with an explicit little-endian codec: every
//! multi-byte integer is LE, sequences are a `u32` count followed by the
//! elements, and options are a one-byte presence flag. The format is the
//! moral equivalent of `bincode` over a `#[derive(Serialize)]` envelope —
//! in particular the checker's vector clock travels as a plain `Vec<u64>`
//! — and a round-trip unit test pins it.
//!
//! [`MsgSize::size_bytes`] remains the *simulated* payload size; the
//! encoded byte count is a property of the codec, not of the cost model.
//! The two are deliberately independent (see `DESIGN.md` §14).

use std::sync::Arc;

use crate::envelope::{Envelope, Wire};

/// A decode failure: the frame was truncated, carried an unknown tag, or
/// an embedded string was not UTF-8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// A length or string field was malformed.
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            CodecError::Invalid(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Cursor over a received frame body.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u32`-counted word vector.
    pub fn words(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.u32()? as usize;
        if self.remaining() < n.checked_mul(8).ok_or(CodecError::Invalid("word count"))? {
            return Err(CodecError::Truncated);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Read a `u32`-counted UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

/// Append a `u32`-counted word vector.
pub fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    out.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Append a `u32`-counted UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A message type that can cross a real wire.
///
/// Every message type used with a [`crate::transport::Transport`] backend
/// must be encodable; the in-process backend never calls these, but the
/// bound lives on [`crate::MachineBuilder::run`] so the transport can be
/// chosen at runtime.
pub trait WireCodec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError>;
}

impl WireCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl WireCodec for Vec<u64> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_words(out, self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.words()
    }
}

impl WireCodec for Arc<[u64]> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_words(out, self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(r.words()?.into())
    }
}

/// Encode an optional vector clock: a presence byte, then the clock as a
/// plain word vector (the `Arc` is a host-side sharing detail).
fn put_vc(out: &mut Vec<u8>, vc: &Option<Arc<[u64]>>) {
    match vc {
        None => out.push(0),
        Some(vc) => {
            out.push(1);
            put_words(out, vc);
        }
    }
}

fn get_vc(r: &mut WireReader<'_>) -> Result<Option<Arc<[u64]>>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.words()?.into())),
        t => Err(CodecError::BadTag(t)),
    }
}

impl<M: WireCodec> WireCodec for Envelope<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.src as u32).to_le_bytes());
        out.extend_from_slice(&self.send_time.to_le_bytes());
        out.extend_from_slice(&(self.bytes as u32).to_le_bytes());
        put_vc(out, &self.vc);
        out.extend_from_slice(&self.sw.to_le_bytes());
        self.msg.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Envelope {
            src: r.u32()? as usize,
            send_time: r.u64()?,
            bytes: r.u32()? as usize,
            vc: get_vc(r)?,
            sw: r.u64()?,
            msg: M::decode(r)?,
        })
    }
}

/// Wire-envelope tags.
const WIRE_SINGLE: u8 = 0;
const WIRE_BATCH: u8 = 1;

impl<M: WireCodec> WireCodec for Wire<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Wire::Single(env) => {
                out.push(WIRE_SINGLE);
                env.encode(out);
            }
            Wire::Batch { src, send_time, wire_bytes, parts, vc, sw } => {
                out.push(WIRE_BATCH);
                out.extend_from_slice(&(*src as u32).to_le_bytes());
                out.extend_from_slice(&send_time.to_le_bytes());
                out.extend_from_slice(&(*wire_bytes as u32).to_le_bytes());
                put_vc(out, vc);
                out.extend_from_slice(&sw.to_le_bytes());
                out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
                for (msg, payload) in parts {
                    out.extend_from_slice(&(*payload as u32).to_le_bytes());
                    msg.encode(out);
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            WIRE_SINGLE => Ok(Wire::Single(Envelope::decode(r)?)),
            WIRE_BATCH => {
                let src = r.u32()? as usize;
                let send_time = r.u64()?;
                let wire_bytes = r.u32()? as usize;
                let vc = get_vc(r)?;
                let sw = r.u64()?;
                let n = r.u32()? as usize;
                let mut parts = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let payload = r.u32()? as usize;
                    parts.push((M::decode(r)?, payload));
                }
                Ok(Wire::Batch { src, send_time, wire_bytes, parts, vc, sw })
            }
            t => Err(CodecError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<M: WireCodec>(w: &Wire<M>) -> Wire<M> {
        let mut buf = Vec::new();
        w.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        let back = Wire::decode(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "decode must consume the whole frame");
        back
    }

    #[test]
    fn envelope_round_trips_with_and_without_vc() {
        for vc in [None, Some(Arc::from(vec![3u64, 0, 7]))] {
            let env = Envelope { src: 5, send_time: 12345, bytes: 28, vc, sw: 4, msg: 99u64 };
            let mut buf = Vec::new();
            env.encode(&mut buf);
            let back = Envelope::<u64>::decode(&mut WireReader::new(&buf)).unwrap();
            assert_eq!(back.src, env.src);
            assert_eq!(back.send_time, env.send_time);
            assert_eq!(back.bytes, env.bytes);
            assert_eq!(back.msg, env.msg);
            assert_eq!(back.vc.as_deref(), env.vc.as_deref(), "vc travels as plain words");
            assert_eq!(back.sw, 4, "switch epoch travels as one word");
        }
    }

    #[test]
    fn single_wire_round_trips() {
        let w = Wire::Single(Envelope {
            src: 2,
            send_time: 777,
            bytes: 16,
            vc: Some(Arc::from(vec![1u64, 2])),
            sw: 9,
            msg: 41u64,
        });
        match round_trip(&w) {
            Wire::Single(env) => {
                assert_eq!((env.src, env.send_time, env.bytes, env.msg), (2, 777, 16, 41));
                assert_eq!(env.vc.as_deref(), Some(&[1u64, 2][..]));
                assert_eq!(env.sw, 9);
            }
            Wire::Batch { .. } => panic!("single decoded as batch"),
        }
    }

    #[test]
    fn batch_wire_round_trips_in_order() {
        let w: Wire<Vec<u64>> = Wire::Batch {
            src: 3,
            send_time: 42,
            wire_bytes: 100,
            parts: vec![(vec![1, 2], 16), (vec![], 0), (vec![9], 8)],
            vc: None,
            sw: 2,
        };
        match round_trip(&w) {
            Wire::Batch { src, send_time, wire_bytes, parts, vc, sw } => {
                assert_eq!((src, send_time, wire_bytes), (3, 42, 100));
                assert!(vc.is_none());
                assert_eq!(sw, 2);
                assert_eq!(parts, vec![(vec![1, 2], 16), (vec![], 0), (vec![9], 8)]);
            }
            Wire::Single(_) => panic!("batch decoded as single"),
        }
    }

    #[test]
    fn truncated_and_bad_tag_frames_are_rejected() {
        let env = Envelope { src: 0, send_time: 0, bytes: 8, vc: None, sw: 0, msg: 7u64 };
        let mut buf = Vec::new();
        Wire::Single(env).encode(&mut buf);
        for cut in 0..buf.len() {
            let err = Wire::<u64>::decode(&mut WireReader::new(&buf[..cut]));
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
        let bad = [9u8, 0, 0, 0];
        assert!(matches!(
            Wire::<u64>::decode(&mut WireReader::new(&bad)),
            Err(CodecError::BadTag(9))
        ));
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = Vec::new();
        put_string(&mut buf, "node-3 panicked: boom");
        let s = WireReader::new(&buf).string().unwrap();
        assert_eq!(s, "node-3 panicked: boom");
    }
}
