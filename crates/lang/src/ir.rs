//! The compiler's CFG-based intermediate representation.
//!
//! A function is a list of basic blocks of register-machine instructions.
//! Shared-memory accesses appear as explicit annotation instructions
//! (`Map`, `StartRead`, ..., Figure 5); each lowered access site gets an
//! [`AccessId`] shared by its `Map`/`Start`/`End` triple, which is how the
//! optimization passes and the Table 4 accounting identify them. Every
//! annotation carries a [`DispatchMode`], rewritten by the direct-dispatch
//! pass.

use ace_protocols::ProtoSpec;

/// Virtual register index (function-local).
pub type VReg = u32;
/// Basic block index (function-local).
pub type BlockId = usize;
/// Function index (program-global).
pub type FuncId = usize;
/// Identity of one lowered shared-access site.
pub type AccessId = u32;

/// Value interpretation for typed IR operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValTy {
    /// 64-bit integer.
    I,
    /// 64-bit float.
    F,
    /// Region handle.
    H,
    /// Space handle.
    S,
}

/// How an annotation reaches its protocol (§4.2, "Avoiding Dispatching
/// Overhead").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Through the region's space (hash lookup + indirect call).
    Dispatch,
    /// Directly to a statically-known protocol.
    Direct(ProtoSpec),
    /// Removed: the statically-known protocol declares the action null.
    Removed,
}

/// Binary operations (operand type in the instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bin {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Runtime intrinsics (the Ace library routines of Table 2 plus SPMD
/// helpers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intr {
    /// `Ace_NewSpace(protocol)`; the site index keys the protocol
    /// dataflow.
    NewSpace { spec: ProtoSpec, site: u32 },
    /// `Ace_ChangeProtocol(space, protocol)`.
    ChangeProtocol { spec: ProtoSpec },
    /// `Ace_GMalloc(space, n)`; `elem_words` from the enclosing cast.
    Gmalloc { elem_words: u32 },
    /// `Ace_Barrier(space)`.
    Barrier,
    /// This node's rank.
    Rank,
    /// Node count.
    Nprocs,
    /// Broadcast an int from `root`.
    BcastI,
    /// Broadcast a handle from `root`.
    BcastP,
    /// All-reduce f64 sum / max.
    ReduceAddF,
    /// All-reduce f64 max.
    ReduceMaxF,
    /// All-reduce i64 sum.
    ReduceAddI,
    /// All-reduce i64 max.
    ReduceMaxI,
    /// All-reduce i64 min.
    ReduceMinI,
    /// `sqrt`.
    Sqrt,
    /// `fabs`.
    Fabs,
    /// Charge flops to the virtual clock.
    ChargeFlops,
    /// Debug print.
    PrintI,
    /// Debug print.
    PrintF,
}

/// One IR instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// dst = integer constant.
    ConstI(VReg, i64),
    /// dst = float constant.
    ConstF(VReg, f64),
    /// dst = a `op` b with operands of `ty`.
    BinOp { dst: VReg, op: Bin, ty: ValTy, a: VReg, b: VReg },
    /// dst = -a.
    Neg { dst: VReg, ty: ValTy, a: VReg },
    /// dst = !a (int).
    Not { dst: VReg, a: VReg },
    /// dst = (double) a.
    IntToF { dst: VReg, a: VReg },
    /// dst = (int) a (truncating).
    FToInt { dst: VReg, a: VReg },
    /// dst = a.
    Mov { dst: VReg, a: VReg },
    /// dst = local scalar slot.
    LoadLocal { dst: VReg, slot: u32 },
    /// local scalar slot = a.
    StoreLocal { slot: u32, a: VReg },
    /// dst = local array slot[idx].
    LoadArr { dst: VReg, slot: u32, idx: VReg },
    /// local array slot[idx] = a.
    StoreArr { slot: u32, idx: VReg, a: VReg },
    /// `ACE_MAP`: dst = mapped handle.
    Map { aid: AccessId, mode: DispatchMode, dst: VReg, handle: VReg },
    /// `ACE_START_READ`.
    StartRead { aid: AccessId, mode: DispatchMode, handle: VReg },
    /// `ACE_END_READ`.
    EndRead { aid: AccessId, mode: DispatchMode, handle: VReg },
    /// `ACE_START_WRITE`.
    StartWrite { aid: AccessId, mode: DispatchMode, handle: VReg },
    /// `ACE_END_WRITE`.
    EndWrite { aid: AccessId, mode: DispatchMode, handle: VReg },
    /// dst = word at `handle[off]`, interpreted as `ty`.
    GLoad { dst: VReg, handle: VReg, off: VReg, ty: ValTy },
    /// `handle[off] = val`.
    GStore { handle: VReg, off: VReg, val: VReg },
    /// `Ace_Lock(region)`.
    Lock { aid: AccessId, mode: DispatchMode, handle: VReg },
    /// `Ace_UnLock(region)`.
    Unlock { aid: AccessId, mode: DispatchMode, handle: VReg },
    /// Direct call to a program function.
    Call { dst: Option<VReg>, func: FuncId, args: Vec<VReg> },
    /// Runtime intrinsic.
    Intrinsic { dst: Option<VReg>, which: Intr, args: Vec<VReg> },
}

impl Inst {
    /// Whether this instruction is a synchronization point the optimizer
    /// must not move annotations across (§4.2: "code is never moved past
    /// synchronization calls"; calls are conservatively synchronizing).
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Inst::Lock { .. }
                | Inst::Unlock { .. }
                | Inst::Call { .. }
                | Inst::Intrinsic {
                    which: Intr::Barrier
                        | Intr::ChangeProtocol { .. }
                        | Intr::BcastI
                        | Intr::BcastP
                        | Intr::ReduceAddF
                        | Intr::ReduceMaxF
                        | Intr::ReduceAddI
                        | Intr::ReduceMaxI
                        | Intr::ReduceMinI,
                    ..
                }
        )
    }
}

/// Block terminator.
#[derive(Debug, Clone)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on an int register.
    Br { cond: VReg, t: BlockId, f: BlockId },
    /// Return.
    Ret(Option<VReg>),
}

/// One basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// Terminator.
    pub term: Term,
}

/// Kinds of local slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// A scalar of the given type.
    Scalar(ValTy),
    /// An array of `len` values of the given type.
    Array(ValTy, usize),
}

/// One compiled function.
#[derive(Debug, Clone)]
pub struct IFunc {
    /// Source name.
    pub name: String,
    /// Number of parameters (stored into slots 0..n on entry).
    pub nparams: usize,
    /// Local slot table (parameters first).
    pub slots: Vec<Slot>,
    /// Number of virtual registers.
    pub nregs: u32,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// All functions.
    pub funcs: Vec<IFunc>,
    /// Index of `main`.
    pub main: FuncId,
    /// Total lowered access sites (for reporting).
    pub naccesses: u32,
}

impl Program {
    /// Count annotation instructions by mode, for the Table 4 harness:
    /// `(dispatched, direct, removed)` static counts.
    pub fn annotation_stats(&self) -> (usize, usize, usize) {
        let mut d = 0;
        let mut di = 0;
        let mut rm = 0;
        for f in &self.funcs {
            for b in &f.blocks {
                for i in &b.insts {
                    let mode = match i {
                        Inst::Map { mode, .. }
                        | Inst::StartRead { mode, .. }
                        | Inst::EndRead { mode, .. }
                        | Inst::StartWrite { mode, .. }
                        | Inst::EndWrite { mode, .. }
                        | Inst::Lock { mode, .. }
                        | Inst::Unlock { mode, .. } => mode,
                        _ => continue,
                    };
                    match mode {
                        DispatchMode::Dispatch => d += 1,
                        DispatchMode::Direct(_) => di += 1,
                        DispatchMode::Removed => rm += 1,
                    }
                }
            }
        }
        (d, di, rm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_classification() {
        assert!(Inst::Intrinsic { dst: None, which: Intr::Barrier, args: vec![] }.is_sync());
        assert!(Inst::Call { dst: None, func: 0, args: vec![] }.is_sync());
        assert!(!Inst::Intrinsic { dst: Some(0), which: Intr::Rank, args: vec![] }.is_sync());
        assert!(!Inst::Map { aid: 0, mode: DispatchMode::Dispatch, dst: 0, handle: 1 }.is_sync());
    }
}
