//! Structured runtime errors.
//!
//! The historical annotation API panics on misuse (an unmapped region is
//! the DSM equivalent of a wild pointer). [`AceError`] gives the same
//! failures a typed, `Result`-returning surface — [`crate::AceRt::try_entry`]
//! and friends — and routes the panicking paths through it so every
//! diagnostic carries the region, the space, and the last hook the runtime
//! executed on the failing node.

use std::fmt;

use crate::ids::{RegionId, SpaceId};

/// A failed runtime operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AceError {
    /// The region has no entry on this node: it was never `gmalloc`ed
    /// here, mapped here, or fetched here by a lock.
    UnknownRegion {
        /// The region that was asked for.
        region: RegionId,
        /// The asking node.
        rank: usize,
        /// The last annotation hook the runtime ran on this node before
        /// the failure ("none" if no hook has run yet).
        last_hook: &'static str,
    },
    /// The region exists but belongs to a different space than required.
    SpaceMismatch {
        /// The region that was asked for.
        region: RegionId,
        /// The space the caller required.
        expected: SpaceId,
        /// The space the region actually belongs to.
        actual: SpaceId,
    },
    /// The region's entry survives as an unmapped cache entry (CRL-style
    /// unmapped-region caching) but the caller asked for a mapped view.
    UseAfterUnmap {
        /// The unmapped region.
        region: RegionId,
        /// The asking node.
        rank: usize,
        /// The last annotation hook the runtime ran on this node.
        last_hook: &'static str,
    },
    /// No space with this id exists on this node.
    UnknownSpace {
        /// The space that was asked for.
        space: SpaceId,
        /// The asking node.
        rank: usize,
    },
}

impl fmt::Display for AceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AceError::UnknownRegion { region, rank, last_hook } => {
                write!(f, "region {region} not known on node {rank} (last hook: {last_hook})")
            }
            AceError::SpaceMismatch { region, expected, actual } => {
                write!(f, "region {region} belongs to space {actual}, expected space {expected}")
            }
            AceError::UseAfterUnmap { region, rank, last_hook } => {
                write!(
                    f,
                    "region {region} is no longer mapped on node {rank} \
                     (last hook: {last_hook})"
                )
            }
            AceError::UnknownSpace { space, rank } => {
                write!(f, "unknown space {space} on node {rank}")
            }
        }
    }
}

impl std::error::Error for AceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_region_message_keeps_wild_pointer_phrase() {
        // Downstream panic tests (and users' muscle memory) match on this
        // substring; the Display must keep it stable.
        let e = AceError::UnknownRegion {
            region: RegionId::new(0, 99),
            rank: 3,
            last_hook: "start_read",
        };
        let s = e.to_string();
        assert!(s.contains("not known on node 3"), "{s}");
        assert!(s.contains("start_read"), "{s}");
    }

    #[test]
    fn display_covers_all_variants() {
        let r = RegionId::new(1, 2);
        assert!(AceError::SpaceMismatch { region: r, expected: SpaceId(0), actual: SpaceId(1) }
            .to_string()
            .contains("expected space"));
        assert!(AceError::UseAfterUnmap { region: r, rank: 0, last_hook: "unmap" }
            .to_string()
            .contains("no longer mapped"));
        assert!(AceError::UnknownSpace { space: SpaceId(7), rank: 1 }
            .to_string()
            .contains("unknown space"));
    }
}
