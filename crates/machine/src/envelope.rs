//! Message envelopes: what actually travels between nodes.

/// Size accounting for simulated bandwidth charges.
///
/// Implemented by each runtime's message type. `size_bytes` should return
/// the number of payload bytes the message would occupy on a real wire;
/// the substrate adds [`HEADER_BYTES`] per *wire* envelope for the
/// active-message header. Zero-copy payloads (e.g. `Arc<[u64]>`) must
/// report the full payload size, not the size of the handle: sharing a
/// buffer saves host memory, never simulated bandwidth.
pub trait MsgSize {
    /// Payload size in bytes (excluding the fixed header).
    fn size_bytes(&self) -> usize;

    /// Short stable tag naming the message's kind, used to label trace
    /// events and aggregate per-tag byte counts. Implementations should
    /// return one tag per logical message variant.
    fn tag(&self) -> &'static str {
        "msg"
    }
}

/// Fixed per-message header charge: handler id, source, region id, opcode —
/// roughly what a CM-5 active message packet carried. Charged once per
/// *wire* envelope: a coalesced batch of logical messages pays it once,
/// which is exactly the headers-saved win of coalescing.
pub const HEADER_BYTES: usize = 20;

/// A message in flight, stamped with the sender's identity and virtual
/// clock at send time.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending node's rank.
    pub src: usize,
    /// Sender's virtual clock when the message was injected (for a
    /// coalesced batch: when its wire envelope was flushed).
    pub send_time: u64,
    /// Sender's vector clock at injection, present only when the machine
    /// runs with conformance checking enabled ([`crate::CheckMode`]). For
    /// a coalesced batch only the first delivered part carries the clock
    /// (one merge per wire envelope). Checker metadata is metrologically
    /// invisible: it contributes nothing to `bytes` or any cost charge.
    pub vc: Option<std::sync::Arc<[u64]>>,
    /// The sender's protocol-switch epoch at injection: how many adaptive
    /// protocol switches the sender had committed when this message left.
    /// Like [`Envelope::vc`] it is metrologically invisible (zero bytes,
    /// zero cost charges); receivers max-merge it so a node always knows
    /// the newest epoch any peer has reached, and debug builds assert no
    /// message arrives from more than one switch in the future — the
    /// two-barrier switch handshake makes that impossible for a coherent
    /// engine.
    pub sw: u64,
    /// Wire bytes — payload plus [`HEADER_BYTES`] — captured at send time
    /// by calling [`MsgSize::size_bytes`] once, so the receiver never
    /// re-measures the payload and both ends charge identical bytes.
    /// For a sub-message delivered out of a coalesced batch this is the
    /// sub-message's own payload (headerless except on the batch's first
    /// part); see `Node::send` for the charging rules.
    pub bytes: usize,
    /// The message itself.
    pub msg: M,
}

/// What actually travels on the transport: either a plain envelope or a
/// coalesced batch of logical messages bound for the same destination.
/// The batch is the *wire* unit — it pays latency, header and overheads
/// once; its parts are re-expanded into individual [`Envelope`]s on the
/// receiving side so handlers never see batching.
///
/// This is the unit a [`crate::transport::Transport`] backend carries:
/// the in-process backend moves it through a channel, the socket backend
/// frames it with [`crate::transport::WireCodec`].
#[derive(Debug)]
pub enum Wire<M> {
    /// One logical message, one wire envelope.
    Single(Envelope<M>),
    /// A coalesced flush of one destination's buffered messages.
    Batch {
        /// Sending node's rank.
        src: usize,
        /// Sender's virtual clock at flush.
        send_time: u64,
        /// Summed payload bytes of all parts plus one wire header.
        wire_bytes: usize,
        /// `(msg, payload_bytes)` in send order.
        parts: Vec<(M, usize)>,
        /// Sender's vector clock at flush, when checking is enabled.
        vc: Option<std::sync::Arc<[u64]>>,
        /// Sender's protocol-switch epoch at flush (see [`Envelope::sw`]);
        /// stamped back onto every re-expanded part.
        sw: u64,
    },
}

impl MsgSize for () {
    fn size_bytes(&self) -> usize {
        0
    }
}

impl MsgSize for u64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl MsgSize for Vec<u64> {
    fn size_bytes(&self) -> usize {
        self.len() * 8
    }
}

impl MsgSize for std::sync::Arc<[u64]> {
    fn size_bytes(&self) -> usize {
        self.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn builtin_sizes() {
        assert_eq!(().size_bytes(), 0);
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(vec![1u64, 2, 3].size_bytes(), 24);
    }

    #[test]
    fn shared_payload_sizes_match_owned() {
        // A zero-copy handle charges the same bytes as the owned buffer it
        // wraps: refcount bumps save host memory, not simulated bandwidth.
        let owned = vec![1u64, 2, 3, 4];
        let shared: Arc<[u64]> = owned.clone().into();
        assert_eq!(shared.size_bytes(), owned.size_bytes());
        assert_eq!(Arc::clone(&shared).size_bytes(), 32);
    }
}
