//! Wire messages of the Ace runtime.
//!
//! Bulk payloads travel as `Arc<[u64]>`: a fan-out of one payload to N
//! sharers is N refcount bumps, not N deep copies. The simulated network
//! still charges full payload bytes per message ([`MsgSize`] reports
//! `len * 8` exactly as it would for an owned buffer), so zero-copy is
//! purely a wall-clock optimization — simulated time, message counts, and
//! byte counts are unchanged.

use std::sync::Arc;

use ace_machine::transport::{put_words, CodecError, WireCodec, WireReader};
use ace_machine::MsgSize;

use crate::ids::{RegionId, SpaceId};

/// A protocol-level active message. The runtime routes it to the protocol
/// of the target region's space; the `op`/`arg` fields are interpreted by
/// the protocol alone, which is what lets new protocols define their own
/// wire protocols without touching the runtime (§2.4, extensibility).
#[derive(Debug)]
pub struct ProtoMsg {
    /// Target region.
    pub region: RegionId,
    /// Protocol-defined opcode.
    pub op: u16,
    /// The node on whose behalf this message was sent (for three-hop
    /// forwarding this differs from the envelope's `src`).
    pub from: u16,
    /// Protocol-defined scalar argument.
    pub arg: u64,
    /// Optional bulk payload (region data, deltas, ...), shared zero-copy
    /// with the sender; receivers that mutate must copy-on-write.
    pub data: Option<Arc<[u64]>>,
}

/// Everything that travels between Ace nodes.
#[derive(Debug)]
pub enum AceMsg {
    /// Protocol-defined message, dispatched through the region's space.
    Proto(ProtoMsg),
    /// First map of a region by a non-home node: ask home for metadata.
    MetaReq { region: RegionId },
    /// Home's answer: the region's space and size.
    MetaReply { region: RegionId, space: SpaceId, words: u64 },
    /// Barrier arrival at the coordinator (node 0). `tag` distinguishes
    /// per-space barriers from the global machine barrier. `prof` is an
    /// optional sharing-profile contribution (adaptive protocol engine):
    /// like the checker's vector clocks it is metrologically invisible —
    /// the barrier message still charges its fixed 12 bytes — because it
    /// models a few words folded into a packet the barrier sends anyway.
    BarArrive { tag: u32, epoch: u64, prof: Option<Arc<[u64]>> },
    /// Barrier release broadcast from the coordinator. `prof` carries the
    /// element-wise sum of every arrival's profile contribution when at
    /// least one node staged one (see [`AceMsg::BarArrive`]).
    BarRelease { tag: u32, epoch: u64, prof: Option<Arc<[u64]>> },
    /// Default region-lock request, queued FIFO at the region's home.
    LockReq { region: RegionId },
    /// Lock granted to the requester.
    LockGrant { region: RegionId },
    /// Lock released by the holder.
    LockRelease { region: RegionId },
    /// Broadcast payload from a root node (used to distribute root region
    /// ids after setup, like exchanging `address_t`s in the paper's apps).
    Bcast { seq: u64, vals: Arc<[u64]> },
    /// One node's contribution to a gather at a root node.
    Gather { seq: u64, vals: Arc<[u64]> },
}

impl MsgSize for AceMsg {
    fn size_bytes(&self) -> usize {
        match self {
            AceMsg::Proto(p) => 12 + p.data.as_ref().map_or(0, |d| d.len() * 8),
            AceMsg::MetaReq { .. } => 8,
            AceMsg::MetaReply { .. } => 20,
            AceMsg::BarArrive { .. } | AceMsg::BarRelease { .. } => 12,
            AceMsg::LockReq { .. } | AceMsg::LockGrant { .. } | AceMsg::LockRelease { .. } => 8,
            AceMsg::Bcast { vals, .. } | AceMsg::Gather { vals, .. } => 8 + vals.len() * 8,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            AceMsg::Proto(_) => "proto",
            AceMsg::MetaReq { .. } => "meta_req",
            AceMsg::MetaReply { .. } => "meta_reply",
            AceMsg::BarArrive { .. } => "bar_arrive",
            AceMsg::BarRelease { .. } => "bar_release",
            AceMsg::LockReq { .. } => "lock_req",
            AceMsg::LockGrant { .. } => "lock_grant",
            AceMsg::LockRelease { .. } => "lock_release",
            AceMsg::Bcast { .. } => "bcast",
            AceMsg::Gather { .. } => "gather",
        }
    }
}

/// Wire tags for [`AceMsg`] variants (socket-transport framing).
const T_PROTO: u8 = 0;
const T_META_REQ: u8 = 1;
const T_META_REPLY: u8 = 2;
const T_BAR_ARRIVE: u8 = 3;
const T_BAR_RELEASE: u8 = 4;
const T_LOCK_REQ: u8 = 5;
const T_LOCK_GRANT: u8 = 6;
const T_LOCK_RELEASE: u8 = 7;
const T_BCAST: u8 = 8;
const T_GATHER: u8 = 9;

fn put_opt_words(out: &mut Vec<u8>, vals: &Option<Arc<[u64]>>) {
    match vals {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_words(out, v);
        }
    }
}

fn get_opt_words(r: &mut WireReader<'_>) -> Result<Option<Arc<[u64]>>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.words()?.into())),
        t => Err(CodecError::BadTag(t)),
    }
}

impl WireCodec for AceMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AceMsg::Proto(p) => {
                out.push(T_PROTO);
                p.region.0.encode(out);
                out.extend_from_slice(&p.op.to_le_bytes());
                out.extend_from_slice(&p.from.to_le_bytes());
                p.arg.encode(out);
                put_opt_words(out, &p.data);
            }
            AceMsg::MetaReq { region } => {
                out.push(T_META_REQ);
                region.0.encode(out);
            }
            AceMsg::MetaReply { region, space, words } => {
                out.push(T_META_REPLY);
                region.0.encode(out);
                out.extend_from_slice(&space.0.to_le_bytes());
                words.encode(out);
            }
            AceMsg::BarArrive { tag, epoch, prof } => {
                out.push(T_BAR_ARRIVE);
                out.extend_from_slice(&tag.to_le_bytes());
                epoch.encode(out);
                put_opt_words(out, prof);
            }
            AceMsg::BarRelease { tag, epoch, prof } => {
                out.push(T_BAR_RELEASE);
                out.extend_from_slice(&tag.to_le_bytes());
                epoch.encode(out);
                put_opt_words(out, prof);
            }
            AceMsg::LockReq { region } => {
                out.push(T_LOCK_REQ);
                region.0.encode(out);
            }
            AceMsg::LockGrant { region } => {
                out.push(T_LOCK_GRANT);
                region.0.encode(out);
            }
            AceMsg::LockRelease { region } => {
                out.push(T_LOCK_RELEASE);
                region.0.encode(out);
            }
            AceMsg::Bcast { seq, vals } => {
                out.push(T_BCAST);
                seq.encode(out);
                put_words(out, vals);
            }
            AceMsg::Gather { seq, vals } => {
                out.push(T_GATHER);
                seq.encode(out);
                put_words(out, vals);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            T_PROTO => AceMsg::Proto(ProtoMsg {
                region: RegionId(r.u64()?),
                op: r.u16()?,
                from: r.u16()?,
                arg: r.u64()?,
                data: get_opt_words(r)?,
            }),
            T_META_REQ => AceMsg::MetaReq { region: RegionId(r.u64()?) },
            T_META_REPLY => AceMsg::MetaReply {
                region: RegionId(r.u64()?),
                space: SpaceId(r.u32()?),
                words: r.u64()?,
            },
            T_BAR_ARRIVE => {
                AceMsg::BarArrive { tag: r.u32()?, epoch: r.u64()?, prof: get_opt_words(r)? }
            }
            T_BAR_RELEASE => {
                AceMsg::BarRelease { tag: r.u32()?, epoch: r.u64()?, prof: get_opt_words(r)? }
            }
            T_LOCK_REQ => AceMsg::LockReq { region: RegionId(r.u64()?) },
            T_LOCK_GRANT => AceMsg::LockGrant { region: RegionId(r.u64()?) },
            T_LOCK_RELEASE => AceMsg::LockRelease { region: RegionId(r.u64()?) },
            T_BCAST => AceMsg::Bcast { seq: r.u64()?, vals: r.words()?.into() },
            T_GATHER => AceMsg::Gather { seq: r.u64()?, vals: r.words()?.into() },
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_size_includes_payload() {
        let m = AceMsg::Proto(ProtoMsg {
            region: RegionId::new(0, 1),
            op: 3,
            from: 0,
            arg: 0,
            data: Some(Arc::from(vec![0u64; 10])),
        });
        assert_eq!(m.size_bytes(), 12 + 80);
        let m2 = AceMsg::Proto(ProtoMsg {
            region: RegionId::new(0, 1),
            op: 3,
            from: 0,
            arg: 0,
            data: None,
        });
        assert_eq!(m2.size_bytes(), 12);
    }

    #[test]
    fn bcast_size_scales() {
        let m = AceMsg::Bcast { seq: 0, vals: Arc::from(vec![1, 2, 3]) };
        assert_eq!(m.size_bytes(), 8 + 24);
    }

    #[test]
    fn shared_payload_charges_full_bytes_per_message() {
        // Zero-copy must not change bandwidth accounting: two messages
        // sharing one Arc payload still charge the payload twice.
        let payload: Arc<[u64]> = Arc::from(vec![0u64; 16]);
        let mk = || {
            AceMsg::Proto(ProtoMsg {
                region: RegionId::new(0, 1),
                op: 1,
                from: 0,
                arg: 0,
                data: Some(payload.clone()),
            })
        };
        assert_eq!(mk().size_bytes() + mk().size_bytes(), 2 * (12 + 128));
    }

    #[test]
    fn barrier_profile_is_metrologically_invisible() {
        // The sharing profile rides a message the barrier sends anyway;
        // like checker vector clocks it must not change byte accounting.
        let bare = AceMsg::BarArrive { tag: 1, epoch: 2, prof: None };
        let full = AceMsg::BarArrive { tag: 1, epoch: 2, prof: Some(Arc::from(vec![0u64; 8])) };
        assert_eq!(bare.size_bytes(), 12);
        assert_eq!(full.size_bytes(), bare.size_bytes());
        let rel = AceMsg::BarRelease { tag: 1, epoch: 2, prof: Some(Arc::from(vec![7u64])) };
        assert_eq!(rel.size_bytes(), 12);
    }

    #[test]
    fn every_variant_round_trips_the_wire_codec() {
        let msgs = vec![
            AceMsg::Proto(ProtoMsg {
                region: RegionId::new(3, 17),
                op: 9,
                from: 2,
                arg: 0xDEAD_BEEF,
                data: Some(Arc::from(vec![1u64, 2, 3])),
            }),
            AceMsg::Proto(ProtoMsg { region: RegionId::NULL, op: 0, from: 0, arg: 0, data: None }),
            AceMsg::MetaReq { region: RegionId::new(1, 5) },
            AceMsg::MetaReply { region: RegionId::new(1, 5), space: SpaceId(2), words: 64 },
            AceMsg::BarArrive { tag: 7, epoch: 3, prof: None },
            AceMsg::BarArrive { tag: 7, epoch: 3, prof: Some(Arc::from(vec![1u64, 0, 9])) },
            AceMsg::BarRelease { tag: 7, epoch: 3, prof: None },
            AceMsg::BarRelease { tag: u32::MAX, epoch: 1, prof: Some(Arc::from(vec![4u64])) },
            AceMsg::LockReq { region: RegionId::new(0, 1) },
            AceMsg::LockGrant { region: RegionId::new(0, 1) },
            AceMsg::LockRelease { region: RegionId::new(0, 1) },
            AceMsg::Bcast { seq: 4, vals: Arc::from(vec![10u64, 20]) },
            AceMsg::Gather { seq: 4, vals: Arc::from(Vec::<u64>::new()) },
        ];
        for m in &msgs {
            let mut buf = Vec::new();
            m.encode(&mut buf);
            let mut r = WireReader::new(&buf);
            let back = AceMsg::decode(&mut r).expect("decode");
            assert_eq!(r.remaining(), 0, "decode must consume the whole frame");
            // AceMsg carries Arc payloads, so compare via Debug plus the
            // accounting the rest of the stack relies on.
            assert_eq!(format!("{back:?}"), format!("{m:?}"));
            assert_eq!(back.size_bytes(), m.size_bytes());
            assert_eq!(back.tag(), m.tag());
        }
    }

    #[test]
    fn truncated_ace_frames_are_rejected() {
        let m = AceMsg::MetaReply { region: RegionId::new(2, 9), space: SpaceId(1), words: 8 };
        let mut buf = Vec::new();
        m.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                AceMsg::decode(&mut WireReader::new(&buf[..cut])).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        assert!(matches!(
            AceMsg::decode(&mut WireReader::new(&[200u8])),
            Err(CodecError::BadTag(200))
        ));
    }
}
