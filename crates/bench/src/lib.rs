//! Figure/table harnesses reproducing the paper's evaluation (§5).
//!
//! * [`fig7`] — the runtime comparisons: Ace vs CRL under the default
//!   protocol (Figure 7a) and SC vs application-specific protocols in Ace
//!   (Figure 7b).
//! * [`acec`] — the Ace-C benchmark kernels and their hand-written
//!   runtime-system counterparts for the compiler evaluation (Table 4).
//!
//! Binaries `fig7a`, `fig7b`, `table4`, and `ablation` print the tables;
//! the Criterion benches under `benches/` wrap the same computations.

// The Table 4 kernels transliterate the paper's C loops; explicit indexing is the idiom.
#![allow(clippy::needless_range_loop)]

pub mod acec;
pub mod fig7;
pub mod json;

/// Simulated milliseconds, the unit all tables print.
pub fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}
