//! Property tests: protocol correctness against a serial oracle.
//!
//! A random schedule of region writes (each slot written by exactly one
//! node per phase, phases separated by barriers) must read back exactly
//! the oracle's values under the default protocol, under the update
//! protocols, and on CRL. This is the linearizability-flavoured check the
//! paper's §6 asks for ("a theoretical framework of correctness would be
//! useful") reduced to executable form.

use ace::core::{run_ace, CostModel, RegionId};
use ace::crl::run_crl;
use ace::protocols::{make, ProtoSpec};
use proptest::prelude::*;

/// One phase: for each region, which node writes which value (or none).
#[derive(Debug, Clone)]
struct Schedule {
    nprocs: usize,
    nregions: usize,
    /// phases[p][r] = Some((writer, value))
    phases: Vec<Vec<Option<(usize, u64)>>>,
}

fn schedule() -> impl Strategy<Value = Schedule> {
    (2usize..5, 1usize..5, 1usize..4).prop_flat_map(|(nprocs, nregions, nphases)| {
        proptest::collection::vec(
            proptest::collection::vec(proptest::option::of((0..nprocs, 1u64..1000)), nregions),
            nphases,
        )
        .prop_map(move |phases| Schedule { nprocs, nregions, phases })
    })
}

/// What every node must observe after the last phase.
fn oracle(s: &Schedule) -> Vec<u64> {
    let mut vals = vec![0u64; s.nregions];
    for phase in &s.phases {
        for (r, w) in phase.iter().enumerate() {
            if let Some((_, v)) = w {
                vals[r] = *v;
            }
        }
    }
    vals
}

fn run_schedule_ace(s: &Schedule, proto: ProtoSpec) -> Vec<Vec<u64>> {
    let s = s.clone();
    let r = run_ace(s.nprocs, CostModel::free(), move |rt| {
        let space = rt.new_space(make(ProtoSpec::Sc));
        let regions: Vec<RegionId> = if rt.rank() == 0 {
            let ids: Vec<u64> = (0..s.nregions).map(|_| rt.gmalloc::<u64>(space, 1).0).collect();
            rt.bcast(0, &ids).iter().map(|&x| RegionId(x)).collect()
        } else {
            rt.bcast(0, &[]).iter().map(|&x| RegionId(x)).collect()
        };
        for &r in &regions {
            rt.map(r);
        }
        rt.barrier(space);
        rt.change_protocol(space, make(proto));
        for phase in &s.phases {
            for (r, w) in phase.iter().enumerate() {
                if let Some((writer, v)) = w {
                    if *writer == rt.rank() {
                        rt.start_write(regions[r]);
                        rt.with_mut::<u64, _>(regions[r], |d| d[0] = *v);
                        rt.end_write(regions[r]);
                    }
                }
            }
            rt.barrier(space);
        }
        let mut out = Vec::new();
        for &r in &regions {
            rt.start_read(r);
            out.push(rt.with::<u64, _>(r, |d| d[0]));
            rt.end_read(r);
        }
        rt.barrier(space);
        out
    });
    r.results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sc_matches_oracle(s in schedule()) {
        let want = oracle(&s);
        for node in run_schedule_ace(&s, ProtoSpec::Sc) {
            prop_assert_eq!(&node, &want);
        }
    }

    #[test]
    fn dynamic_update_matches_oracle(s in schedule()) {
        let want = oracle(&s);
        for node in run_schedule_ace(&s, ProtoSpec::DynUpdate) {
            prop_assert_eq!(&node, &want);
        }
    }

    #[test]
    fn migratory_matches_oracle(s in schedule()) {
        let want = oracle(&s);
        for node in run_schedule_ace(&s, ProtoSpec::Migratory) {
            prop_assert_eq!(&node, &want);
        }
    }

    #[test]
    fn crl_matches_oracle(s in schedule()) {
        let want = oracle(&s);
        let sc = s.clone();
        let r = run_crl(s.nprocs, CostModel::free(), move |crl| {
            let regions: Vec<RegionId> = if crl.rank() == 0 {
                let ids: Vec<u64> =
                    (0..sc.nregions).map(|_| crl.create_words(1).0).collect();
                crl.bcast(0, &ids).iter().map(|&x| RegionId(x)).collect()
            } else {
                crl.bcast(0, &[]).iter().map(|&x| RegionId(x)).collect()
            };
            for &r in &regions {
                crl.map(r);
            }
            crl.barrier();
            for phase in &sc.phases {
                for (r, w) in phase.iter().enumerate() {
                    if let Some((writer, v)) = w {
                        if *writer == crl.rank() {
                            crl.start_write(regions[r]);
                            crl.with_mut::<u64, _>(regions[r], |d| d[0] = *v);
                            crl.end_write(regions[r]);
                        }
                    }
                }
                crl.barrier();
            }
            let mut out = Vec::new();
            for &r in &regions {
                crl.start_read(r);
                out.push(crl.with::<u64, _>(r, |d| d[0]));
                crl.end_read(r);
            }
            crl.barrier();
            out
        });
        for node in r.results {
            prop_assert_eq!(&node, &want);
        }
    }

    #[test]
    fn protocol_chain_preserves_data(
        vals in proptest::collection::vec(1u64..10_000, 1..6),
        protos in proptest::collection::vec(0usize..4, 1..5),
    ) {
        // Writing under SC, then threading the space through a random
        // chain of protocol changes, must preserve region contents.
        let chain: Vec<ProtoSpec> = protos
            .iter()
            .map(|i| [ProtoSpec::Sc, ProtoSpec::DynUpdate, ProtoSpec::StaticUpdate, ProtoSpec::HomeOwned][*i])
            .collect();
        let vals2 = vals.clone();
        let r = run_ace(3, CostModel::free(), move |rt| {
            let space = rt.new_space(make(ProtoSpec::Sc));
            let regions: Vec<RegionId> = if rt.rank() == 0 {
                let ids: Vec<u64> =
                    vals2.iter().map(|_| rt.gmalloc::<u64>(space, 1).0).collect();
                rt.bcast(0, &ids).iter().map(|&x| RegionId(x)).collect()
            } else {
                rt.bcast(0, &[]).iter().map(|&x| RegionId(x)).collect()
            };
            for (&r, &v) in regions.iter().zip(&vals2) {
                rt.map(r);
                if rt.rank() == 0 {
                    rt.start_write(r);
                    rt.with_mut::<u64, _>(r, |d| d[0] = v);
                    rt.end_write(r);
                }
            }
            rt.barrier(space);
            // Everyone reads once (populating caches/subscriptions).
            for &r in &regions {
                rt.start_read(r);
                rt.with::<u64, _>(r, |d| d[0]);
                rt.end_read(r);
            }
            rt.barrier(space);
            for p in &chain {
                rt.change_protocol(space, make(*p));
            }
            let mut out = Vec::new();
            for &r in &regions {
                rt.start_read(r);
                out.push(rt.with::<u64, _>(r, |d| d[0]));
                rt.end_read(r);
            }
            rt.barrier(space);
            out
        });
        for node in r.results {
            prop_assert_eq!(&node, &vals);
        }
    }
}
