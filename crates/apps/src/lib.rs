//! The paper's five benchmark applications (Table 3), written once against
//! a runtime-agnostic DSM interface and runnable on both the Ace runtime
//! and the CRL baseline — the same-source methodology of §5.1 ("we use the
//! same source files for Ace and CRL ... by replacing CRL primitives with
//! the corresponding Ace calls").
//!
//! | app | paper input | sharing pattern | custom protocol (§5.2) |
//! |---|---|---|---|
//! | [`em3d`] | 1000+1000 vertices, 20% remote, degree 10, 100 steps | static bipartite producer/consumer | static update (≈5×), dynamic update (≈3.5×) |
//! | [`barnes`] | 16,384 bodies, 4 steps | bodies read by all, written by owner; shared octree | dynamic update on bodies |
//! | [`bsc`] | Tk15.O (here: synthetic block-banded SPD) | blocks written by owner, read in bulk | home-owned (marginal win; bulk transfer dominates) |
//! | [`tsp`] | 12 cities | central job counter + best bound | fetch-and-add counter |
//! | [`water`] | 512 molecules, 3 steps | phase-alternating: local intra, all-to-all force accumulation | null (intra) + pipelined writes (inter), ≈2× |
//!
//! Every app returns a deterministic verification value so the harnesses
//! can assert that protocol and runtime choices never change results.

// The kernels transliterate the paper's C loops; explicit indexing is the idiom.
#![allow(clippy::needless_range_loop)]

pub mod barnes;
pub mod bsc;
pub mod dsm;
pub mod em3d;
pub mod runner;
pub mod tsp;
pub mod water;

pub use dsm::{AceDsm, CrlDsm, Dsm};
pub use runner::{launch_ace, launch_crl, RunOutcome};

/// Which protocol assignment an app runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Everything under the default sequentially-consistent protocol.
    Sc,
    /// The application-specific protocols of §5.2.
    Custom,
    /// The adaptive engine picks per-space protocols at runtime from an
    /// app-chosen candidate set (pinned where semantics demand a fixed
    /// protocol, e.g. TSP's fetch-and-add counter).
    Adaptive,
}

impl Variant {
    /// Display name used by the harnesses.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Sc => "SC",
            Variant::Custom => "custom",
            Variant::Adaptive => "adaptive",
        }
    }
}
