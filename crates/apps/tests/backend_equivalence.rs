//! The execution backend must be invisible to the program. Whether each
//! simulated node free-runs on its own OS thread (`ExecBackend::Threads`)
//! or is cooperatively multiplexed over a fixed worker pool
//! (`ExecBackend::Multiplexed`), the machine executes the same logical
//! computation: the slot gate only changes *when* a node's thread is
//! allowed to run, never what it computes or sends. So the same
//! deterministic workload under both backends has to agree on every
//! logical observable — the verification value, the per-node digest of
//! every home region, the logical message/byte counts (total and per
//! protocol tag), the annotation counters, and the conformance checker's
//! verdict.
//!
//! As in `coalescing_equivalence`, EM3D and Water are bit-deterministic
//! end to end and get the strict comparison on every *logical*
//! observable. The wire-envelope grouping is excluded for the same
//! reason it is there: how many protocol replies batch up between two
//! blocking points depends on arrival timing, which both OS scheduling
//! and the slot gate perturb. Wire count stays bounded by the logical
//! count on both sides; its exact value is wall-clock jitter.
//!
//! The file ends with the scale checks the tentpole demands: EM3D runs to
//! completion at 1024 simulated nodes under the multiplexed backend, and
//! a deliberately oversubscribed pool (many more runnable nodes than
//! worker slots) still makes progress through barrier-heavy phases.

use std::collections::BTreeMap;

use ace_apps::{em3d, water, AceDsm, Variant};
use ace_core::{run_ace_with, CheckMode, CostModel, ExecBackend, OpCounters, Spmd, TraceConfig};
use proptest::prelude::*;

/// Logical observables for one traced run.
struct Obs {
    verification: f64,
    digests: Vec<u64>,
    counters: OpCounters,
    msgs: u64,
    wire_msgs: u64,
    bytes: u64,
    violations: u64,
    /// Protocol tag -> (logical messages, payload bytes).
    per_tag: BTreeMap<&'static str, (u64, u64)>,
}

fn run_app<F>(backend: ExecBackend, nprocs: usize, f: F) -> Obs
where
    F: Fn(&AceDsm) -> f64 + Sync,
{
    let r = run_ace_with(
        Spmd::builder()
            .nprocs(nprocs)
            .cost(CostModel::cm5())
            .trace(TraceConfig::on())
            .check(CheckMode::Log)
            .backend(backend),
        |rt| {
            let d = AceDsm::new(rt);
            let v = f(&d);
            // Rendezvous so every node's digest sees the settled final state.
            rt.machine_barrier();
            (v, rt.data_digest(), rt.counters())
        },
    );
    let mut counters = OpCounters::default();
    for (_, _, c) in &r.results {
        counters.merge(c);
    }
    let trace = r.trace.expect("trace requested");
    let per_tag = trace.summary().tags.iter().map(|t| (t.tag, (t.logical, t.bytes))).collect();
    Obs {
        verification: r.results[0].0,
        digests: r.results.iter().map(|(_, d, _)| *d).collect(),
        counters,
        msgs: r.stats.total_msgs(),
        wire_msgs: r.stats.total_wire_msgs(),
        bytes: r.stats.total_bytes(),
        violations: r.stats.total_violations(),
        per_tag,
    }
}

/// Full logical bit-equivalence across backends. The wire grouping is
/// the one timing-dependent observable (see the module comment); it is
/// only bounded, never compared exactly.
fn assert_equivalent(th: &Obs, mx: &Obs, ctx: &str) {
    assert_eq!(th.verification.to_bits(), mx.verification.to_bits(), "{ctx}: verification value");
    assert_eq!(th.digests, mx.digests, "{ctx}: per-node region digests");
    assert_eq!(th.msgs, mx.msgs, "{ctx}: total logical message count");
    assert_eq!(th.bytes, mx.bytes, "{ctx}: total payload bytes");
    assert_eq!(th.per_tag, mx.per_tag, "{ctx}: per-tag logical counts and bytes");
    let strip = |c: &OpCounters| OpCounters { wire_msgs: 0, ..c.clone() };
    assert_eq!(strip(&th.counters), strip(&mx.counters), "{ctx}: counters");
    assert_eq!(th.violations, mx.violations, "{ctx}: conformance report");
    assert_eq!(th.violations, 0, "{ctx}: checker counted violations");
    for (name, o) in [("threads", th), ("multiplexed", mx)] {
        assert!(
            o.wire_msgs <= o.msgs,
            "{ctx}/{name}: coalescing can only merge envelopes (wire={} logical={})",
            o.wire_msgs,
            o.msgs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn em3d_backend_preserves_behavior(
        seed in 0u64..1000,
        steps in 1usize..4,
        pct_remote in 5u32..50,
        custom in any::<bool>(),
    ) {
        let p = em3d::Params {
            e_nodes: 40,
            h_nodes: 40,
            degree: 3,
            pct_remote,
            steps,
            seed,
            hoist_maps: false,
        };
        let v = if custom { Variant::Custom } else { Variant::Sc };
        let th = run_app(ExecBackend::Threads, 4, |d| em3d::run(d, &p, v));
        let mx = run_app(ExecBackend::Multiplexed, 4, |d| em3d::run(d, &p, v));
        assert_equivalent(&th, &mx, "em3d");
    }

    #[test]
    fn water_backend_preserves_behavior(
        seed in 0u64..1000,
        molecules in 16usize..48,
        custom in any::<bool>(),
    ) {
        let p = water::Params { molecules, steps: 2, seed };
        let v = if custom { Variant::Custom } else { Variant::Sc };
        let th = run_app(ExecBackend::Threads, 4, |d| water::run(d, &p, v));
        let mx = run_app(ExecBackend::Multiplexed, 4, |d| water::run(d, &p, v));
        assert_equivalent(&th, &mx, "water");
    }
}

#[test]
fn em3d_backends_agree_at_64_nodes() {
    // The upper end of the equivalence sweep: 64 ranks is the last
    // machine size where the sharer sets stay in the single-word fast
    // path, and it comfortably oversubscribes the default worker pool.
    let p = em3d::Params {
        e_nodes: 128,
        h_nodes: 128,
        degree: 3,
        pct_remote: 25,
        steps: 2,
        seed: 11,
        hoist_maps: true,
    };
    let th = run_app(ExecBackend::Threads, 64, |d| em3d::run(d, &p, Variant::Custom));
    let mx = run_app(ExecBackend::Multiplexed, 64, |d| em3d::run(d, &p, Variant::Custom));
    assert_equivalent(&th, &mx, "em3d @ 64");
}

#[test]
fn water_backends_agree_on_a_starved_pool() {
    // Two worker slots for sixteen nodes: every barrier forces fifteen
    // handoffs through the gate. Starvation may slow the run but must not
    // change it.
    let p = water::Params { molecules: 32, steps: 2, seed: 5 };
    let th = run_app(ExecBackend::Threads, 16, |d| water::run(d, &p, Variant::Custom));
    let r = run_ace_with(
        Spmd::builder()
            .nprocs(16)
            .cost(CostModel::cm5())
            .trace(TraceConfig::on())
            .check(CheckMode::Log)
            .backend(ExecBackend::Multiplexed)
            .workers(2),
        |rt| {
            let d = AceDsm::new(rt);
            let v = water::run(&d, &p, Variant::Custom);
            rt.machine_barrier();
            (v, rt.data_digest(), rt.counters())
        },
    );
    assert_eq!(th.verification.to_bits(), r.results[0].0.to_bits(), "starved: verification");
    let digests: Vec<u64> = r.results.iter().map(|(_, d, _)| *d).collect();
    assert_eq!(th.digests, digests, "starved: digests");
    assert_eq!(th.msgs, r.stats.total_msgs(), "starved: logical messages");
    assert_eq!(th.violations, r.stats.total_violations(), "starved: conformance report");
}

#[test]
fn em3d_completes_at_1024_nodes_multiplexed() {
    // The acceptance bar for the scale-out engine: a 1024-node machine
    // constructs, runs EM3D to a finite verification value, and tears
    // down, all on a default dev box's worth of workers. The workload is
    // deliberately thin per node — the test is about the machine, and the
    // graph keeps one E and one H node per rank so every rank still
    // participates in the remote-edge exchange.
    let p = em3d::Params {
        e_nodes: 1024,
        h_nodes: 1024,
        degree: 2,
        pct_remote: 20,
        steps: 1,
        seed: 3,
        hoist_maps: true,
    };
    let r = run_ace_with(
        Spmd::builder().nprocs(1024).cost(CostModel::cm5()).backend(ExecBackend::Multiplexed),
        |rt| {
            let d = AceDsm::new(rt);
            em3d::run(&d, &p, Variant::Sc)
        },
    );
    assert_eq!(r.results.len(), 1024);
    assert!(r.results[0].is_finite(), "em3d @ 1024 lost its verification value");
    assert!(
        r.stats.total_wire_msgs() <= r.stats.total_msgs(),
        "coalescing can only merge envelopes"
    );
}
