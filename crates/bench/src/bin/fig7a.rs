//! Figure 7a: Ace runtime system versus CRL, both under the default
//! sequentially-consistent invalidation protocol.
//!
//! Usage: fig7a [--small|--paper] [--procs N] [--runs K] [--json [PATH]]
//!        [--trace PATH]  (re-runs EM3D traced and writes Chrome JSON)
//!
//! `--json` without a path writes `BENCH_fig7a.json` at the repo root,
//! the canonical location CI and EXPERIMENTS.md point at.

use ace_apps::Variant;
use ace_bench::fig7::{fig7a, write_trace, Scale};
use ace_bench::json::{self, JsonRow};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Default
    };
    let procs = arg_val(&args, "--procs").unwrap_or(8);
    let runs = arg_val(&args, "--runs").unwrap_or(3);

    println!("Figure 7a: Ace runtime vs CRL (SC protocol), {procs} procs, avg of {runs} runs");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>14}",
        "benchmark", "Ace (ms)", "CRL (ms)", "CRL/Ace", "adaptive (ms)"
    );
    let rows = fig7a(scale, procs, runs);
    for r in &rows {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>10.2} {:>14.2}",
            r.app,
            r.ace_ms,
            r.crl_ms,
            r.ratio,
            r.adaptive.sim_ms()
        );
    }
    println!("\n(simulated time on the CM-5-flavoured cost model; >1 means Ace is faster;");
    println!(" the adaptive column is Ace under the runtime protocol-selection engine)");

    if let Some(path) = json::out_path(&args, "BENCH_fig7a.json") {
        let mut out = Vec::new();
        for r in &rows {
            out.push(JsonRow::new("fig7a", &r.app, "ace", procs, r.ace));
            out.push(JsonRow::new("fig7a", &r.app, "crl", procs, r.crl));
            out.push(JsonRow::new("fig7a", &r.app, "adaptive", procs, r.adaptive));
        }
        json::write(&path, &out).expect("write --json file");
        println!("wrote {} rows to {}", out.len(), path.display());
    }

    if let Some(path) = arg_str(&args, "--trace") {
        write_trace("em3d", scale, Variant::Sc, procs, std::path::Path::new(&path))
            .expect("write --trace file");
    }
}

fn arg_str(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_val(args: &[String], key: &str) -> Option<usize> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
