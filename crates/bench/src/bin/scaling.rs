//! Processor-count scaling of the Figure 7b speedups (the paper's
//! machine had 32 processors; this sweeps 2..32 to show the protocol
//! advantage grows with sharing breadth).
//!
//! Usage: scaling [--app NAME]

use ace_apps::Variant;
use ace_bench::fig7::{run_ace_app, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .iter()
        .position(|a| a == "--app")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("em3d")
        .to_string();

    println!("{app}: custom-protocol speedup vs processor count (default scale)\n");
    println!("{:>6} {:>12} {:>14} {:>9}", "procs", "SC (ms)", "custom (ms)", "speedup");
    for procs in [2usize, 4, 8, 16, 32] {
        let sc = run_ace_app(&app, Scale::Small, Variant::Sc, procs);
        let cu = run_ace_app(&app, Scale::Small, Variant::Custom, procs);
        println!(
            "{procs:>6} {:>12.2} {:>14.2} {:>9.2}",
            sc.sim_ms(),
            cu.sim_ms(),
            sc.sim_ms() / cu.sim_ms()
        );
    }
}
