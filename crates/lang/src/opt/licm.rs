//! Moving calls out of loops (§4.2).
//!
//! "Once the set of protocols associated with each access is determined,
//! we perform loop invariance analysis on the arguments of calls to
//! protocol routines to identify the calls that can be moved out of loops.
//! `ACE_MAP` and `ACE_START_*` calls are moved above a loop, while
//! `ACE_END_*` calls are moved below a loop. This optimization is
//! performed only if all the possible protocols of an access are
//! optimizable."
//!
//! A candidate access's `Map`/`Start`/`End` must all sit inside the loop;
//! the mapped handle must be loop-invariant (a constant, a value defined
//! outside the loop, or a load of a local that the loop never stores);
//! the loop must contain no synchronization; and the loop must have a
//! unique exit block whose predecessors are all inside the loop (so the
//! sunk `End` runs exactly when the loop ran).

use std::collections::{HashMap, HashSet};

use crate::analysis::Facts;
use crate::config::SystemConfig;
use crate::ir::*;

/// Run the pass over every function.
pub fn run(prog: &mut Program, facts: &Facts, cfg: &SystemConfig) {
    for f in &mut prog.funcs {
        // Hoist repeatedly: after one loop's candidates move, outer loops
        // may expose further opportunities. Bounded by the access count.
        for _ in 0..64 {
            if !hoist_one(f, facts, cfg) {
                break;
            }
        }
    }
}

fn successors(t: &Term) -> Vec<BlockId> {
    match t {
        Term::Jump(b) => vec![*b],
        Term::Br { t, f, .. } => vec![*t, *f],
        Term::Ret(_) => vec![],
    }
}

/// Compute dominators (simple iterative bit-set algorithm).
fn dominators(f: &IFunc) -> Vec<HashSet<BlockId>> {
    let n = f.blocks.len();
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (b, blk) in f.blocks.iter().enumerate() {
        for s in successors(&blk.term) {
            preds[s].push(b);
        }
    }
    let all: HashSet<BlockId> = (0..n).collect();
    let mut dom: Vec<HashSet<BlockId>> = vec![all.clone(); n];
    dom[0] = HashSet::from([0]);
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            let mut newd: Option<HashSet<BlockId>> = None;
            for &p in &preds[b] {
                newd = Some(match newd {
                    None => dom[p].clone(),
                    Some(acc) => acc.intersection(&dom[p]).copied().collect(),
                });
            }
            let mut newd = newd.unwrap_or_default();
            newd.insert(b);
            if newd != dom[b] {
                dom[b] = newd;
                changed = true;
            }
        }
    }
    dom
}

/// All natural loops, as (header, body-set), innermost (smallest) first.
fn natural_loops(f: &IFunc) -> Vec<(BlockId, HashSet<BlockId>)> {
    let dom = dominators(f);
    let mut loops: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    for (b, blk) in f.blocks.iter().enumerate() {
        for s in successors(&blk.term) {
            if dom[b].contains(&s) {
                // back edge b -> s
                let body = loops.entry(s).or_default();
                body.insert(s);
                // walk predecessors from b up to the header
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body.insert(x) {
                        for (p, pb) in f.blocks.iter().enumerate() {
                            if successors(&pb.term).contains(&x) {
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }
    }
    let mut v: Vec<_> = loops.into_iter().collect();
    v.sort_by_key(|(h, body)| (body.len(), *h));
    v
}

/// The instruction that defines `reg` in `f`, if any (vregs are
/// single-assignment by construction of the lowering).
fn def_site(f: &IFunc, reg: VReg) -> Option<(BlockId, usize)> {
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            let d = match inst {
                Inst::ConstI(d, _) | Inst::ConstF(d, _) => Some(*d),
                Inst::BinOp { dst, .. }
                | Inst::Neg { dst, .. }
                | Inst::Not { dst, .. }
                | Inst::IntToF { dst, .. }
                | Inst::FToInt { dst, .. }
                | Inst::Mov { dst, .. }
                | Inst::LoadLocal { dst, .. }
                | Inst::LoadArr { dst, .. }
                | Inst::Map { dst, .. }
                | Inst::GLoad { dst, .. } => Some(*dst),
                Inst::Call { dst, .. } | Inst::Intrinsic { dst, .. } => *dst,
                _ => None,
            };
            if d == Some(reg) {
                return Some((bi, ii));
            }
        }
    }
    None
}

fn hoist_one(f: &mut IFunc, facts: &Facts, cfg: &SystemConfig) -> bool {
    let loops = natural_loops(f);
    for (header, body) in loops {
        if header == 0 {
            // The entry block cannot get a preheader.
            continue;
        }
        // No synchronization inside the loop.
        let has_sync = body.iter().any(|&b| f.blocks[b].insts.iter().any(|i| i.is_sync()));
        if has_sync {
            continue;
        }
        // Unique exit target with all predecessors inside the loop.
        let mut exits: HashSet<BlockId> = HashSet::new();
        for &b in &body {
            for s in successors(&f.blocks[b].term) {
                if !body.contains(&s) {
                    exits.insert(s);
                }
            }
        }
        if exits.len() != 1 {
            continue;
        }
        let exit = *exits.iter().next().unwrap();
        let exit_preds_ok = (0..f.blocks.len())
            .all(|p| !successors(&f.blocks[p].term).contains(&exit) || body.contains(&p));
        if !exit_preds_ok {
            continue;
        }

        // Locals stored anywhere in the loop are not invariant.
        let mut stored: HashSet<u32> = HashSet::new();
        for &b in &body {
            for i in &f.blocks[b].insts {
                match i {
                    Inst::StoreLocal { slot, .. } | Inst::StoreArr { slot, .. } => {
                        stored.insert(*slot);
                    }
                    _ => {}
                }
            }
        }

        // Candidate accesses: full triple inside the loop, invariant
        // handle, all protocols optimizable.
        let sites = super::index_accesses(f);
        let mut moved_any = false;
        type Hoist = (AccessId, super::AccessSites, Option<(BlockId, usize)>);
        let mut plan: Vec<Hoist> = Vec::new();
        for (aid, s) in &sites {
            let (Some(m), Some(st), Some(en)) = (s.map, s.start, s.end) else { continue };
            if !(body.contains(&m.0) && body.contains(&st.0) && body.contains(&en.0)) {
                continue;
            }
            if !facts.all_optimizable(*aid, cfg) {
                continue;
            }
            let Inst::Map { handle, .. } = f.blocks[m.0].insts[m.1] else { continue };
            // Invariance: defined outside the loop, or an in-loop
            // LoadLocal/ConstI of an unstored slot we can clone out.
            let hoist_def = match def_site(f, handle) {
                None => None, // parameter-like: defined outside, fine
                Some((db, di)) => {
                    if !body.contains(&db) {
                        None
                    } else {
                        match &f.blocks[db].insts[di] {
                            Inst::LoadLocal { slot, .. } if !stored.contains(slot) => {
                                Some((db, di))
                            }
                            Inst::ConstI(..) | Inst::ConstF(..) => Some((db, di)),
                            _ => continue,
                        }
                    }
                }
            };
            plan.push((*aid, s.clone(), hoist_def));
        }
        if plan.is_empty() {
            continue;
        }

        // Build the preheader (appended; indices stay stable) and retarget
        // out-of-loop edges into the header.
        let pre = f.blocks.len();
        f.blocks.push(Block { insts: Vec::new(), term: Term::Jump(header) });
        for b in 0..pre {
            if body.contains(&b) {
                continue;
            }
            retarget(&mut f.blocks[b].term, header, pre);
        }

        // Move instructions. Collect them (by identity) first, then delete.
        let mut to_pre: Vec<Inst> = Vec::new();
        let mut to_exit: Vec<Inst> = Vec::new();
        let mut delete: Vec<(BlockId, usize)> = Vec::new();
        for (_aid, s, hoist_def) in &plan {
            if let Some((db, di)) = hoist_def {
                to_pre.push(f.blocks[*db].insts[*di].clone());
                delete.push((*db, *di));
            }
            let (mb, mi) = s.map.unwrap();
            to_pre.push(f.blocks[mb].insts[mi].clone());
            delete.push((mb, mi));
            let (sb, si) = s.start.unwrap();
            to_pre.push(f.blocks[sb].insts[si].clone());
            delete.push((sb, si));
            let (eb, ei) = s.end.unwrap();
            to_exit.push(f.blocks[eb].insts[ei].clone());
            delete.push((eb, ei));
            moved_any = true;
        }
        // Delete in descending index order per block.
        delete.sort_by_key(|&(b, i)| (b, std::cmp::Reverse(i)));
        for (b, i) in delete {
            f.blocks[b].insts.remove(i);
        }
        f.blocks[pre].insts = to_pre;
        for (k, e) in to_exit.into_iter().enumerate() {
            f.blocks[exit].insts.insert(k, e);
        }
        if moved_any {
            return true;
        }
    }
    false
}

fn retarget(t: &mut Term, from: BlockId, to: BlockId) {
    match t {
        Term::Jump(b) => {
            if *b == from {
                *b = to;
            }
        }
        Term::Br { t, f, .. } => {
            if *t == from {
                *t = to;
            }
            if *f == from {
                *f = to;
            }
        }
        Term::Ret(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SystemConfig;
    use crate::ir::Inst;
    use crate::{compile, OptLevel};

    /// Count annotations inside loop bodies by compiling at O0 vs LICM.
    fn annotation_count(src: &str, level: OptLevel) -> usize {
        let cfg = SystemConfig::builtin();
        let p = compile(src, &cfg, level).unwrap();
        p.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Map { .. }
                        | Inst::StartRead { .. }
                        | Inst::EndRead { .. }
                        | Inst::StartWrite { .. }
                        | Inst::EndWrite { .. }
                )
            })
            .count()
    }

    const HOISTABLE: &str = r#"
        void main() {
            space s = new_space("Update");
            shared double *v = (shared double*) gmalloc(s, 16);
            int i;
            double acc = 0.0;
            for (i = 0; i < 16; i = i + 1) {
                acc = acc + v[i];
            }
        }
    "#;

    #[test]
    fn static_count_unchanged_but_moved() {
        // LICM moves, it does not delete: the same number of annotation
        // instructions exist before and after.
        assert_eq!(
            annotation_count(HOISTABLE, OptLevel::O0),
            annotation_count(HOISTABLE, OptLevel::Licm)
        );
    }

    #[test]
    fn hoisted_access_leaves_the_loop() {
        // Run both versions and compare *dynamic* start counts: at O0 the
        // loop dispatches 16 start_reads; after LICM exactly 1.
        use ace_core::{run_ace, CostModel};
        let cfg = SystemConfig::builtin();
        let p0 = compile(HOISTABLE, &cfg, OptLevel::O0).unwrap();
        let p1 = compile(HOISTABLE, &cfg, OptLevel::Licm).unwrap();
        let c0 = run_ace(1, CostModel::free(), |rt| {
            crate::vm::run_program(rt, &p0);
            rt.counters().start_reads
        });
        let c1 = run_ace(1, CostModel::free(), |rt| {
            crate::vm::run_program(rt, &p1);
            rt.counters().start_reads
        });
        assert_eq!(c0.results[0], 16);
        assert_eq!(c1.results[0], 1);
    }

    #[test]
    fn non_optimizable_protocol_blocks_hoisting() {
        let sc = HOISTABLE.replace("Update", "SC");
        use ace_core::{run_ace, CostModel};
        let cfg = SystemConfig::builtin();
        let p1 = compile(&sc, &cfg, OptLevel::Licm).unwrap();
        let c1 = run_ace(1, CostModel::free(), |rt| {
            crate::vm::run_program(rt, &p1);
            rt.counters().start_reads
        });
        assert_eq!(c1.results[0], 16, "SC accesses must not be hoisted");
    }

    #[test]
    fn sync_in_loop_blocks_hoisting() {
        let src = r#"
            void main() {
                space s = new_space("Update");
                shared double *v = (shared double*) gmalloc(s, 4);
                int i;
                double acc = 0.0;
                for (i = 0; i < 4; i = i + 1) {
                    acc = acc + v[0];
                    barrier(s);
                }
            }
        "#;
        use ace_core::{run_ace, CostModel};
        let cfg = SystemConfig::builtin();
        let p1 = compile(src, &cfg, OptLevel::Licm).unwrap();
        let c1 = run_ace(1, CostModel::free(), |rt| {
            crate::vm::run_program(rt, &p1);
            rt.counters().start_reads
        });
        assert_eq!(c1.results[0], 4, "barrier in loop must block hoisting");
    }

    #[test]
    fn results_preserved_by_licm() {
        let src = r#"
            double main() {
                space s = new_space("Update");
                shared double *v = (shared double*) gmalloc(s, 8);
                int i;
                for (i = 0; i < 8; i = i + 1) { v[i] = i * 2.0; }
                double acc = 0.0;
                for (i = 0; i < 8; i = i + 1) { acc = acc + v[i]; }
                return acc;
            }
        "#;
        use ace_core::{run_ace, CostModel};
        let cfg = SystemConfig::builtin();
        for level in [OptLevel::O0, OptLevel::Licm] {
            let p = compile(src, &cfg, level).unwrap();
            let r =
                run_ace(1, CostModel::free(), |rt| crate::vm::run_program(rt, &p).unwrap().as_f());
            assert_eq!(r.results[0], 56.0, "wrong result at {level:?}");
        }
    }
}
