//! Quickstart: the Ace programming model in one file.
//!
//! Launches a 4-processor simulated machine, allocates a shared region
//! from a space, and shows the paper's headline trick: changing the
//! data structure's coherence protocol with one call
//! (`Ace_ChangeProtocol`), without touching the access code.
//!
//! Run with: `cargo run --release --example quickstart`

use ace::core::{run_ace, CostModel, RegionId};
use ace::protocols::{make, ProtoSpec};

fn main() {
    let outcome = run_ace(4, CostModel::cm5(), |rt| {
        // 1. Create a space with the default sequentially-consistent
        //    protocol (Ace_NewSpace).
        let space = rt.new_space(make(ProtoSpec::Sc));

        // 2. Node 0 allocates a region (Ace_GMalloc) and broadcasts its
        //    id — region ids are plain values, meaningful everywhere.
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc::<f64>(space, 8).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };

        // 3. Map it and access it between START/END annotations.
        rt.map(rid);
        if rt.rank() == 0 {
            rt.start_write(rid);
            rt.with_mut::<f64, _>(rid, |v| {
                for (i, x) in v.iter_mut().enumerate() {
                    *x = i as f64 * 1.5;
                }
            });
            rt.end_write(rid);
        }
        rt.barrier(space);

        rt.start_read(rid);
        let sum: f64 = rt.with::<f64, _>(rid, |v| v.iter().sum());
        rt.end_read(rid);
        assert_eq!(sum, 42.0);

        // 4. The two-line protocol swap of Figure 2: producer/consumer
        //    data moves to a dynamic update protocol; the access code
        //    below is untouched.
        rt.change_protocol(space, make(ProtoSpec::DynUpdate));

        for step in 0..3u64 {
            if rt.rank() == 0 {
                rt.start_write(rid);
                rt.with_mut::<f64, _>(rid, |v| v[0] = step as f64 + 1.0);
                rt.end_write(rid);
            }
            rt.barrier(space); // update protocol: pushes drain here
            rt.start_read(rid);
            let seen = rt.with::<f64, _>(rid, |v| v[0]);
            rt.end_read(rid);
            assert_eq!(seen, step as f64 + 1.0);
            rt.barrier(space);
        }
        rt.counters().proto_msgs
    });

    println!("quickstart ran on 4 simulated processors");
    println!("  simulated time : {:.3} ms", outcome.sim_ns as f64 / 1e6);
    println!("  wall time      : {:.3} ms", outcome.wall.as_secs_f64() * 1e3);
    println!("  messages       : {}", outcome.stats.total_msgs());
    println!("all assertions passed — same access code, two protocols");
}
