//! Fast-mask invariant tests.
//!
//! The contract of [`RegionEntry::fast`] is: a set bit promises that
//! running the corresponding hook *right now* would neither send a
//! message nor mutate any entry or space state — which is exactly what
//! licenses the runtime to skip the hook. These tests drive each protocol
//! into its interesting states and, at every checkpoint, invoke each hook
//! whose fast bit is set directly on the protocol object, asserting that
//! a full snapshot of the observable state is unchanged.

use ace_core::{run_ace, AceRt, Actions, CostModel, Protocol, RegionEntry, RegionId};
use std::rc::Rc;

use crate::{
    DynamicUpdate, FetchAddCounter, HomeOwned, Migratory, NullProtocol, PipelinedWrite,
    SeqInvalidate, StaticUpdate,
};

/// Everything a no-op access hook must leave untouched.
#[derive(Debug, PartialEq)]
struct Snap {
    st: u32,
    aux: u64,
    sharers: u64,
    owner: i32,
    pending: u32,
    blocked: usize,
    twin: Option<Vec<u64>>,
    data: Vec<u64>,
    fast: Actions,
    msgs_sent: u64,
    outstanding: u64,
}

fn snap(rt: &AceRt, e: &RegionEntry) -> Snap {
    Snap {
        st: e.st.get(),
        aux: e.aux.get(),
        sharers: e.sharers.fingerprint(),
        owner: e.owner.get(),
        pending: e.pending.get(),
        blocked: e.blocked.borrow().len(),
        twin: e.twin.borrow().as_ref().map(|t| t.to_vec()),
        data: e.data.borrow().to_vec(),
        fast: e.fast.get(),
        msgs_sent: rt.node().stats().logical_msgs,
        outstanding: rt.space(e.space).outstanding.get(),
    }
}

/// For every access hook whose fast bit is set, run the hook and assert
/// the snapshot is bit-identical afterwards. (The mask is also part of
/// the snapshot, so this doubles as a check that `refresh_fast` is a
/// pure function of the state it just left unchanged.)
fn assert_fast_noops<P: Protocol>(rt: &AceRt, p: &P, rid: RegionId, ctx: &str) {
    type HookFn<P> = fn(&P, &AceRt, &RegionEntry);
    let hooks: [(Actions, &str, HookFn<P>); 4] = [
        (Actions::START_READ, "start_read", P::start_read),
        (Actions::END_READ, "end_read", P::end_read),
        (Actions::START_WRITE, "start_write", P::start_write),
        (Actions::END_WRITE, "end_write", P::end_write),
    ];
    let e = rt.entry(rid);
    let mask = e.fast.get();
    assert_ne!(mask, Actions::empty(), "{ctx}: expected some fast bits");
    for (bit, name, hook) in hooks {
        if !mask.contains(bit) {
            continue;
        }
        let before = snap(rt, &e);
        hook(p, rt, &e);
        let after = snap(rt, &e);
        assert_eq!(before, after, "{ctx}: fast bit for {name} set but hook was not a no-op");
    }
}

fn shared_region<P: Protocol + 'static>(rt: &AceRt, p: Rc<P>, words: usize) -> RegionId {
    let s = rt.new_space(p);
    let rid = if rt.rank() == 0 {
        RegionId(rt.bcast(0, &[rt.gmalloc_words(s, words).0])[0])
    } else {
        RegionId(rt.bcast(0, &[])[0])
    };
    rt.map(rid);
    rid
}

#[test]
fn null_fast_bits_are_noops() {
    run_ace(2, CostModel::free(), |rt| {
        let p = Rc::new(NullProtocol::new());
        let rid = shared_region(rt, p.clone(), 2);
        assert_fast_noops(rt, &*p, rid, "null (either side)");
        rt.machine_barrier();
    });
}

#[test]
fn counter_fast_bits_are_noops() {
    run_ace(2, CostModel::free(), |rt| {
        let p = Rc::new(FetchAddCounter::new());
        let rid = shared_region(rt, p.clone(), 1);
        rt.machine_barrier();
        rt.lock(rid);
        rt.start_read(rid);
        let t = rt.with::<u64, _>(rid, |d| d[0]);
        rt.end_read(rid);
        rt.start_write(rid);
        rt.with_mut::<u64, _>(rid, |d| d[0] = t + 1);
        rt.end_write(rid);
        rt.unlock(rid);
        assert_fast_noops(rt, &*p, rid, "counter after a ticket");
        rt.machine_barrier();
    });
}

#[test]
fn seq_inv_fast_bits_are_noops() {
    run_ace(2, CostModel::free(), |rt| {
        let p = Rc::new(SeqInvalidate::new());
        let rid = shared_region(rt, p.clone(), 1);
        rt.machine_barrier();
        if rt.rank() == 0 {
            assert_fast_noops(rt, &*p, rid, "sc home quiescent");
        }
        rt.machine_barrier();
        if rt.rank() == 1 {
            rt.start_read(rid);
            rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            assert_fast_noops(rt, &*p, rid, "sc remote shared");
        }
        rt.machine_barrier();
        if rt.rank() == 0 {
            assert_fast_noops(rt, &*p, rid, "sc home with a sharer");
        }
        rt.machine_barrier();
        if rt.rank() == 1 {
            rt.start_write(rid);
            rt.with_mut::<u64, _>(rid, |d| d[0] = 7);
            rt.end_write(rid);
            assert_fast_noops(rt, &*p, rid, "sc remote exclusive");
        }
        rt.machine_barrier();
    });
}

#[test]
fn dyn_update_fast_bits_are_noops() {
    run_ace(2, CostModel::free(), |rt| {
        let p = Rc::new(DynamicUpdate::new());
        let rid = shared_region(rt, p.clone(), 1);
        rt.machine_barrier();
        if rt.rank() == 0 {
            assert_fast_noops(rt, &*p, rid, "dyn-update home");
        }
        rt.machine_barrier();
        if rt.rank() == 1 {
            rt.start_read(rid);
            rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            assert_fast_noops(rt, &*p, rid, "dyn-update joined sharer");
        }
        rt.machine_barrier();
    });
}

#[test]
fn static_update_fast_bits_are_noops() {
    run_ace(2, CostModel::free(), |rt| {
        let p = Rc::new(StaticUpdate::new());
        let rid = shared_region(rt, p.clone(), 1);
        rt.machine_barrier();
        if rt.rank() == 0 {
            assert_fast_noops(rt, &*p, rid, "static-update home");
        } else {
            assert_fast_noops(rt, &*p, rid, "static-update subscriber");
        }
        rt.machine_barrier();
    });
}

#[test]
fn home_owned_fast_bits_are_noops() {
    run_ace(2, CostModel::free(), |rt| {
        let p = Rc::new(HomeOwned::new());
        let rid = shared_region(rt, p.clone(), 2);
        rt.machine_barrier();
        if rt.rank() == 0 {
            assert_fast_noops(rt, &*p, rid, "home-owned home");
        } else {
            // Before the first pull the copy is invalid: starts are slow.
            assert!(!rt.entry(rid).fast.get().contains(Actions::START_READ));
            rt.start_read(rid);
            rt.with::<u64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            assert_fast_noops(rt, &*p, rid, "home-owned consumer with copy");
        }
        rt.machine_barrier();
    });
}

#[test]
fn migratory_fast_bits_are_noops() {
    run_ace(2, CostModel::free(), |rt| {
        let p = Rc::new(Migratory::new());
        let rid = shared_region(rt, p.clone(), 1);
        rt.machine_barrier();
        if rt.rank() == 0 {
            assert_fast_noops(rt, &*p, rid, "migratory home, master quiescent");
        }
        rt.machine_barrier();
        if rt.rank() == 1 {
            rt.start_write(rid);
            rt.with_mut::<u64, _>(rid, |d| d[0] += 1);
            rt.end_write(rid);
            assert_fast_noops(rt, &*p, rid, "migratory remote owner");
        }
        rt.machine_barrier();
        if rt.rank() == 0 {
            // Remote holds the copy: starts must be slow (they recall),
            // ends stay fast (nothing parked).
            let mask = rt.entry(rid).fast.get();
            assert!(!mask.contains(Actions::START_READ));
            assert!(mask.contains(Actions::END_READ));
            assert_fast_noops(rt, &*p, rid, "migratory home, copy away");
        }
        rt.machine_barrier();
    });
}

#[test]
fn pipelined_fast_bits_are_noops() {
    run_ace(2, CostModel::free(), |rt| {
        let p = Rc::new(PipelinedWrite::new());
        let rid = shared_region(rt, p.clone(), 1);
        rt.machine_barrier();
        if rt.rank() == 0 {
            assert_fast_noops(rt, &*p, rid, "pipelined home");
        } else {
            rt.start_read(rid);
            rt.with::<f64, _>(rid, |d| d[0]);
            rt.end_read(rid);
            // Copy resident but no twin yet: reads fast, writes slow.
            let mask = rt.entry(rid).fast.get();
            assert!(mask.contains(Actions::START_READ));
            assert!(!mask.contains(Actions::START_WRITE));
            assert_fast_noops(rt, &*p, rid, "pipelined reader with copy");

            rt.start_write(rid);
            rt.with_mut::<f64, _>(rid, |d| d[0] += 1.0);
            rt.end_write(rid);
            // Twin in place: start_write joins the fast set; end_write
            // stays slow (it ships a delta home).
            let mask = rt.entry(rid).fast.get();
            assert!(mask.contains(Actions::START_WRITE));
            assert!(!mask.contains(Actions::END_WRITE));
            assert_fast_noops(rt, &*p, rid, "pipelined writer with twin");
        }
        rt.machine_barrier();
    });
}
