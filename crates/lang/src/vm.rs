//! The SPMD bytecode VM: executes compiled Ace-C on the Ace runtime.
//!
//! Every simulated processor runs the same program (the paper's SPMD
//! model, §3.1). Annotation instructions call into [`ace_core::AceRt`]
//! according to their resolved [`DispatchMode`]: `Dispatch` pays the
//! space-indirection cost, `Direct` pays the monomorphic-call cost, and
//! `Removed` annotations are simply gone — which is exactly the cost
//! structure Table 4 measures.

use std::collections::HashMap;
use std::rc::Rc;

use ace_core::{AceRt, Protocol, RegionId, SpaceId};
use ace_protocols::{make, ProtoSpec};

use crate::ir::*;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer.
    I(i64),
    /// Float.
    F(f64),
    /// Region handle.
    H(u64),
    /// Space handle.
    S(u32),
}

impl Value {
    /// As integer (bit-reinterpreting handles; truncating is a bug).
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::H(v) => v as i64,
            Value::S(v) => v as i64,
            Value::F(v) => v as i64,
        }
    }

    /// As float.
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(v) => v as f64,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// As region handle.
    pub fn as_h(self) -> RegionId {
        match self {
            Value::H(v) => RegionId(v),
            Value::I(v) => RegionId(v as u64),
            other => panic!("expected handle, got {other:?}"),
        }
    }

    /// As space handle.
    pub fn as_s(self) -> SpaceId {
        match self {
            Value::S(v) => SpaceId(v),
            other => panic!("expected space, got {other:?}"),
        }
    }

    /// Raw 64-bit image for shared-memory storage.
    fn to_bits(self) -> u64 {
        match self {
            Value::I(v) => v as u64,
            Value::F(v) => v.to_bits(),
            Value::H(v) => v,
            Value::S(v) => v as u64,
        }
    }

    fn from_bits(bits: u64, ty: ValTy) -> Value {
        match ty {
            ValTy::I => Value::I(bits as i64),
            ValTy::F => Value::F(f64::from_bits(bits)),
            ValTy::H => Value::H(bits),
            ValTy::S => Value::S(bits as u32),
        }
    }
}

enum SlotVal {
    Scalar(Value),
    Array(Vec<Value>),
}

/// A reusable activation record: the register file and local slots for
/// one call. Pooled per function so repeated calls (the common case for
/// kernels called once per iteration) reuse their allocations instead of
/// reallocating `regs`/`slots` on every `Vm::call`.
struct Frame {
    regs: Vec<Value>,
    slots: Vec<SlotVal>,
}

struct Vm<'a, 'n> {
    rt: &'a AceRt<'n>,
    prog: &'a Program,
    directs: HashMap<ProtoSpec, Rc<dyn Protocol>>,
    /// Per-function pools of retired frames, indexed by `FuncId`. More
    /// than one entry per function only under recursion.
    frames: Vec<Vec<Frame>>,
}

/// Execute the program's `main` on this node's runtime; returns main's
/// return value, if any.
pub fn run_program(rt: &AceRt, prog: &Program) -> Option<Value> {
    let mut frames = Vec::new();
    frames.resize_with(prog.funcs.len(), Vec::new);
    let mut vm = Vm { rt, prog, directs: HashMap::new(), frames };
    vm.call(prog.main, Vec::new())
}

impl Vm<'_, '_> {
    fn direct(&mut self, spec: ProtoSpec) -> Rc<dyn Protocol> {
        self.directs.entry(spec).or_insert_with(|| make(spec)).clone()
    }

    /// Check a frame out of `fid`'s pool (or build a fresh one) with
    /// registers zeroed and slots reset to their default values.
    fn take_frame(&mut self, fid: FuncId) -> Frame {
        let f = &self.prog.funcs[fid];
        match self.frames[fid].pop() {
            Some(mut frame) => {
                frame.regs.clear();
                frame.regs.resize(f.nregs as usize, Value::I(0));
                debug_assert_eq!(frame.slots.len(), f.slots.len());
                for (sv, s) in frame.slots.iter_mut().zip(&f.slots) {
                    match (sv, s) {
                        (SlotVal::Scalar(v), Slot::Scalar(t)) => *v = default_val(*t),
                        (SlotVal::Array(v), Slot::Array(t, len)) => {
                            v.clear();
                            v.resize(*len, default_val(*t));
                        }
                        (sv, s) => {
                            *sv = match s {
                                Slot::Scalar(t) => SlotVal::Scalar(default_val(*t)),
                                Slot::Array(t, len) => SlotVal::Array(vec![default_val(*t); *len]),
                            }
                        }
                    }
                }
                frame
            }
            None => Frame {
                regs: vec![Value::I(0); f.nregs as usize],
                slots: f
                    .slots
                    .iter()
                    .map(|s| match s {
                        Slot::Scalar(t) => SlotVal::Scalar(default_val(*t)),
                        Slot::Array(t, len) => SlotVal::Array(vec![default_val(*t); *len]),
                    })
                    .collect(),
            },
        }
    }

    fn call(&mut self, fid: FuncId, args: Vec<Value>) -> Option<Value> {
        let f = &self.prog.funcs[fid];
        let mut frame = self.take_frame(fid);
        for (i, a) in args.into_iter().enumerate() {
            frame.slots[i] = SlotVal::Scalar(a);
        }
        let mut bb: BlockId = 0;
        let ret = loop {
            let block = &f.blocks[bb];
            for inst in &block.insts {
                self.exec(inst, &mut frame.regs, &mut frame.slots);
            }
            match &block.term {
                Term::Jump(t) => bb = *t,
                Term::Br { cond, t, f: fb } => {
                    bb = if frame.regs[*cond as usize].as_i() != 0 { *t } else { *fb };
                }
                Term::Ret(r) => break r.map(|r| frame.regs[r as usize]),
            }
        };
        self.frames[fid].push(frame);
        ret
    }

    fn exec(&mut self, inst: &Inst, regs: &mut [Value], slots: &mut [SlotVal]) {
        match inst {
            Inst::ConstI(d, v) => regs[*d as usize] = Value::I(*v),
            Inst::ConstF(d, v) => regs[*d as usize] = Value::F(*v),
            Inst::BinOp { dst, op, ty, a, b } => {
                let (a, b) = (regs[*a as usize], regs[*b as usize]);
                regs[*dst as usize] = binop(*op, *ty, a, b);
            }
            Inst::Neg { dst, ty, a } => {
                regs[*dst as usize] = match ty {
                    ValTy::F => Value::F(-regs[*a as usize].as_f()),
                    _ => Value::I(-regs[*a as usize].as_i()),
                };
            }
            Inst::Not { dst, a } => {
                regs[*dst as usize] = Value::I((regs[*a as usize].as_i() == 0) as i64);
            }
            Inst::IntToF { dst, a } => {
                regs[*dst as usize] = Value::F(regs[*a as usize].as_i() as f64);
            }
            Inst::FToInt { dst, a } => {
                regs[*dst as usize] = Value::I(regs[*a as usize].as_f() as i64);
            }
            Inst::Mov { dst, a } => regs[*dst as usize] = regs[*a as usize],
            Inst::LoadLocal { dst, slot } => {
                let SlotVal::Scalar(v) = &slots[*slot as usize] else {
                    panic!("scalar load of array slot")
                };
                regs[*dst as usize] = *v;
            }
            Inst::StoreLocal { slot, a } => {
                slots[*slot as usize] = SlotVal::Scalar(regs[*a as usize]);
            }
            Inst::LoadArr { dst, slot, idx } => {
                let i = regs[*idx as usize].as_i() as usize;
                let SlotVal::Array(v) = &slots[*slot as usize] else {
                    panic!("array load of scalar slot")
                };
                regs[*dst as usize] = v[i];
            }
            Inst::StoreArr { slot, idx, a } => {
                let i = regs[*idx as usize].as_i() as usize;
                let val = regs[*a as usize];
                let SlotVal::Array(v) = &mut slots[*slot as usize] else {
                    panic!("array store of scalar slot")
                };
                v[i] = val;
            }
            Inst::Map { mode, dst, handle, .. } => {
                let h = regs[*handle as usize].as_h();
                // Mapping always translates; only the hook dispatch varies
                // (and the default on_map hooks are where update-protocol
                // joins happen, so Direct still runs them).
                let _ = mode;
                self.rt.map(h);
                regs[*dst as usize] = Value::H(h.0);
            }
            Inst::StartRead { mode, handle, .. } => {
                let h = regs[*handle as usize].as_h();
                match mode {
                    DispatchMode::Dispatch => self.rt.start_read(h),
                    DispatchMode::Direct(p) => {
                        let p = self.direct(*p);
                        self.rt.start_read_direct(h, &*p);
                    }
                    DispatchMode::Removed => unreachable!("removed insts are deleted"),
                }
            }
            Inst::EndRead { mode, handle, .. } => {
                let h = regs[*handle as usize].as_h();
                match mode {
                    DispatchMode::Dispatch => self.rt.end_read(h),
                    DispatchMode::Direct(p) => {
                        let p = self.direct(*p);
                        self.rt.end_read_direct(h, &*p);
                    }
                    DispatchMode::Removed => unreachable!(),
                }
            }
            Inst::StartWrite { mode, handle, .. } => {
                let h = regs[*handle as usize].as_h();
                match mode {
                    DispatchMode::Dispatch => self.rt.start_write(h),
                    DispatchMode::Direct(p) => {
                        let p = self.direct(*p);
                        self.rt.start_write_direct(h, &*p);
                    }
                    DispatchMode::Removed => unreachable!(),
                }
            }
            Inst::EndWrite { mode, handle, .. } => {
                let h = regs[*handle as usize].as_h();
                match mode {
                    DispatchMode::Dispatch => self.rt.end_write(h),
                    DispatchMode::Direct(p) => {
                        let p = self.direct(*p);
                        self.rt.end_write_direct(h, &*p);
                    }
                    DispatchMode::Removed => unreachable!(),
                }
            }
            Inst::Lock { mode, handle, .. } => {
                let h = regs[*handle as usize].as_h();
                match mode {
                    DispatchMode::Dispatch => self.rt.lock(h),
                    DispatchMode::Direct(p) => {
                        let p = self.direct(*p);
                        self.rt.lock_direct(h, &*p);
                    }
                    DispatchMode::Removed => unreachable!(),
                }
            }
            Inst::Unlock { mode, handle, .. } => {
                let h = regs[*handle as usize].as_h();
                match mode {
                    DispatchMode::Dispatch => self.rt.unlock(h),
                    DispatchMode::Direct(p) => {
                        let p = self.direct(*p);
                        self.rt.unlock_direct(h, &*p);
                    }
                    DispatchMode::Removed => unreachable!(),
                }
            }
            Inst::GLoad { dst, handle, off, ty } => {
                let h = regs[*handle as usize].as_h();
                let o = regs[*off as usize].as_i() as usize;
                self.rt.charge_mem(1);
                let bits = self.rt.with_unchecked::<u64, _>(h, |d| d[o]);
                regs[*dst as usize] = Value::from_bits(bits, *ty);
            }
            Inst::GStore { handle, off, val } => {
                let h = regs[*handle as usize].as_h();
                let o = regs[*off as usize].as_i() as usize;
                let bits = regs[*val as usize].to_bits();
                self.rt.charge_mem(1);
                self.rt.with_mut_unchecked::<u64, _>(h, |d| d[o] = bits);
            }
            Inst::Call { dst, func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| regs[*a as usize]).collect();
                let r = self.call(*func, vals);
                if let Some(d) = dst {
                    regs[*d as usize] = r.expect("non-void call returned nothing");
                }
            }
            Inst::Intrinsic { dst, which, args } => {
                let v = self.intrinsic(*which, args, regs);
                if let Some(d) = dst {
                    regs[*d as usize] = v;
                }
            }
        }
    }

    fn intrinsic(&mut self, which: Intr, args: &[VReg], regs: &[Value]) -> Value {
        let rt = self.rt;
        match which {
            Intr::NewSpace { spec, .. } => Value::S(rt.new_space(make(spec)).0),
            Intr::ChangeProtocol { spec } => {
                rt.change_protocol(regs[args[0] as usize].as_s(), make(spec));
                Value::I(0)
            }
            Intr::Gmalloc { elem_words } => {
                let s = regs[args[0] as usize].as_s();
                let n = regs[args[1] as usize].as_i().max(0) as usize;
                let words = (n * elem_words as usize).max(1);
                Value::H(rt.gmalloc_words(s, words).0)
            }
            Intr::Barrier => {
                rt.barrier(regs[args[0] as usize].as_s());
                Value::I(0)
            }
            Intr::Rank => Value::I(rt.rank() as i64),
            Intr::Nprocs => Value::I(rt.nprocs() as i64),
            Intr::BcastI => {
                let root = regs[args[0] as usize].as_i() as usize;
                let v = regs[args[1] as usize].as_i() as u64;
                Value::I(rt.bcast(root, &[v])[0] as i64)
            }
            Intr::BcastP => {
                let root = regs[args[0] as usize].as_i() as usize;
                let v = regs[args[1] as usize].as_h().0;
                Value::H(rt.bcast(root, &[v])[0])
            }
            Intr::ReduceAddF => {
                Value::F(rt.allreduce_f64(regs[args[0] as usize].as_f(), |a, b| a + b))
            }
            Intr::ReduceMaxF => Value::F(rt.allreduce_f64(regs[args[0] as usize].as_f(), f64::max)),
            Intr::ReduceAddI => Value::I(
                rt.allreduce_u64(regs[args[0] as usize].as_i() as u64, |a, b| a.wrapping_add(b))
                    as i64,
            ),
            Intr::ReduceMaxI => {
                Value::I(rt.allreduce_u64(regs[args[0] as usize].as_i() as u64, |a, b| {
                    (a as i64).max(b as i64) as u64
                }) as i64)
            }
            Intr::ReduceMinI => {
                Value::I(rt.allreduce_u64(regs[args[0] as usize].as_i() as u64, |a, b| {
                    (a as i64).min(b as i64) as u64
                }) as i64)
            }
            Intr::Sqrt => {
                rt.charge_flops(2);
                Value::F(regs[args[0] as usize].as_f().sqrt())
            }
            Intr::Fabs => Value::F(regs[args[0] as usize].as_f().abs()),
            Intr::ChargeFlops => {
                rt.charge_flops(regs[args[0] as usize].as_i().max(0) as u64);
                Value::I(0)
            }
            Intr::PrintI => {
                eprintln!("[node {}] {}", rt.rank(), regs[args[0] as usize].as_i());
                Value::I(0)
            }
            Intr::PrintF => {
                eprintln!("[node {}] {}", rt.rank(), regs[args[0] as usize].as_f());
                Value::I(0)
            }
        }
    }
}

fn default_val(t: ValTy) -> Value {
    match t {
        ValTy::I => Value::I(0),
        ValTy::F => Value::F(0.0),
        ValTy::H => Value::H(u64::MAX),
        ValTy::S => Value::S(u32::MAX),
    }
}

fn binop(op: Bin, ty: ValTy, a: Value, b: Value) -> Value {
    if ty == ValTy::F {
        let (x, y) = (a.as_f(), b.as_f());
        match op {
            Bin::Add => Value::F(x + y),
            Bin::Sub => Value::F(x - y),
            Bin::Mul => Value::F(x * y),
            Bin::Div => Value::F(x / y),
            Bin::Rem => Value::F(x % y),
            Bin::Eq => Value::I((x == y) as i64),
            Bin::Ne => Value::I((x != y) as i64),
            Bin::Lt => Value::I((x < y) as i64),
            Bin::Le => Value::I((x <= y) as i64),
            Bin::Gt => Value::I((x > y) as i64),
            Bin::Ge => Value::I((x >= y) as i64),
            Bin::And | Bin::Or => unreachable!("logical ops are int-typed"),
        }
    } else {
        let (x, y) = (a.as_i(), b.as_i());
        match op {
            Bin::Add => Value::I(x.wrapping_add(y)),
            Bin::Sub => Value::I(x.wrapping_sub(y)),
            Bin::Mul => Value::I(x.wrapping_mul(y)),
            Bin::Div => Value::I(x / y),
            Bin::Rem => Value::I(x % y),
            Bin::Eq => Value::I((x == y) as i64),
            Bin::Ne => Value::I((x != y) as i64),
            Bin::Lt => Value::I((x < y) as i64),
            Bin::Le => Value::I((x <= y) as i64),
            Bin::Gt => Value::I((x > y) as i64),
            Bin::Ge => Value::I((x >= y) as i64),
            Bin::And => Value::I(((x != 0) && (y != 0)) as i64),
            Bin::Or => Value::I(((x != 0) || (y != 0)) as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::{compile, OptLevel};
    use ace_core::{run_ace, CostModel};

    fn run_main(src: &str, nprocs: usize, level: OptLevel) -> Vec<Option<Value>> {
        let cfg = SystemConfig::builtin();
        let p = compile(src, &cfg, level).unwrap();
        run_ace(nprocs, CostModel::free(), |rt| run_program(rt, &p)).results
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            double main() {
                int f = fib(10);
                double x = 2.0;
                return f + sqrt(x * 8.0);
            }
        "#;
        let r = run_main(src, 1, OptLevel::O0);
        assert_eq!(r[0], Some(Value::F(55.0 + 4.0)));
    }

    #[test]
    fn spmd_shared_counter_under_lock() {
        let src = r#"
            int main() {
                space s = new_space("SC");
                shared int *c;
                if (rank() == 0) { c = (shared int*) gmalloc(s, 1); }
                c = (shared int*) bcast_p(0, c);
                int i;
                for (i = 0; i < 5; i = i + 1) {
                    lock(c);
                    int t = c[0];
                    c[0] = t + 1;
                    unlock(c);
                }
                barrier(s);
                int out = c[0];
                barrier(s);
                return out;
            }
        "#;
        for level in OptLevel::ALL {
            let r = run_main(src, 4, level);
            for v in &r {
                assert_eq!(*v, Some(Value::I(20)), "at {level:?}");
            }
        }
    }

    #[test]
    fn local_arrays_and_loops() {
        let src = r#"
            int main() {
                int a[10];
                int i;
                for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
                int sum = 0;
                for (i = 0; i < 10; i = i + 1) { sum = sum + a[i]; }
                return sum;
            }
        "#;
        let r = run_main(src, 1, OptLevel::O0);
        assert_eq!(r[0], Some(Value::I(285)));
    }

    #[test]
    fn struct_regions_round_trip() {
        let src = r#"
            struct body { double x; double m; int id; };
            double main() {
                space s = new_space("SC");
                shared struct body *b = (shared struct body*) gmalloc(s, 1);
                b->x = 1.5;
                b->m = 2.0;
                b->id = 7;
                return b->x * b->m + b->id;
            }
        "#;
        let r = run_main(src, 1, OptLevel::O0);
        assert_eq!(r[0], Some(Value::F(10.0)));
    }

    #[test]
    fn figure2_em3d_skeleton_all_levels_agree() {
        // A miniature of Figure 2: two spaces, protocol change, compute
        // loop with barriers.
        let src = r#"
            double main() {
                space eval = new_space("SC");
                space hval = new_space("SC");
                shared double *e;
                shared double *h;
                if (rank() == 0) {
                    e = (shared double*) gmalloc(eval, 8);
                    h = (shared double*) gmalloc(hval, 8);
                }
                e = (shared double*) bcast_p(0, e);
                h = (shared double*) bcast_p(0, h);
                int i;
                if (rank() == 0) {
                    for (i = 0; i < 8; i = i + 1) { e[i] = i; h[i] = 2 * i; }
                }
                barrier(eval);
                barrier(hval);
                change_protocol(eval, "Update");
                change_protocol(hval, "Update");
                int t;
                double acc = 0.0;
                for (t = 0; t < 3; t = t + 1) {
                    if (rank() == 0) {
                        for (i = 0; i < 8; i = i + 1) { e[i] = e[i] + h[i] * 0.5; }
                    }
                    barrier(eval);
                    acc = e[3];
                    barrier(hval);
                }
                return reduce_add(acc);
            }
        "#;
        let mut results = Vec::new();
        for level in OptLevel::ALL {
            let r = run_main(src, 3, level);
            let v = r[0].unwrap().as_f();
            results.push(v);
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "optimization changed results: {results:?}");
        }
        // e[3] starts at 3 and gains h[3]*0.5 = 3 per step: 12 after three
        // steps; summed over 3 nodes = 36.
        assert_eq!(results[0], 36.0);
    }

    #[test]
    fn table4_monotone_dispatch_reduction() {
        // With an optimizable protocol, each level reduces (or keeps) the
        // number of dispatched protocol calls.
        let src = r#"
            double main() {
                space s = new_space("Update");
                shared double *v = (shared double*) gmalloc(s, 32);
                int i;
                int t;
                double acc = 0.0;
                for (t = 0; t < 4; t = t + 1) {
                    for (i = 0; i < 32; i = i + 1) {
                        acc = acc + v[i];
                        v[i] = acc;
                    }
                }
                return acc;
            }
        "#;
        let cfg = SystemConfig::builtin();
        let mut counts = Vec::new();
        for level in OptLevel::ALL {
            let p = compile(src, &cfg, level).unwrap();
            let r = run_ace(1, CostModel::free(), |rt| {
                run_program(rt, &p);
                let c = rt.counters();
                c.dispatched + c.direct
            });
            counts.push(r.results[0]);
        }
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "protocol calls must not increase: {counts:?}");
        }
        assert!(counts[3] < counts[0], "optimizations must help: {counts:?}");
    }
}
