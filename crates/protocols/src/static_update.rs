//! Static update protocol: subscriber lists built on first touch, updates
//! pushed at barriers.
//!
//! This is "essentially Falsafi et al.'s protocol for EM3D" (§3.3): the
//! first time a node maps a remote region it *subscribes*; from then on,
//! every barrier on the space pushes the current contents of each dirty
//! region from its home to all subscribers. The pushes to one subscriber
//! go out back to back, so the coalescing transport merges them into a
//! handful of wire envelopes per subscriber — the bulk-message batching
//! of the original protocol, without hand-packing payload records. Reads
//! never miss after the first iteration, and the per-access hooks are null
//! — which is why the paper's direct-dispatch compiler pass wins most on
//! EM3D (Table 4): the null dispatches in the tight kernel disappear.
//!
//! Usage contract (asserted): regions are written only at their home node.

use ace_core::{AceRt, Actions, GrantSet, ProtoMsg, Protocol, RegionEntry, SpaceEntry};

use crate::states::*;

/// Wire opcodes.
pub mod op {
    /// Remote → home: subscribe and fetch current contents.
    pub const SUBSCRIBE: u16 = 1;
    /// Home → remote: contents (subscribe reply).
    pub const DATA: u16 = 2;
    /// Home → subscriber: barrier-time push of new contents.
    pub const PUSH: u16 = 3;
    /// Subscriber → home: push applied.
    pub const PUSH_ACK: u16 = 4;
    /// Remote → home: unsubscribe (flush).
    pub const UNSUB: u16 = 5;
    /// Home → remote: unsubscribe acknowledged.
    pub const UNSUB_ACK: u16 = 6;

    /// Trace label for an opcode.
    pub fn name(op: u16) -> &'static str {
        match op {
            SUBSCRIBE => "subscribe",
            DATA => "data",
            PUSH => "push",
            PUSH_ACK => "push_ack",
            UNSUB => "unsub",
            UNSUB_ACK => "unsub_ack",
            _ => "op",
        }
    }
}

const SUBSCRIBED: u64 = 1 << 4;
const FLUSH_WAIT: u64 = 1 << 8;

/// The static update protocol.
#[derive(Default)]
pub struct StaticUpdate;

impl StaticUpdate {
    /// Constructor for registry use.
    pub fn new() -> Self {
        StaticUpdate
    }

    fn subscribe(&self, rt: &AceRt, e: &RegionEntry) {
        rt.counters_mut(|c| c.read_misses += 1);
        e.st.set(R_WAIT_READ);
        rt.send_proto(e.id.home(), e.id, op::SUBSCRIBE, 0, None);
        rt.wait("static-update subscription", || e.st.get() == R_SHARED);
        e.aux.set(e.aux.get() | SUBSCRIBED);
    }

    /// Recompute the entry's fast mask. Read hooks are unconditional
    /// no-ops; `start_write` only debug-asserts home-ness, so it is fast
    /// at home (and deliberately slow remotely, keeping the assert live);
    /// `end_write` marks the region dirty, so it is never fast.
    fn refresh_fast(&self, rt: &AceRt, e: &RegionEntry) {
        let mut fast = Actions::START_READ.union(Actions::END_READ);
        if e.is_home_of(rt.rank()) {
            fast = fast.union(Actions::START_WRITE);
        }
        e.fast.set(fast);
    }
}

impl Protocol for StaticUpdate {
    fn name(&self) -> &'static str {
        "StaticUpdate"
    }

    fn op_name(&self, op: u16) -> &'static str {
        op::name(op)
    }

    fn optimizable(&self) -> bool {
        true
    }

    // The per-access hooks are null; only map, end_write (dirty marking)
    // and the barrier do work. This mirrors the paper's observation that
    // the protocol "sets most of its handlers to be the null handler".
    fn null_actions(&self) -> Actions {
        Actions::START_READ
            .union(Actions::END_READ)
            .union(Actions::START_WRITE)
            .union(Actions::UNMAP)
    }

    // One writer updates the static copy set; standing readers keep
    // their sections open across the push, so read/write overlap is
    // granted but write/write is not.
    fn grants(&self) -> GrantSet {
        GrantSet { write_write: false, read_write: true }
    }

    fn on_create(&self, rt: &AceRt, e: &RegionEntry) {
        self.refresh_fast(rt, e);
    }

    fn on_map(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) && e.st.get() == R_INVALID {
            self.subscribe(rt, e);
        }
        self.refresh_fast(rt, e);
    }

    fn start_read(&self, _rt: &AceRt, _e: &RegionEntry) {
        // Null: data freshness is provided by barrier pushes. (First touch
        // happens at map.)
    }

    fn end_read(&self, _rt: &AceRt, _e: &RegionEntry) {}

    fn start_write(&self, rt: &AceRt, e: &RegionEntry) {
        debug_assert!(
            e.is_home_of(rt.rank()),
            "static update regions are written only at home ({})",
            e.id
        );
    }

    fn end_write(&self, rt: &AceRt, e: &RegionEntry) {
        rt.space(e.space).mark_dirty(e.id);
    }

    fn barrier(&self, rt: &AceRt, s: &SpaceEntry) {
        // Push every dirty region to every subscriber, one PUSH per
        // (region, subscriber), back to back with no intervening wait:
        // the per-destination trains coalesce in the transport, so each
        // subscriber still receives one wire envelope per flush (one
        // latency, one header) — Falsafi et al.'s batched static updates
        // recovered from the transport instead of hand-packed payload
        // records. Each PUSH addresses its own region, so the subscriber
        // side dispatches without a lookup, and the acks it sends while
        // draining the batch coalesce into one envelope back to the home.
        for rid in s.take_dirty() {
            let e = rt.entry(rid);
            debug_assert!(e.is_home_of(rt.rank()));
            for sub in e.sharer_ranks() {
                s.outstanding.set(s.outstanding.get() + 1);
                rt.send_proto(sub, e.id, op::PUSH, 0, Some(e.clone_data()));
            }
        }
        rt.wait("static-update pushes", || s.outstanding.get() == 0);
        rt.space_barrier(s);
    }

    fn handle(&self, rt: &AceRt, e: &RegionEntry, msg: ProtoMsg, _src: usize) {
        let from = msg.from as usize;
        match msg.op {
            // home side
            op::SUBSCRIBE => {
                e.add_sharer(from);
                rt.send_proto(from, e.id, op::DATA, 0, Some(e.clone_data()));
            }
            op::PUSH_ACK => {
                let s = rt.space(e.space);
                debug_assert!(s.outstanding.get() > 0);
                s.outstanding.set(s.outstanding.get() - 1);
            }
            op::UNSUB => {
                e.drop_sharer(from);
                rt.send_proto(from, e.id, op::UNSUB_ACK, 0, None);
            }
            // subscriber side
            op::DATA => {
                e.install_shared(msg.data.expect("subscribe reply carries data"));
                e.st.set(R_SHARED);
            }
            op::PUSH => {
                // Barrier-time contents for this region; ack each push (the
                // acks for one coalesced batch leave as one wire envelope).
                e.install_data(msg.data.as_deref().expect("push carries data"));
                if e.st.get() != R_INVALID {
                    e.st.set(R_SHARED);
                }
                rt.send_proto(e.id.home(), e.id, op::PUSH_ACK, 0, None);
            }
            op::UNSUB_ACK => {
                e.aux.set(e.aux.get() & !FLUSH_WAIT);
            }
            other => panic!("StaticUpdate: unknown opcode {other}"),
        }
    }

    fn flush(&self, rt: &AceRt, e: &RegionEntry) {
        // Hand the region to the next protocol slow; it declares its own
        // fast states in `adopt`.
        e.fast.set(Actions::empty());
        if e.is_home_of(rt.rank()) {
            return;
        }
        if e.aux.get() & SUBSCRIBED != 0 || e.st.get() == R_SHARED {
            e.aux.set((e.aux.get() | FLUSH_WAIT) & !SUBSCRIBED);
            e.st.set(R_INVALID);
            rt.send_proto(e.id.home(), e.id, op::UNSUB, 0, None);
            rt.wait("unsubscribe ack", || e.aux.get() & FLUSH_WAIT == 0);
        }
        e.aux.set(0);
    }

    fn adopt(&self, rt: &AceRt, e: &RegionEntry) {
        if !e.is_home_of(rt.rank()) && e.mapped.get() > 0 {
            self.subscribe(rt, e);
        }
        self.refresh_fast(rt, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{run_ace, run_ace_with, CostModel, RegionId, SpaceId, Spmd};
    use std::rc::Rc;

    fn setup(rt: &AceRt, words: usize) -> (SpaceId, RegionId) {
        let s = rt.new_space(Rc::new(StaticUpdate));
        let rid = if rt.rank() == 0 {
            RegionId(rt.bcast(0, &[rt.gmalloc_words(s, words).0])[0])
        } else {
            RegionId(rt.bcast(0, &[])[0])
        };
        rt.map(rid);
        (s, rid)
    }

    #[test]
    fn barrier_pushes_home_writes_to_subscribers() {
        let r = run_ace(3, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 2);
            rt.barrier(s);
            let mut seen = Vec::new();
            for i in 0..5u64 {
                if rt.rank() == 0 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] = i + 1);
                    rt.end_write(rid);
                }
                rt.barrier(s);
                rt.start_read(rid);
                seen.push(rt.with::<u64, _>(rid, |d| d[0]));
                rt.end_read(rid);
                rt.barrier(s);
            }
            seen
        });
        for res in &r.results {
            assert_eq!(res, &[1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn steady_state_reads_cost_no_messages() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 1);
            rt.barrier(s);
            let before = rt.counters().proto_msgs;
            for _ in 0..100 {
                rt.start_read(rid);
                rt.with::<u64, _>(rid, |d| d[0]);
                rt.end_read(rid);
            }
            rt.counters().proto_msgs - before
        });
        assert_eq!(r.results, vec![0, 0]);
    }

    #[test]
    fn subscription_happens_once() {
        let r = run_ace(2, CostModel::free(), |rt| {
            let (s, rid) = setup(rt, 1);
            for _ in 0..4 {
                if rt.rank() == 0 {
                    rt.start_write(rid);
                    rt.with_mut::<u64, _>(rid, |d| d[0] += 1);
                    rt.end_write(rid);
                }
                rt.barrier(s);
            }
            rt.counters().read_misses
        });
        assert_eq!(r.results[0], 0);
        assert_eq!(r.results[1], 1); // single first-touch subscription
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "written only at home")]
    fn remote_write_asserts() {
        // Node 0 will die on the assert, so keep the survivor's hang
        // watchdog short: the panic propagates in rank order.
        let builder = Spmd::builder()
            .nprocs(2)
            .cost(CostModel::free())
            .watchdog(std::time::Duration::from_millis(300));
        run_ace_with(builder, |rt| {
            let s = rt.new_space(Rc::new(StaticUpdate));
            let rid = if rt.rank() == 1 {
                RegionId(rt.bcast(1, &[rt.gmalloc_words(s, 1).0])[0])
            } else {
                RegionId(rt.bcast(1, &[])[0])
            };
            rt.map(rid);
            if rt.rank() == 0 {
                rt.start_write(rid); // illegal: node 1 is home
            }
        });
    }
}
