//! Façade crate for the Ace reproduction workspace.
//!
//! Re-exports the public API of every subsystem so examples and downstream
//! users can depend on a single crate:
//!
//! * [`core`] — the Ace runtime (regions, spaces, protocol dispatch),
//! * [`protocols`] — the protocol library,
//! * [`crl`] — the CRL baseline DSM,
//! * [`lang`] — the Ace-C compiler and VM,
//! * [`apps`] — the paper's five benchmark applications,
//! * [`machine`] — the simulated distributed machine underneath it all.

pub use ace_apps as apps;
pub use ace_core as core;
pub use ace_crl as crl;
pub use ace_lang as lang;
pub use ace_machine as machine;
pub use ace_protocols as protocols;

pub use ace_core::{run_ace, AceRt, CostModel, Pod, RegionId, SpaceId};
