//! Barnes-Hut: hierarchical O(N log N) N-body (Table 3: 16,384 bodies).
//!
//! Bodies and octree cells are regions. Each step, node 0 reads every
//! body, builds the octree, and publishes it through a preallocated pool
//! of cell regions; then every node computes forces on its owned bodies by
//! traversing the shared tree (opening criterion θ), and owners integrate.
//!
//! Sharing pattern: bodies are *written by their owner and read by
//! everyone* (node 0 for tree building, any node whose traversal opens a
//! leaf containing the body). §5.2: "Barnes-Hut uses a dynamic update
//! protocol for bodies" — the custom variant plugs
//! [`ace_protocols::DynamicUpdate`] into the bodies space, turning each
//! per-step re-fetch (a round trip per body per reader under
//! invalidation) into a single one-way push at update time. The tree
//! cells stay under the default protocol: they are rewritten wholesale by
//! node 0 each step, so readers miss once per cell per step either way.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dsm::{exchange_ids, Dsm};
use crate::Variant;
use ace_core::Pod;
use ace_protocols::{AdaptiveSpec, ProtoSpec};

/// Bodies per leaf cell before it splits.
pub const LEAF_CAP: usize = 8;
/// Gravitational softening.
const EPS2: f64 = 1e-4;
const DT: f64 = 0.01;

/// One octree cell as stored in its region.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct Cell {
    /// Center of mass.
    pub cm: [f64; 3],
    /// Total mass.
    pub mass: f64,
    /// Geometric cell size (cube edge).
    pub size: f64,
    /// 1 if leaf.
    pub leaf: u64,
    /// Children: cell-pool indices (`u64::MAX` = empty). Valid internal.
    pub child: [u64; 8],
    /// Member body region ids. Valid when leaf.
    pub bodies: [u64; LEAF_CAP],
    /// Number of member bodies when leaf.
    pub nbodies: u64,
}

unsafe impl Pod for Cell {}

impl Cell {
    fn empty() -> Self {
        Cell {
            cm: [0.0; 3],
            mass: 0.0,
            size: 0.0,
            leaf: 1,
            child: [u64::MAX; 8],
            bodies: [u64::MAX; LEAF_CAP],
            nbodies: 0,
        }
    }
}

/// One body as stored in its region.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Acceleration (recomputed each step).
    pub acc: [f64; 3],
    /// Mass.
    pub mass: f64,
}

unsafe impl Pod for Body {}

/// Barnes-Hut workload parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of bodies.
    pub bodies: usize,
    /// Time steps.
    pub steps: usize,
    /// Opening criterion θ (the paper uses tolerance 1.0).
    pub theta: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Params {
    /// The paper's input (Table 3): 16,384 bodies, 4 steps, tol 1.0.
    pub fn paper() -> Self {
        Params { bodies: 16_384, steps: 4, theta: 1.0, seed: 3 }
    }

    /// A scaled-down input for unit tests.
    pub fn small() -> Self {
        Params { bodies: 64, steps: 2, theta: 0.8, seed: 3 }
    }
}

fn block(total: usize, nprocs: usize, rank: usize) -> std::ops::Range<usize> {
    let per = total.div_ceil(nprocs);
    (per * rank).min(total)..(per * (rank + 1)).min(total)
}

/// Node-0-local octree builder.
struct BuildTree {
    cells: Vec<Cell>,
    center: Vec<[f64; 3]>,
    info: HashMap<u64, ([f64; 3], f64)>,
}

impl BuildTree {
    fn new(size: f64, center: [f64; 3]) -> Self {
        let mut root = Cell::empty();
        root.size = size;
        BuildTree { cells: vec![root], center: vec![center], info: HashMap::new() }
    }

    fn insert(&mut self, cell: usize, body: u64) {
        let (pos, mass) = self.info[&body];
        self.bump_cm(cell, pos, mass);
        if self.cells[cell].leaf == 1 {
            let n = self.cells[cell].nbodies as usize;
            if n < LEAF_CAP {
                self.cells[cell].bodies[n] = body;
                self.cells[cell].nbodies += 1;
                return;
            }
            // Split: demote to internal and redistribute members.
            self.cells[cell].leaf = 0;
            let members: Vec<u64> = self.cells[cell].bodies[..n].to_vec();
            self.cells[cell].bodies = [u64::MAX; LEAF_CAP];
            self.cells[cell].nbodies = 0;
            for m in members {
                self.insert_into_child(cell, m);
            }
        }
        self.insert_into_child(cell, body);
    }

    fn insert_into_child(&mut self, cell: usize, body: u64) {
        let (pos, _) = self.info[&body];
        let c = self.center[cell];
        let quarter = self.cells[cell].size / 4.0;
        let mut oct = 0usize;
        let mut cc = c;
        for a in 0..3 {
            if pos[a] >= c[a] {
                oct |= 1 << a;
                cc[a] += quarter;
            } else {
                cc[a] -= quarter;
            }
        }
        let child = if self.cells[cell].child[oct] == u64::MAX {
            let idx = self.cells.len();
            let mut fresh = Cell::empty();
            fresh.size = self.cells[cell].size / 2.0;
            self.cells.push(fresh);
            self.center.push(cc);
            self.cells[cell].child[oct] = idx as u64;
            idx
        } else {
            self.cells[cell].child[oct] as usize
        };
        self.insert(child, body);
    }

    fn bump_cm(&mut self, cell: usize, pos: [f64; 3], mass: f64) {
        let c = &mut self.cells[cell];
        let total = c.mass + mass;
        for a in 0..3 {
            c.cm[a] = (c.cm[a] * c.mass + pos[a] * mass) / total;
        }
        c.mass = total;
    }
}

/// Accumulate the acceleration on `pos` from the tree rooted at pool cell
/// `idx`, reading cells and (in opened leaves) bodies through the DSM.
/// Regions are mapped around each access — the CRL-1.0 idiom the paper's
/// ported sources use (§5.1).
#[allow(clippy::too_many_arguments)]
fn accel_from<D: Dsm>(
    d: &D,
    pool: &[u64],
    idx: usize,
    pos: [f64; 3],
    self_id: u64,
    theta: f64,
    acc: &mut [f64; 3],
    flops: &mut u64,
) {
    let cid = pool[idx];
    d.map(cid);
    d.start_read(cid);
    let cell = d.with::<Cell, _>(cid, |c| c[0]);
    d.end_read(cid);
    d.unmap(cid);

    let dx = cell.cm[0] - pos[0];
    let dy = cell.cm[1] - pos[1];
    let dz = cell.cm[2] - pos[2];
    let d2 = dx * dx + dy * dy + dz * dz;

    if cell.leaf == 1 {
        for k in 0..cell.nbodies as usize {
            let bid = cell.bodies[k];
            if bid == self_id {
                continue;
            }
            d.map(bid);
            d.start_read(bid);
            let (bp, bm) = d.with::<Body, _>(bid, |b| (b[0].pos, b[0].mass));
            d.end_read(bid);
            d.unmap(bid);
            let rx = bp[0] - pos[0];
            let ry = bp[1] - pos[1];
            let rz = bp[2] - pos[2];
            let r2 = rx * rx + ry * ry + rz * rz + EPS2;
            let w = bm / (r2 * r2.sqrt());
            acc[0] += rx * w;
            acc[1] += ry * w;
            acc[2] += rz * w;
            *flops += 12;
        }
        return;
    }

    if cell.size * cell.size < theta * theta * d2 {
        // Far enough: use the monopole approximation.
        let r2 = d2 + EPS2;
        let w = cell.mass / (r2 * r2.sqrt());
        acc[0] += dx * w;
        acc[1] += dy * w;
        acc[2] += dz * w;
        *flops += 12;
        return;
    }

    for oct in 0..8 {
        let ch = cell.child[oct];
        if ch != u64::MAX {
            accel_from(d, pool, ch as usize, pos, self_id, theta, acc, flops);
        }
    }
}

/// Run Barnes-Hut; returns the verification value (global Σ|pos| after
/// the last step — exact across protocols and runtimes, because every
/// phase is barrier-separated and traversal order is deterministic).
pub fn run<D: Dsm>(d: &D, p: &Params, v: Variant) -> f64 {
    let bodies_space = d.new_space(ProtoSpec::Sc);
    let cells_space = d.new_space(ProtoSpec::Sc);

    let mine = block(p.bodies, d.nprocs(), d.rank());
    let my_ids: Vec<u64> = mine.clone().map(|_| d.gmalloc::<Body>(bodies_space, 1)).collect();
    let all_ids = exchange_ids(d, &my_ids);
    let body_ids: Vec<u64> = all_ids.iter().flat_map(|v| v.iter().copied()).collect();

    // Cell pool, homed at node 0, sized for the worst case.
    let max_cells = 4 * p.bodies + 64;
    let pool: Vec<u64> = if d.rank() == 0 {
        let ids: Vec<u64> = (0..max_cells).map(|_| d.gmalloc::<Cell>(cells_space, 1)).collect();
        d.bcast(0, &ids).to_vec()
    } else {
        d.bcast(0, &[]).to_vec()
    };

    // Initialize owned bodies (Plummer-ish ball of uniform masses).
    let mut rng = StdRng::seed_from_u64(p.seed.wrapping_add(d.rank() as u64 * 77));
    for &rid in &my_ids {
        d.map(rid);
        d.start_write(rid);
        d.with_mut::<Body, _>(rid, |b| {
            b[0] = Body {
                pos: [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
                vel: [
                    rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                ],
                acc: [0.0; 3],
                mass: 1.0 / p.bodies as f64,
            };
        });
        d.end_write(rid);
        d.unmap(rid);
    }
    d.barrier(bodies_space);

    if v == Variant::Custom {
        d.change_protocol(bodies_space, ProtoSpec::DynUpdate);
    } else if v == Variant::Adaptive {
        // Bodies are read by all and written by their owner every step —
        // the update-family pattern — so the engine starts at dynamic
        // update rather than paying the serial node-0 tree build of step
        // one under invalidation (bodies profiles only aggregate at the
        // three per-step barriers, and the build is the first and
        // heaviest phase). The engine may still fall back to SC if the
        // profiles say the pushes are wasted.
        let spec = AdaptiveSpec::new(AdaptiveSpec::SC | AdaptiveSpec::DYN_UPDATE)
            .starting_at(AdaptiveSpec::DYN_UPDATE);
        d.change_protocol(bodies_space, ProtoSpec::Adaptive(spec));
    }

    for _ in 0..p.steps {
        // ---- tree build (node 0) ----
        if d.rank() == 0 {
            let mut info = HashMap::new();
            let mut lo = [f64::MAX; 3];
            let mut hi = [f64::MIN; 3];
            for &bid in &body_ids {
                d.map(bid);
                d.start_read(bid);
                let (bp, bm) = d.with::<Body, _>(bid, |b| (b[0].pos, b[0].mass));
                d.end_read(bid);
                d.unmap(bid);
                for a in 0..3 {
                    lo[a] = lo[a].min(bp[a]);
                    hi[a] = hi[a].max(bp[a]);
                }
                info.insert(bid, (bp, bm));
            }
            let size = (0..3).map(|a| hi[a] - lo[a]).fold(0.0f64, f64::max) * 1.01 + 1e-9;
            let center = [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0, (lo[2] + hi[2]) / 2.0];
            let mut tree = BuildTree::new(size, center);
            tree.info = info;
            for &bid in &body_ids {
                tree.insert(0, bid);
            }
            assert!(tree.cells.len() <= pool.len(), "cell pool exhausted");
            let ncells_used = tree.cells.len() as u64;
            for (k, cell) in tree.cells.iter().enumerate() {
                let rid = pool[k];
                d.map(rid);
                d.start_write(rid);
                d.with_mut::<Cell, _>(rid, |c| c[0] = *cell);
                d.end_write(rid);
                d.unmap(rid);
            }
            d.charge_mem(10 * body_ids.len() as u64);
            d.bcast(0, &[ncells_used]);
        } else {
            // Learn how many cells are live this step (tree size varies).
            let _ncells_used = d.bcast(0, &[])[0];
        }
        d.barrier(cells_space);
        d.barrier(bodies_space);

        // ---- force phase: traverse for each owned body ----
        let mut new_acc = Vec::with_capacity(my_ids.len());
        for &rid in &my_ids {
            d.map(rid);
            d.start_read(rid);
            let me = d.with::<Body, _>(rid, |b| b[0]);
            d.end_read(rid);
            d.unmap(rid);
            let mut acc = [0.0; 3];
            let mut flops = 0;
            accel_from(d, &pool, 0, me.pos, rid, p.theta, &mut acc, &mut flops);
            d.charge_flops(flops);
            new_acc.push(acc);
        }
        // Write accelerations after the full traversal pass.
        for (&rid, acc) in my_ids.iter().zip(&new_acc) {
            d.map(rid);
            d.start_write(rid);
            d.with_mut::<Body, _>(rid, |b| b[0].acc = *acc);
            d.end_write(rid);
            d.unmap(rid);
        }
        d.barrier(bodies_space);

        // ---- update phase: leapfrog on owned bodies ----
        for &rid in &my_ids {
            d.map(rid);
            d.start_write(rid);
            d.with_mut::<Body, _>(rid, |b| {
                for a in 0..3 {
                    b[0].vel[a] += DT * b[0].acc[a];
                    b[0].pos[a] += DT * b[0].vel[a];
                }
            });
            d.end_write(rid);
            d.unmap(rid);
            d.charge_flops(12);
        }
        d.barrier(bodies_space);
    }

    let mut local = 0.0;
    for &rid in &my_ids {
        d.map(rid);
        d.start_read(rid);
        local +=
            d.with::<Body, _>(rid, |b| b[0].pos[0].abs() + b[0].pos[1].abs() + b[0].pos[2].abs());
        d.end_read(rid);
        d.unmap(rid);
    }
    d.allreduce_f64(local, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{launch_ace, launch_crl};
    use ace_core::CostModel;

    #[test]
    fn variants_and_runtimes_agree_exactly() {
        let p = Params::small();
        let sc = launch_ace(3, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let cu = launch_ace(3, CostModel::free(), |d| run(d, &p, Variant::Custom));
        let cr = launch_crl(3, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert_eq!(sc.verification, cu.verification);
        assert_eq!(sc.verification, cr.verification);
        assert!(sc.verification.is_finite() && sc.verification > 0.0);
    }

    #[test]
    fn dynamic_update_cuts_body_misses() {
        let p = Params { bodies: 96, steps: 3, ..Params::small() };
        let sc = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Sc));
        let cu = launch_ace(4, CostModel::free(), |d| run(d, &p, Variant::Custom));
        assert!(
            cu.counters.read_misses < sc.counters.read_misses,
            "dynamic update should cut read misses: custom={} sc={}",
            cu.counters.read_misses,
            sc.counters.read_misses
        );
    }

    #[test]
    fn tree_respects_leaf_capacity() {
        let mut t = BuildTree::new(2.0, [0.0; 3]);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100u64 {
            t.info.insert(
                i,
                (
                    [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
                    1.0,
                ),
            );
            t.insert(0, i);
        }
        let mut total = 0;
        for c in &t.cells {
            if c.leaf == 1 {
                assert!(c.nbodies as usize <= LEAF_CAP);
                total += c.nbodies;
            }
        }
        assert_eq!(total, 100, "every body lands in exactly one leaf");
        // Root mass equals the sum of all masses.
        assert!((t.cells[0].mass - 100.0).abs() < 1e-9);
    }

    #[test]
    fn single_node_runs() {
        let p = Params::small();
        let out = launch_ace(1, CostModel::free(), |d| run(d, &p, Variant::Sc));
        assert!(out.verification.is_finite());
    }
}
