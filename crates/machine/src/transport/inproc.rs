//! The in-process backend: crossbeam channels as the network.
//!
//! This is the original substrate, unchanged in behaviour: one unbounded
//! channel per destination rank, a shared read-only sender table (so an
//! `n`-node machine clones one `Arc` per node, not `n` senders), and the
//! machine-wide [`FailBoard`] for fail-fast peer-death detection. All
//! latency and bandwidth semantics live above this layer in the cost
//! model; the channel itself is instantaneous.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::envelope::Wire;
use crate::transport::{FailBoard, Transport, TryWireError, WaitWireError};

/// One rank's endpoint on the in-process channel mesh: its own receiver,
/// the shared sender table, and the shared failure board.
pub struct InProcTransport<M> {
    rx: Receiver<Wire<M>>,
    txs: Arc<Vec<Sender<Wire<M>>>>,
    board: Arc<FailBoard>,
}

impl<M> InProcTransport<M> {
    /// Build the full machine's endpoints at once: `nprocs` channels, one
    /// shared sender table, one shared failure board. Endpoint `i` is
    /// moved into rank `i`'s thread.
    pub(crate) fn mesh(nprocs: usize, board: &Arc<FailBoard>) -> Vec<InProcTransport<M>> {
        let mut txs = Vec::with_capacity(nprocs);
        let mut rxs = Vec::with_capacity(nprocs);
        for _ in 0..nprocs {
            let (tx, rx) = crossbeam::channel::unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        rxs.into_iter()
            .map(|rx| InProcTransport { rx, txs: Arc::clone(&txs), board: Arc::clone(board) })
            .collect()
    }
}

impl<M> Transport<M> for InProcTransport<M> {
    fn send_wire(&self, dst: usize, wire: Wire<M>) {
        // A send can only fail if the destination thread already exited,
        // which means the SPMD program violated its quiescence contract;
        // losing the message is the faithful outcome (the wire goes dead).
        let _ = self.txs[dst].send(wire);
    }

    fn try_recv_wire(&self) -> Result<Wire<M>, TryWireError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => TryWireError::Empty,
            TryRecvError::Disconnected => TryWireError::Dead,
        })
    }

    fn recv_wire_timeout(&self, d: Duration) -> Result<Wire<M>, WaitWireError> {
        self.rx.recv_timeout(d).map_err(|e| match e {
            RecvTimeoutError::Timeout => WaitWireError::Timeout,
            RecvTimeoutError::Disconnected => WaitWireError::Dead,
        })
    }

    fn failed_rank(&self) -> isize {
        self.board.failed_rank()
    }

    fn failure_detail(&self) -> String {
        self.board.detail()
    }

    fn signal_failure(&self, rank: usize, msg: &str) {
        self.board.record(rank, msg.to_string());
    }

    fn shutdown(&self) {
        // Dropping the endpoint (and with it this rank's `Arc` on the
        // sender table) is the whole protocol: once every rank's clone is
        // gone the channels disconnect, which peers observe as a dead
        // wire. No explicit goodbye is needed in-process.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;

    fn env(src: usize, msg: u64) -> Wire<u64> {
        Wire::Single(Envelope { src, send_time: 0, bytes: 28, vc: None, sw: 0, msg })
    }

    #[test]
    fn mesh_routes_per_pair_fifo() {
        let board = Arc::new(FailBoard::new());
        let eps = InProcTransport::<u64>::mesh(2, &board);
        eps[0].send_wire(1, env(0, 1));
        eps[0].send_wire(1, env(0, 2));
        eps[0].send_wire(0, env(0, 3)); // self-send loops back
        for (ep, want) in [(&eps[1], 1), (&eps[1], 2), (&eps[0], 3)] {
            match ep.try_recv_wire() {
                Ok(Wire::Single(e)) => assert_eq!(e.msg, want),
                other => panic!("expected Single({want}), got {other:?}",),
            }
        }
        assert_eq!(eps[1].try_recv_wire().err(), Some(TryWireError::Empty));
    }

    #[test]
    fn dead_wire_reported_after_senders_drop() {
        // Every endpoint holds the shared sender table (including its own
        // sender), so a live mesh never disconnects from the inside —
        // in-process peer death travels through the failure board instead.
        // The dead-wire mapping still matters for teardown races, so pin
        // it on a hand-built endpoint whose senders are all gone.
        let board = Arc::new(FailBoard::new());
        let (tx, rx) = crossbeam::channel::unbounded::<Wire<u64>>();
        let ep = InProcTransport { rx, txs: Arc::new(Vec::new()), board };
        drop(tx);
        assert_eq!(ep.try_recv_wire().err(), Some(TryWireError::Dead));
        assert_eq!(ep.recv_wire_timeout(Duration::from_millis(1)).err(), Some(WaitWireError::Dead));
    }

    #[test]
    fn failure_board_is_shared_across_endpoints() {
        let board = Arc::new(FailBoard::new());
        let eps = InProcTransport::<u64>::mesh(3, &board);
        assert_eq!(eps[2].failed_rank(), -1);
        eps[0].signal_failure(0, "boom");
        assert_eq!(eps[2].failed_rank(), 0);
        assert_eq!(eps[1].failure_detail(), "boom");
    }
}
