//! Wall-clock cost of one logical `Node::send` under the three coalescing
//! policies: `Off` (every send is its own wire envelope), `Threshold(8)`
//! (the runtime default — buffers flush every eighth message), and
//! `FlushOnWait` (everything buffers until a blocking point). The free
//! cost model zeroes the simulated charges, so the loop measures the real
//! sender-side work: channel injection per envelope for `Off` versus a
//! buffer push (plus the amortized flush) for the coalescing policies.

use ace_core::{CoalescePolicy, CostModel, Spmd};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::Cell;

const SENDS: usize = 20_000;

fn send_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("sendpath");
    g.sample_size(20);
    // Report per-send cost: Criterion's mean for one iteration divided by
    // SENDS is the ns-per-logical-send headline.
    for (name, policy) in [
        ("off", CoalescePolicy::Off),
        ("threshold8", CoalescePolicy::Threshold(8)),
        ("flush_on_wait", CoalescePolicy::FlushOnWait),
    ] {
        g.bench_function(format!("{name}_send_x{SENDS}"), |b| {
            b.iter(|| {
                Spmd::builder().nprocs(2).cost(CostModel::free()).coalesce(policy).run::<u64, _, _>(
                    |node| {
                        if node.rank() == 0 {
                            for i in 0..SENDS as u64 {
                                node.send(1, i + 1);
                            }
                            node.flush_coalesced();
                            0
                        } else {
                            let seen = Cell::new(0usize);
                            node.poll_until(
                                "all sends",
                                |_, _| seen.set(seen.get() + 1),
                                || seen.get() == SENDS,
                            );
                            seen.get() as u64
                        }
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, send_loop);
criterion_main!(benches);
