//! Property tests for the Ace-C compiler: random programs must evaluate
//! to the same result at every optimization level (the passes are
//! semantics-preserving), and the parser must reject what it should.

use ace::core::{run_ace, CostModel};
use ace::lang::{compile, run_program, OptLevel, SystemConfig};
use proptest::prelude::*;

/// A random straight-line arithmetic body over int locals a..e, wrapped
/// in a loop that accumulates into a shared region under an optimizable
/// protocol — so every pass has something to chew on.
fn random_program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        (0usize..5, 1i64..50).prop_map(|(v, k)| format!("x{v} = x{v} + {k};")),
        (0usize..5, 0usize..5).prop_map(|(a, b)| format!("x{a} = x{a} * 2 + x{b};")),
        (0usize..5, 1i64..9).prop_map(|(v, k)| format!("x{v} = x{v} % {k} + 1;")),
        (0usize..5, 0usize..5, 1i64..20).prop_map(|(a, b, k)| format!(
            "if (x{a} > x{b}) {{ x{a} = x{a} - {k}; }} else {{ x{b} = x{b} + {k}; }}"
        )),
    ];
    (proptest::collection::vec(stmt, 1..12), 1usize..8, 1i64..6).prop_map(
        |(stmts, words, iters)| {
            let body = stmts.join("\n                ");
            format!(
                r#"
            double main() {{
                space s = new_space("Update");
                shared int *acc = (shared int*) gmalloc(s, {words});
                int x0 = 1; int x1 = 2; int x2 = 3; int x3 = 4; int x4 = 5;
                int t;
                for (t = 0; t < {iters}; t = t + 1) {{
                    {body}
                    acc[t % {words}] = acc[t % {words}] + x0 + x1 + x2 + x3 + x4;
                }}
                int out = 0;
                int i;
                for (i = 0; i < {words}; i = i + 1) {{ out = out + acc[i]; }}
                return out + 0.0;
            }}
            "#
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimization_levels_preserve_semantics(src in random_program()) {
        let cfg = SystemConfig::builtin();
        let mut results = Vec::new();
        for level in OptLevel::ALL {
            let prog = compile(&src, &cfg, level).expect("generated programs compile");
            let r = run_ace(1, CostModel::free(), |rt| {
                run_program(rt, &prog).unwrap().as_f()
            });
            results.push(r.results[0]);
        }
        for w in results.windows(2) {
            prop_assert_eq!(w[0], w[1], "levels disagree on:\n{}", src);
        }
    }

    #[test]
    fn annotation_counts_never_increase(src in random_program()) {
        // Each pass may only remove or keep protocol calls dynamically.
        let cfg = SystemConfig::builtin();
        let mut counts = Vec::new();
        for level in OptLevel::ALL {
            let prog = compile(&src, &cfg, level).expect("compiles");
            let r = run_ace(1, CostModel::free(), |rt| {
                run_program(rt, &prog);
                let c = rt.counters();
                c.dispatched + c.direct
            });
            counts.push(r.results[0]);
        }
        for w in counts.windows(2) {
            prop_assert!(w[1] <= w[0], "protocol calls increased: {:?}\n{}", counts, src);
        }
    }

    #[test]
    fn lexer_never_panics(s in "\\PC*") {
        let _ = ace::lang::lex::lex(&s);
    }

    #[test]
    fn parser_never_panics(s in "\\PC*") {
        if let Ok(toks) = ace::lang::lex::lex(&s) {
            let _ = ace::lang::parse::parse(&toks);
        }
    }

    #[test]
    fn int_expressions_evaluate_like_rust(a in 1i64..100, b in 1i64..100, c in 1i64..100) {
        let src = format!(
            "int main() {{ int a = {a}; int b = {b}; int c = {c};
               return (a + b) * c - a % b + (a - c) / b; }}"
        );
        let cfg = SystemConfig::builtin();
        let prog = compile(&src, &cfg, OptLevel::Direct).unwrap();
        let r = run_ace(1, CostModel::free(), |rt| {
            run_program(rt, &prog).unwrap().as_i()
        });
        prop_assert_eq!(r.results[0], (a + b) * c - a % b + (a - c) / b);
    }
}
