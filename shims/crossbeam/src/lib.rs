//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of crossbeam it actually uses: MPMC-ish channels with
//! `unbounded()`, `send`, `try_recv`, and `recv_timeout`. Since Rust 1.72
//! `std::sync::mpsc` is itself backed by crossbeam's queue and its
//! `Sender` is `Sync`, so a straight re-export is behaviourally adequate
//! for the simulator's one-receiver-per-node topology.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Create an unbounded channel, crossbeam-style.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
