//! Merging redundant protocol calls (§4.2, Figure 6).
//!
//! "We perform available expression analysis on each basic block on the
//! arguments of `ACE_MAP` calls. Consider two `ACE_MAP` calls, M1 and M2.
//! If the argument of M1 is the same as that of M2 and is available at
//! M2, then we remove M2 and reuse the result of M1. Furthermore, if the
//! protocol actions associated with the two `ACE_MAP`s are both reads or
//! both writes, we use the highest `ACE_START_*`, and the lowest
//! `ACE_END_*`, and remove the rest."
//!
//! Handle identity is resolved through block-local value numbering
//! (constants, local loads of un-redefined slots, and register copies);
//! merging never crosses a synchronization instruction.

use std::collections::HashMap;

use crate::analysis::Facts;
use crate::config::SystemConfig;
use crate::ir::*;

/// Run the pass over every function.
pub fn run(prog: &mut Program, facts: &Facts, cfg: &SystemConfig) {
    for f in &mut prog.funcs {
        // Merge maps first, collecting register renames, then apply the
        // renames function-wide: uses of a removed map's result may live
        // in other blocks (e.g. after LICM moved an access's Start/End).
        let mut rename = HashMap::new();
        for b in 0..f.blocks.len() {
            merge_maps(f, b, facts, cfg, &mut rename);
        }
        if !rename.is_empty() {
            for blk in &mut f.blocks {
                for inst in &mut blk.insts {
                    rename_operands(inst, &rename);
                }
            }
        }
        for b in 0..f.blocks.len() {
            merge_sections(f, b, facts, cfg);
        }
    }
}

/// Block-local value numbering roots for map arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Root {
    /// A load of local slot (not redefined since).
    Slot(u32),
    /// An integer constant.
    ConstI(i64),
    /// A register defined before this block (registers are
    /// single-assignment, so identity works).
    Reg(VReg),
}

fn merge_maps(
    f: &mut IFunc,
    b: BlockId,
    facts: &Facts,
    cfg: &SystemConfig,
    rename: &mut HashMap<VReg, VReg>,
) {
    let mut roots: HashMap<VReg, Root> = HashMap::new();
    let mut avail: HashMap<Root, VReg> = HashMap::new();
    let mut keep: Vec<Inst> = Vec::new();

    let block = std::mem::take(&mut f.blocks[b].insts);
    for mut inst in block {
        rename_operands(&mut inst, rename);
        // Track roots before deciding.
        match &inst {
            Inst::ConstI(dst, v) => {
                roots.insert(*dst, Root::ConstI(*v));
            }
            Inst::LoadLocal { dst, slot } => {
                roots.insert(*dst, Root::Slot(*slot));
            }
            Inst::Mov { dst, a } => {
                let r = roots.get(a).cloned().unwrap_or(Root::Reg(*a));
                roots.insert(*dst, r);
            }
            Inst::StoreLocal { slot, .. } | Inst::StoreArr { slot, .. } => {
                // Kill availability of loads from this slot.
                let slot = *slot;
                avail.retain(|r, _| *r != Root::Slot(slot));
                roots.retain(|_, r| *r != Root::Slot(slot));
            }
            _ => {}
        }
        if inst.is_sync() {
            // Conservative: a call might unmap; sync orders everything.
            avail.clear();
        }
        if let Inst::Map { aid, dst, handle, .. } = &inst {
            if facts.all_optimizable(*aid, cfg) {
                let root = roots.get(handle).cloned().unwrap_or(Root::Reg(*handle));
                if let Some(prev) = avail.get(&root) {
                    // M2 removed; its result is M1's.
                    rename.insert(*dst, *prev);
                    continue;
                }
                avail.insert(root, *dst);
            }
        }
        keep.push(inst);
    }
    f.blocks[b].insts = keep;
}

/// Merge `End_X(h) ... Start_X(h)` pairs (same mapped handle, same mode)
/// with no synchronization or other section activity on `h` in between.
fn merge_sections(f: &mut IFunc, b: BlockId, facts: &Facts, cfg: &SystemConfig) {
    loop {
        let insts = &f.blocks[b].insts;
        let mut found: Option<(usize, usize)> = None;
        'scan: for (i, inst) in insts.iter().enumerate() {
            let (h1, write1, aid1) = match inst {
                Inst::EndRead { aid, handle, .. } => (*handle, false, *aid),
                Inst::EndWrite { aid, handle, .. } => (*handle, true, *aid),
                _ => continue,
            };
            if !facts.all_optimizable(aid1, cfg) {
                continue;
            }
            for (j, later) in insts.iter().enumerate().skip(i + 1) {
                if later.is_sync() {
                    continue 'scan;
                }
                match later {
                    Inst::StartRead { aid, handle, .. } if *handle == h1 && !write1 => {
                        if facts.all_optimizable(*aid, cfg) {
                            found = Some((i, j));
                        }
                        break 'scan;
                    }
                    Inst::StartWrite { aid, handle, .. } if *handle == h1 && write1 => {
                        if facts.all_optimizable(*aid, cfg) {
                            found = Some((i, j));
                        }
                        break 'scan;
                    }
                    // Any other section activity on the same handle blocks
                    // the merge.
                    Inst::StartRead { handle, .. }
                    | Inst::StartWrite { handle, .. }
                    | Inst::EndRead { handle, .. }
                    | Inst::EndWrite { handle, .. }
                        if *handle == h1 =>
                    {
                        continue 'scan;
                    }
                    _ => {}
                }
            }
        }
        match found {
            Some((i, j)) => {
                // Remove the Start first (higher index), then the End.
                f.blocks[b].insts.remove(j);
                f.blocks[b].insts.remove(i);
            }
            None => break,
        }
    }
}

fn rename_operands(inst: &mut Inst, rename: &HashMap<VReg, VReg>) {
    let f = |r: &mut VReg| {
        if let Some(n) = rename.get(r) {
            *r = *n;
        }
    };
    match inst {
        Inst::ConstI(..) | Inst::ConstF(..) => {}
        Inst::BinOp { a, b, .. } => {
            f(a);
            f(b);
        }
        Inst::Neg { a, .. }
        | Inst::Not { a, .. }
        | Inst::IntToF { a, .. }
        | Inst::FToInt { a, .. }
        | Inst::Mov { a, .. } => f(a),
        Inst::LoadLocal { .. } => {}
        Inst::StoreLocal { a, .. } => f(a),
        Inst::LoadArr { idx, .. } => f(idx),
        Inst::StoreArr { idx, a, .. } => {
            f(idx);
            f(a);
        }
        Inst::Map { handle, .. } => f(handle),
        Inst::StartRead { handle, .. }
        | Inst::EndRead { handle, .. }
        | Inst::StartWrite { handle, .. }
        | Inst::EndWrite { handle, .. }
        | Inst::Lock { handle, .. }
        | Inst::Unlock { handle, .. } => f(handle),
        Inst::GLoad { handle, off, .. } => {
            f(handle);
            f(off);
        }
        Inst::GStore { handle, off, val } => {
            f(handle);
            f(off);
            f(val);
        }
        Inst::Call { args, .. } | Inst::Intrinsic { args, .. } => {
            for a in args {
                f(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SystemConfig;
    use crate::{compile, OptLevel};
    use ace_core::{run_ace, CostModel};

    /// Figure 6's pattern: two consecutive writes through related
    /// pointers; merging removes the second map and fuses the sections.
    const FIG6: &str = r#"
        double main() {
            space s = new_space("Update");
            shared double *x = (shared double*) gmalloc(s, 2);
            double y = 5.0;
            x[0] = y;
            x[1] = 4.0;
            double out = x[0] + x[1];
            return out;
        }
    "#;

    fn dyn_counts(src: &str, level: OptLevel) -> (u64, u64, u64, f64) {
        let cfg = SystemConfig::builtin();
        let p = compile(src, &cfg, level).unwrap();
        let r = run_ace(1, CostModel::free(), |rt| {
            let v = crate::vm::run_program(rt, &p).unwrap().as_f();
            let c = rt.counters();
            (c.map_hits + c.map_misses, c.start_writes, c.ends, v)
        });
        r.results[0]
    }

    #[test]
    fn figure6_merges_maps_and_sections() {
        let (maps0, sw0, _e0, v0) = dyn_counts(FIG6, OptLevel::O0);
        let (maps1, sw1, _e1, v1) = dyn_counts(FIG6, OptLevel::Merge);
        assert_eq!(v0, 9.0);
        assert_eq!(v1, 9.0, "merging must not change results");
        assert!(maps1 < maps0, "maps should merge: {maps1} < {maps0}");
        assert!(sw1 < sw0, "write sections should fuse: {sw1} < {sw0}");
        assert_eq!(sw1, 1, "figure 6 fuses the two writes into one section");
    }

    #[test]
    fn sc_protocol_blocks_merging() {
        let sc = FIG6.replace("Update", "SC");
        let (maps0, sw0, _, v0) = dyn_counts(&sc, OptLevel::O0);
        let (maps1, sw1, _, v1) = dyn_counts(&sc, OptLevel::Merge);
        assert_eq!(v0, v1);
        assert_eq!(maps0, maps1, "SC maps must not merge");
        assert_eq!(sw0, sw1, "SC sections must not fuse");
    }

    #[test]
    fn lock_blocks_section_merge() {
        let src = r#"
            double main() {
                space s = new_space("Update");
                shared double *x = (shared double*) gmalloc(s, 1);
                x[0] = 1.0;
                lock(x);
                x[0] = 2.0;
                unlock(x);
                return x[0];
            }
        "#;
        let (_, sw, _, v) = dyn_counts(src, OptLevel::Merge);
        assert_eq!(v, 2.0);
        assert_eq!(sw, 2, "sections must not merge across a lock");
    }

    #[test]
    fn read_and_write_sections_do_not_fuse() {
        let src = r#"
            double main() {
                space s = new_space("Update");
                shared double *x = (shared double*) gmalloc(s, 1);
                x[0] = 2.5;
                double v = x[0];
                return v;
            }
        "#;
        let (_, sw, _, v) = dyn_counts(src, OptLevel::Merge);
        assert_eq!(v, 2.5);
        assert_eq!(sw, 1, "a write and a read section stay distinct");
    }

    #[test]
    fn store_kills_map_availability() {
        // The handle local is reassigned between the accesses; the maps
        // must not merge.
        let src = r#"
            double main() {
                space s = new_space("Update");
                shared double *x = (shared double*) gmalloc(s, 1);
                shared double *y = (shared double*) gmalloc(s, 1);
                x[0] = 1.0;
                x = y;
                x[0] = 2.0;
                return x[0];
            }
        "#;
        let (_, _, _, v) = dyn_counts(src, OptLevel::Merge);
        assert_eq!(v, 2.0, "reassigned handle must hit the second region");
    }
}
