//! Per-node bookkeeping for one shared region.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use crate::ids::{RegionId, SpaceId};

/// Node-local state for one region: the cached data, access bookkeeping,
/// and a bag of protocol-owned fields.
///
/// Rather than a `Box<dyn Any>` per region, protocols share a fixed set of
/// fields that cover what real directory protocols keep per line: a state
/// code, a sharer bitmask, an owner, an outstanding-ack count, a scalar, a
/// blocked-request queue and an optional twin buffer. Each protocol
/// documents its own interpretation. This keeps the per-region footprint
/// flat and the hot path allocation-free.
pub struct RegionEntry {
    /// The region's global id (home rank is `id.home()`).
    pub id: RegionId,
    /// The space this region was allocated from. Fixed for the region's
    /// lifetime; the space's *protocol* may change.
    pub space: SpaceId,
    /// Size of the region in 8-byte words.
    pub words: usize,
    /// The local copy of the region's data. At the home node this is the
    /// master copy; elsewhere it is a cache whose validity the protocol
    /// tracks in `st`.
    pub data: RefCell<Box<[u64]>>,
    /// Map count (maps nest, per CRL semantics).
    pub mapped: Cell<u32>,
    /// Number of open read sections.
    pub read_active: Cell<u32>,
    /// Number of open write sections.
    pub write_active: Cell<u32>,

    // ---- protocol-owned fields ----
    /// Protocol-defined state code.
    pub st: Cell<u32>,
    /// Home-side sharer bitmask (bit *i* = node *i* holds a copy).
    pub sharers: Cell<u64>,
    /// Home-side exclusive owner rank, or -1.
    pub owner: Cell<i32>,
    /// Outstanding acknowledgements (invalidations, flushes, deltas...).
    pub pending: Cell<u32>,
    /// Protocol-defined scalar (epoch numbers, fetched tickets, ...).
    pub aux: Cell<u64>,
    /// Requests that arrived while the region was in a transient state,
    /// replayed when the region quiesces: `(from, op, arg)`.
    pub blocked: RefCell<VecDeque<(u16, u16, u64)>>,
    /// Twin buffer for diffing protocols (pipelined delta writes).
    pub twin: RefCell<Option<Box<[u64]>>>,

    // ---- default region lock (home side + requester side) ----
    /// Home side: lock currently held by someone.
    pub lock_held: Cell<bool>,
    /// Home side: FIFO of waiting rank(s).
    pub lock_queue: RefCell<VecDeque<u16>>,
    /// Requester side: our pending lock request has been granted.
    pub lock_granted: Cell<bool>,
}

impl RegionEntry {
    /// Create the entry with zeroed data (home allocation or fresh cache).
    pub fn new(id: RegionId, space: SpaceId, words: usize) -> Self {
        RegionEntry {
            id,
            space,
            words,
            data: RefCell::new(vec![0u64; words].into_boxed_slice()),
            mapped: Cell::new(0),
            read_active: Cell::new(0),
            write_active: Cell::new(0),
            st: Cell::new(0),
            sharers: Cell::new(0),
            owner: Cell::new(-1),
            pending: Cell::new(0),
            aux: Cell::new(0),
            blocked: RefCell::new(VecDeque::new()),
            twin: RefCell::new(None),
            lock_held: Cell::new(false),
            lock_queue: RefCell::new(VecDeque::new()),
            lock_granted: Cell::new(false),
        }
    }

    /// Whether this node is the region's home.
    pub fn is_home_of(&self, rank: usize) -> bool {
        self.id.home() == rank
    }

    /// Whether any access section (read or write) is currently open.
    pub fn busy(&self) -> bool {
        self.read_active.get() > 0 || self.write_active.get() > 0
    }

    /// Snapshot the current data (bulk transfer payload).
    pub fn clone_data(&self) -> Box<[u64]> {
        self.data.borrow().clone()
    }

    /// Overwrite the local copy with incoming data.
    ///
    /// # Panics
    ///
    /// Panics if the payload size does not match the region size.
    pub fn install_data(&self, incoming: &[u64]) {
        let mut d = self.data.borrow_mut();
        assert_eq!(incoming.len(), d.len(), "payload size mismatch for {}", self.id);
        d.copy_from_slice(incoming);
    }

    /// Add `rank` to the sharer bitmask.
    pub fn add_sharer(&self, rank: usize) {
        self.sharers.set(self.sharers.get() | (1 << rank));
    }

    /// Remove `rank` from the sharer bitmask.
    pub fn drop_sharer(&self, rank: usize) {
        self.sharers.set(self.sharers.get() & !(1 << rank));
    }

    /// Whether `rank` is in the sharer bitmask.
    pub fn is_sharer(&self, rank: usize) -> bool {
        self.sharers.get() & (1 << rank) != 0
    }

    /// Iterate the ranks present in the sharer bitmask.
    pub fn sharer_ranks(&self) -> impl Iterator<Item = usize> {
        let mask = self.sharers.get();
        (0..64).filter(move |i| mask & (1 << i) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(words: usize) -> RegionEntry {
        RegionEntry::new(RegionId::new(2, 5), SpaceId(1), words)
    }

    #[test]
    fn fresh_entry_is_zeroed_and_quiescent() {
        let e = entry(4);
        assert_eq!(&**e.data.borrow(), &[0u64; 4]);
        assert!(!e.busy());
        assert_eq!(e.owner.get(), -1);
        assert!(e.is_home_of(2));
        assert!(!e.is_home_of(0));
    }

    #[test]
    fn sharer_bitmask_ops() {
        let e = entry(1);
        e.add_sharer(0);
        e.add_sharer(5);
        e.add_sharer(63);
        assert!(e.is_sharer(5));
        assert_eq!(e.sharer_ranks().collect::<Vec<_>>(), vec![0, 5, 63]);
        e.drop_sharer(5);
        assert!(!e.is_sharer(5));
        assert_eq!(e.sharer_ranks().collect::<Vec<_>>(), vec![0, 63]);
    }

    #[test]
    fn data_install_round_trip() {
        let e = entry(3);
        e.install_data(&[7, 8, 9]);
        assert_eq!(&*e.clone_data(), &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn mismatched_install_panics() {
        entry(3).install_data(&[1, 2]);
    }

    #[test]
    fn busy_tracks_open_sections() {
        let e = entry(1);
        e.read_active.set(1);
        assert!(e.busy());
        e.read_active.set(0);
        e.write_active.set(2);
        assert!(e.busy());
        e.write_active.set(0);
        assert!(!e.busy());
    }
}
