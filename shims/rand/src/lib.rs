//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface the workspace uses — `StdRng` seeded via
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer and f64
//! half-open ranges — on top of SplitMix64. Deterministic across runs and
//! platforms, which is all the benchmark apps need (they seed per rank).

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`]. The element type
/// `T` is a trait parameter (not an associated type) so that integer
/// literals in ranges infer from the expected output type, as upstream.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

/// SplitMix64: tiny, fast, and plenty uniform for workload generation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The "standard" generator — here SplitMix64 (upstream's StdRng is
    /// ChaCha12; callers only rely on determinism given a seed).
    pub type StdRng = super::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = r.gen_range(5..100);
            assert!((5..100).contains(&i));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }
}
