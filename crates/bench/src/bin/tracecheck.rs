//! CI gate for the trace layer: run one traced fig7b configuration (EM3D
//! under its custom protocol), export Chrome `trace_event` JSON, and
//! validate it — schema-parses, virtual time is monotone per track, and
//! the message flow arrows match the machine's send statistics.
//!
//! Usage: tracecheck [--procs N] [--out PATH]
//!
//! Exits non-zero (panics) on any violation.

use ace_apps::Variant;
use ace_bench::fig7::{fig_machine, run_ace_app_on, Scale};
use ace_core::{validate_chrome_trace, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let procs = args
        .iter()
        .position(|a| a == "--procs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let out = run_ace_app_on(
        "em3d",
        Scale::Small,
        Variant::Custom,
        fig_machine(procs).trace(TraceConfig::on()),
    );
    let trace = out.trace.as_ref().expect("traced run carries a trace");
    let doc = trace.to_chrome_json();

    if let Some(path) = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)) {
        std::fs::write(path, &doc).expect("write --out file");
        println!("wrote {} bytes to {path}", doc.len());
    }

    let check = validate_chrome_trace(&doc).expect("exported trace must be schema-valid");
    println!(
        "trace ok: {} events across {} tracks, {} flow arrows",
        check.events, check.tracks, check.flows_matched
    );

    assert_eq!(check.tracks, procs as u64, "one track per node");
    assert_eq!(
        trace.send_count(),
        out.wire_msgs,
        "one trace Send event per wire envelope the machine counted"
    );
    assert_eq!(
        trace.logical_send_count(),
        out.msgs,
        "trace sub-message counts must cover every logical send"
    );
    assert!(out.wire_msgs <= out.msgs, "coalescing can only merge envelopes");
    assert_eq!(check.flow_starts, out.wire_msgs, "one flow arrow start per wire envelope");
    assert_eq!(
        check.flow_starts, check.flows_matched,
        "every flow start must pair with a flow finish"
    );
    assert_eq!(
        check.flow_ends, check.flows_matched,
        "no dangling flow ends may survive export (the validator rejects them outright; \
         this pins the exported counts too)"
    );
    for n in &trace.nodes {
        assert!(
            n.events.windows(2).all(|w| w[0].t <= w[1].t),
            "node {} events must be virtual-time monotone",
            n.rank
        );
        assert_eq!(n.dropped, 0, "node {} dropped trace events (ring too small)", n.rank);
    }
    println!(
        "tracecheck passed: {} logical messages in {} wire envelopes, {} procs",
        out.msgs, out.wire_msgs, procs
    );
}
