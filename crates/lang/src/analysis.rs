//! The space/protocol dataflow of §4.2.
//!
//! "Before any optimizations can be performed ... it is necessary to
//! determine, for each access, the set of spaces that are possibly
//! associated with the data being accessed, and the set of possible
//! protocols of each space at that access. [...] Information is generated
//! at Ace_GMalloc calls and propagated to accesses. Concurrently, we
//! propagate information about the protocols associated with spaces from
//! Ace_NewSpace and Ace_ChangeProtocol calls."
//!
//! Abstraction: spaces are identified by their `new_space` *site*; a
//! handle's abstract value is the set of sites its region's space may come
//! from (`Top` = unknown). The protocol environment maps each site to the
//! set of protocols possibly bound at the current program point —
//! flow-sensitive, with strong updates through `change_protocol` when the
//! space set is a singleton. Handles that round-trip through shared
//! memory are summarized by a single global set (field-insensitive).
//! The analysis is interprocedural: a summary (entry fact ⊔ over call
//! sites → exit fact) is computed per function to fixpoint.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ace_protocols::ProtoSpec;

use crate::config::SystemConfig;
use crate::ir::*;

/// A set of space-creation sites, or Top (any space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sites {
    /// Exactly these sites.
    Set(BTreeSet<u32>),
    /// Unknown.
    Top,
}

impl Sites {
    fn empty() -> Self {
        Sites::Set(BTreeSet::new())
    }

    fn single(s: u32) -> Self {
        Sites::Set(BTreeSet::from([s]))
    }

    fn join(&self, o: &Sites) -> Sites {
        match (self, o) {
            (Sites::Top, _) | (_, Sites::Top) => Sites::Top,
            (Sites::Set(a), Sites::Set(b)) => Sites::Set(a.union(b).cloned().collect()),
        }
    }
}

/// Per-site protocol bindings (missing site = not created on this path).
pub type ProtoEnv = BTreeMap<u32, BTreeSet<ProtoSpec>>;

fn penv_join(a: &ProtoEnv, b: &ProtoEnv) -> ProtoEnv {
    let mut out = a.clone();
    for (k, v) in b {
        out.entry(*k).or_default().extend(v.iter().cloned());
    }
    out
}

/// The flow fact at one program point inside a function.
#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: Vec<Sites>,
    slots: Vec<Sites>,
    mem: Sites,
    penv: ProtoEnv,
}

impl State {
    fn bottom(f: &IFunc) -> State {
        State {
            regs: vec![Sites::empty(); f.nregs as usize],
            slots: vec![Sites::empty(); f.slots.len()],
            mem: Sites::empty(),
            penv: ProtoEnv::new(),
        }
    }

    fn join(&self, o: &State) -> State {
        State {
            regs: self.regs.iter().zip(&o.regs).map(|(a, b)| a.join(b)).collect(),
            slots: self.slots.iter().zip(&o.slots).map(|(a, b)| a.join(b)).collect(),
            mem: self.mem.join(&o.mem),
            penv: penv_join(&self.penv, &o.penv),
        }
    }
}

/// A function summary for the interprocedural fixpoint.
#[derive(Debug, Clone, PartialEq)]
struct Summary {
    /// Joined entry: argument sets + caller's mem/penv.
    entry_args: Vec<Sites>,
    entry_mem: Sites,
    entry_penv: ProtoEnv,
    seen: bool,
    /// Exit: return set + mem/penv at returns.
    exit_ret: Sites,
    exit_mem: Sites,
    exit_penv: ProtoEnv,
}

impl Summary {
    fn new(nparams: usize) -> Self {
        Summary {
            entry_args: vec![Sites::empty(); nparams],
            entry_mem: Sites::empty(),
            entry_penv: ProtoEnv::new(),
            seen: false,
            exit_ret: Sites::empty(),
            exit_mem: Sites::empty(),
            exit_penv: ProtoEnv::new(),
        }
    }
}

/// Analysis results: per access site, the set of possible protocols.
#[derive(Debug, Default)]
pub struct Facts {
    /// AccessId → possible protocols. Missing or empty = no information
    /// (treated conservatively by the passes).
    pub access: HashMap<AccessId, BTreeSet<ProtoSpec>>,
    /// All protocol specs mentioned anywhere (the meaning of `Top`).
    pub all_specs: BTreeSet<ProtoSpec>,
    /// Number of space sites in the program.
    pub nsites: u32,
}

impl Facts {
    /// The protocol set for an access; `None` if nothing was recorded.
    pub fn protocols(&self, aid: AccessId) -> Option<&BTreeSet<ProtoSpec>> {
        self.access.get(&aid).filter(|s| !s.is_empty())
    }

    /// Whether every possible protocol of `aid` is registered optimizable
    /// (the gate for LICM and merging; empty/unknown = not optimizable).
    pub fn all_optimizable(&self, aid: AccessId, cfg: &SystemConfig) -> bool {
        match self.protocols(aid) {
            Some(set) => set.iter().all(|s| cfg.optimizable(*s)),
            None => false,
        }
    }

    /// The unique protocol of `aid`, if statically known.
    pub fn unique_protocol(&self, aid: AccessId) -> Option<ProtoSpec> {
        let set = self.protocols(aid)?;
        (set.len() == 1).then(|| *set.iter().next().unwrap())
    }
}

/// Run the dataflow over a lowered program.
pub fn analyze(prog: &Program, _cfg: &SystemConfig) -> Facts {
    let mut facts = Facts { nsites: count_sites(prog), ..Default::default() };
    for f in &prog.funcs {
        for b in &f.blocks {
            for i in &b.insts {
                if let Inst::Intrinsic {
                    which: Intr::NewSpace { spec, .. } | Intr::ChangeProtocol { spec },
                    ..
                } = i
                {
                    facts.all_specs.insert(*spec);
                }
            }
        }
    }

    let mut summaries: Vec<Summary> = prog.funcs.iter().map(|f| Summary::new(f.nparams)).collect();
    summaries[prog.main].seen = true;

    // Interprocedural fixpoint: re-analyze while anything changes.
    // Access facts accumulate monotonically across passes.
    for _round in 0..64 {
        let before = summaries.clone();
        for (fid, f) in prog.funcs.iter().enumerate() {
            if summaries[fid].seen {
                analyze_fn(prog, f, fid, &mut summaries, &mut facts);
            }
        }
        if summaries == before {
            break;
        }
    }
    facts
}

fn count_sites(prog: &Program) -> u32 {
    let mut n = 0;
    for f in &prog.funcs {
        for b in &f.blocks {
            for i in &b.insts {
                if let Inst::Intrinsic { which: Intr::NewSpace { site, .. }, .. } = i {
                    n = n.max(site + 1);
                }
            }
        }
    }
    n
}

fn analyze_fn(
    prog: &Program,
    f: &IFunc,
    fid: FuncId,
    summaries: &mut [Summary],
    facts: &mut Facts,
) {
    let nblocks = f.blocks.len();
    let mut inb: Vec<Option<State>> = vec![None; nblocks];
    let mut entry = State::bottom(f);
    {
        let s = &summaries[fid];
        for (i, a) in s.entry_args.iter().enumerate() {
            entry.regs.resize(f.nregs as usize, Sites::empty());
            entry.slots[i] = a.clone();
        }
        entry.mem = s.entry_mem.clone();
        entry.penv = s.entry_penv.clone();
    }
    inb[0] = Some(entry);
    let mut work: Vec<BlockId> = vec![0];
    let mut exit_ret = Sites::empty();
    let mut exit_mem = Sites::empty();
    let mut exit_penv = ProtoEnv::new();

    while let Some(b) = work.pop() {
        let mut st = inb[b].clone().expect("scheduled blocks have input");
        for inst in &f.blocks[b].insts {
            transfer(prog, inst, &mut st, summaries, facts);
        }
        match &f.blocks[b].term {
            Term::Jump(t) => {
                push_target(f, &mut inb, &mut work, *t, &st);
            }
            Term::Br { t, f: fb, .. } => {
                push_target(f, &mut inb, &mut work, *t, &st);
                push_target(f, &mut inb, &mut work, *fb, &st);
            }
            Term::Ret(r) => {
                if let Some(r) = r {
                    exit_ret = exit_ret.join(&st.regs[*r as usize]);
                }
                exit_mem = exit_mem.join(&st.mem);
                exit_penv = penv_join(&exit_penv, &st.penv);
            }
        }
    }

    let s = &mut summaries[fid];
    s.exit_ret = s.exit_ret.join(&exit_ret);
    s.exit_mem = s.exit_mem.join(&exit_mem);
    s.exit_penv = penv_join(&s.exit_penv, &exit_penv);
}

fn push_target(
    f: &IFunc,
    inb: &mut [Option<State>],
    work: &mut Vec<BlockId>,
    t: BlockId,
    st: &State,
) {
    let _ = f;
    let joined = match &inb[t] {
        Some(old) => old.join(st),
        None => st.clone(),
    };
    if inb[t].as_ref() != Some(&joined) {
        inb[t] = Some(joined);
        if !work.contains(&t) {
            work.push(t);
        }
    }
}

fn transfer(
    prog: &Program,
    inst: &Inst,
    st: &mut State,
    summaries: &mut [Summary],
    facts: &mut Facts,
) {
    let record = |facts: &mut Facts, st: &State, aid: AccessId, handle: VReg| {
        let set: BTreeSet<ProtoSpec> = match &st.regs[handle as usize] {
            Sites::Top => facts.all_specs.clone(),
            Sites::Set(ks) => {
                ks.iter().flat_map(|k| st.penv.get(k).cloned().unwrap_or_default()).collect()
            }
        };
        facts.access.entry(aid).or_default().extend(set);
    };
    match inst {
        Inst::Mov { dst, a } => st.regs[*dst as usize] = st.regs[*a as usize].clone(),
        Inst::LoadLocal { dst, slot } => st.regs[*dst as usize] = st.slots[*slot as usize].clone(),
        Inst::StoreLocal { slot, a } => st.slots[*slot as usize] = st.regs[*a as usize].clone(),
        Inst::LoadArr { dst, slot, .. } => {
            st.regs[*dst as usize] = st.slots[*slot as usize].clone()
        }
        Inst::StoreArr { slot, a, .. } => {
            st.slots[*slot as usize] = st.slots[*slot as usize].join(&st.regs[*a as usize])
        }
        Inst::Map { aid, dst, handle, .. } => {
            st.regs[*dst as usize] = st.regs[*handle as usize].clone();
            record(facts, st, *aid, *handle);
        }
        Inst::StartRead { aid, handle, .. }
        | Inst::EndRead { aid, handle, .. }
        | Inst::StartWrite { aid, handle, .. }
        | Inst::EndWrite { aid, handle, .. }
        | Inst::Lock { aid, handle, .. }
        | Inst::Unlock { aid, handle, .. } => record(facts, st, *aid, *handle),
        Inst::GLoad { dst, ty, .. } => {
            st.regs[*dst as usize] = if *ty == ValTy::H { st.mem.clone() } else { Sites::empty() };
        }
        Inst::GStore { val, .. } => {
            st.mem = st.mem.join(&st.regs[*val as usize]);
        }
        Inst::Intrinsic { dst, which, args } => match which {
            Intr::NewSpace { spec, site } => {
                if let Some(d) = dst {
                    st.regs[*d as usize] = Sites::single(*site);
                }
                // Re-executing the same site rebinds the same protocol, so
                // a strong update is safe even inside loops.
                st.penv.insert(*site, BTreeSet::from([*spec]));
            }
            Intr::ChangeProtocol { spec } => match st.regs[args[0] as usize].clone() {
                Sites::Set(ks) if ks.len() == 1 => {
                    st.penv.insert(*ks.iter().next().unwrap(), BTreeSet::from([*spec]));
                }
                Sites::Set(ks) => {
                    for k in ks {
                        st.penv.entry(k).or_default().insert(*spec);
                    }
                }
                Sites::Top => {
                    for k in 0..facts.nsites {
                        st.penv.entry(k).or_default().insert(*spec);
                    }
                }
            },
            Intr::Gmalloc { .. } => {
                if let Some(d) = dst {
                    st.regs[*d as usize] = st.regs[args[0] as usize].clone();
                }
            }
            Intr::BcastP => {
                if let Some(d) = dst {
                    // SPMD: the sent value comes from the same program
                    // point on the root, so its abstract value is the same.
                    st.regs[*d as usize] = st.regs[args[1] as usize].clone();
                }
            }
            _ => {
                if let Some(d) = dst {
                    st.regs[*d as usize] = Sites::empty();
                }
            }
        },
        Inst::Call { dst, func, args } => {
            // Propagate into the callee's entry summary.
            let callee_params = prog.funcs[*func].nparams;
            let mut changed = !summaries[*func].seen;
            summaries[*func].seen = true;
            for i in 0..callee_params.min(args.len()) {
                let j = summaries[*func].entry_args[i].join(&st.regs[args[i] as usize]);
                if j != summaries[*func].entry_args[i] {
                    summaries[*func].entry_args[i] = j;
                    changed = true;
                }
            }
            let jm = summaries[*func].entry_mem.join(&st.mem);
            if jm != summaries[*func].entry_mem {
                summaries[*func].entry_mem = jm;
                changed = true;
            }
            let jp = penv_join(&summaries[*func].entry_penv, &st.penv);
            if jp != summaries[*func].entry_penv {
                summaries[*func].entry_penv = jp;
                changed = true;
            }
            let _ = changed;
            // Absorb the callee's (current) exit effects.
            let ex = summaries[*func].clone();
            st.mem = st.mem.join(&ex.exit_mem);
            st.penv = penv_join(&st.penv, &ex.exit_penv);
            if let Some(d) = dst {
                st.regs[*d as usize] = ex.exit_ret;
            }
        }
        // constants, arithmetic, conversions: never handles
        Inst::ConstI(dst, _) | Inst::ConstF(dst, _) => st.regs[*dst as usize] = Sites::empty(),
        Inst::BinOp { dst, .. }
        | Inst::Neg { dst, .. }
        | Inst::Not { dst, .. }
        | Inst::IntToF { dst, .. }
        | Inst::FToInt { dst, .. } => st.regs[*dst as usize] = Sites::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, config::SystemConfig, OptLevel};

    fn facts_of(src: &str) -> (Program, Facts) {
        let cfg = SystemConfig::builtin();
        let prog = compile(src, &cfg, OptLevel::O0).unwrap();
        let facts = analyze(&prog, &cfg);
        (prog, facts)
    }

    fn all_access_sets(prog: &Program, facts: &Facts) -> Vec<BTreeSet<ProtoSpec>> {
        let mut out = Vec::new();
        for f in &prog.funcs {
            for b in &f.blocks {
                for i in &b.insts {
                    if let Inst::StartRead { aid, .. } | Inst::StartWrite { aid, .. } = i {
                        out.push(facts.protocols(*aid).cloned().unwrap_or_default());
                    }
                }
            }
        }
        out
    }

    #[test]
    fn protocol_flows_from_new_space() {
        let (p, f) = facts_of(
            r#"void main() {
                space s = new_space("Update");
                shared double *v = (shared double*) gmalloc(s, 4);
                v[0] = 1.0;
            }"#,
        );
        let sets = all_access_sets(&p, &f);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0], BTreeSet::from([ProtoSpec::DynUpdate]));
    }

    #[test]
    fn change_protocol_strong_update() {
        let (p, f) = facts_of(
            r#"void main() {
                space s = new_space("SC");
                shared double *v = (shared double*) gmalloc(s, 4);
                change_protocol(s, "StaticUpdate");
                double x = v[0];
            }"#,
        );
        let sets = all_access_sets(&p, &f);
        // The access AFTER change_protocol sees only StaticUpdate (strong
        // update through the singleton space set).
        assert_eq!(sets[0], BTreeSet::from([ProtoSpec::StaticUpdate]));
    }

    #[test]
    fn access_before_change_sees_old_protocol() {
        let (p, f) = facts_of(
            r#"void main() {
                space s = new_space("SC");
                shared double *v = (shared double*) gmalloc(s, 4);
                v[0] = 1.0;
                change_protocol(s, "Null");
            }"#,
        );
        let sets = all_access_sets(&p, &f);
        assert_eq!(sets[0], BTreeSet::from([ProtoSpec::Sc]));
    }

    #[test]
    fn two_spaces_stay_separate() {
        let (p, f) = facts_of(
            r#"void main() {
                space a = new_space("SC");
                space b = new_space("Null");
                shared double *x = (shared double*) gmalloc(a, 1);
                shared double *y = (shared double*) gmalloc(b, 1);
                x[0] = 1.0;
                y[0] = 2.0;
            }"#,
        );
        let sets = all_access_sets(&p, &f);
        assert_eq!(sets[0], BTreeSet::from([ProtoSpec::Sc]));
        assert_eq!(sets[1], BTreeSet::from([ProtoSpec::Null]));
    }

    #[test]
    fn merged_paths_union_protocols() {
        let (p, f) = facts_of(
            r#"void main() {
                space a = new_space("SC");
                space b = new_space("Null");
                shared double *x;
                if (rank() == 0) { x = (shared double*) gmalloc(a, 1); }
                else { x = (shared double*) gmalloc(b, 1); }
                x[0] = 1.0;
            }"#,
        );
        let sets = all_access_sets(&p, &f);
        let last = sets.last().unwrap();
        assert_eq!(last, &BTreeSet::from([ProtoSpec::Sc, ProtoSpec::Null]));
    }

    #[test]
    fn interprocedural_propagation() {
        let (p, f) = facts_of(
            r#"
            void work(shared double *v) { v[0] = 3.0; }
            void main() {
                space s = new_space("Pipelined");
                shared double *v = (shared double*) gmalloc(s, 1);
                work(v);
            }"#,
        );
        let sets = all_access_sets(&p, &f);
        assert!(sets.iter().any(|s| s == &BTreeSet::from([ProtoSpec::Pipelined])), "{sets:?}");
    }

    #[test]
    fn handles_through_shared_memory_use_summary() {
        let (p, f) = facts_of(
            r#"
            void main() {
                space s = new_space("Update");
                shared int *table = (shared int*) gmalloc(s, 4);
                shared double *v = (shared double*) gmalloc(s, 1);
                table[0] = (int) v;
                shared double *w = (shared double*) table[0];
                w[0] = 9.0;
            }"#,
        );
        // `w` was laundered through an int store, so its space set is
        // empty/unknown — the final write must NOT claim a singleton
        // protocol via the memory summary (ints are not tracked).
        let sets = all_access_sets(&p, &f);
        assert!(sets.last().unwrap().is_empty());
    }
}
