//! The real-socket backend: the same machine over TCP or Unix-domain
//! stream sockets, across OS processes.
//!
//! Topology is a full mesh. A run bootstraps in two phases:
//!
//! 1. **Rendezvous.** Every rank first binds its own *mesh listener*,
//!    then rank 0 additionally binds the rendezvous address from
//!    [`SocketCfg`]. Each other rank connects there and sends
//!    `Join { want_rank, listen_addr }`; once all `nprocs` ranks are
//!    present, rank 0 answers each with `Welcome { rank, addrs }` — the
//!    assigned rank plus every rank's mesh address — and closes the
//!    rendezvous listener.
//! 2. **Mesh.** Rank `i` connects to every rank `j < i` (announcing
//!    itself with `Hello { rank }`) and accepts connections from every
//!    `j > i`. Listeners come down once the mesh is complete; there is no
//!    reconnect path — a lost connection is a dead peer.
//!
//! After the handshake each endpoint runs one **writer thread** and one
//! **reader thread** per peer. Writers own the send half: they encode
//! [`Wire`] envelopes with [`WireCodec`], frame them with a `u32` length
//! prefix, and batch flushes by draining their feed channel before each
//! `flush` — per-pair FIFO holds because one FIFO channel feeds one
//! ordered byte stream. Readers decode frames into the endpoint's inbox
//! channel, which the node parks on exactly as it parks on the in-process
//! channel.
//!
//! Failure mapping is reconnect-free fail-fast, same contract as the
//! in-process backend: a panicking node broadcasts a `Failed` frame
//! (rank + panic message) to every peer before closing, and an endpoint
//! whose connection dies *without* a `Goodbye` frame records the peer as
//! failed — both land on the machine-wide [`FailBoard`] that
//! `Node::check_peers` polls.

use std::cell::{Cell, RefCell};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::envelope::Wire;
use crate::transport::codec::{put_string, CodecError, WireCodec, WireReader};
use crate::transport::{FailBoard, Transport, TryWireError, WaitWireError};

/// Rank cap for socket machines: the mesh needs O(n²) descriptors
/// machine-wide and 2(n-1) I/O threads per rank, so the backend stays
/// honest about what a full mesh can carry. (In-process machines go to
/// [`crate::MAX_NODES`].)
pub const SOCKET_MAX_RANKS: usize = 64;

/// Measured fixed framing overhead per wire envelope on this backend:
/// 4-byte length prefix + 1 frame kind + 1 wire tag + 4 source rank +
/// 8 send time + 4 byte count + 1 vector-clock presence flag. Reported
/// through [`Transport::header_bytes`], so byte *accounting* under
/// `Socket` reflects real framing while logical message counts stay
/// identical to the in-process backend.
pub const SOCKET_HEADER_BYTES: usize = 23;

/// Hard ceiling on a received frame's body, so a corrupt length prefix
/// cannot ask for gigabytes.
const MAX_FRAME: usize = 1 << 28;

/// Poll interval for deadline-bounded accepts and connect retries.
const HANDSHAKE_POLL: Duration = Duration::from_millis(2);

/// Frame kinds (first body byte).
const FR_WIRE: u8 = 0;
const FR_FAILED: u8 = 1;
const FR_GOODBYE: u8 = 2;
const HS_JOIN: u8 = 10;
const HS_WELCOME: u8 = 11;
const HS_HELLO: u8 = 12;

/// Per-run uniquifier for auto-generated rendezvous and mesh-listener
/// paths (several loopback machines may run concurrently in one test
/// process).
static PATH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A socket address, either family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockAddr {
    /// A TCP `host:port`, e.g. `"127.0.0.1:7000"`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// Pick a fresh Unix-domain path under the temp directory at run
    /// time. Only valid for single-process (loopback) machines: other
    /// processes cannot know the generated path, so
    /// [`crate::MachineBuilder::spawn_rank`] rejects it.
    Auto,
}

impl SockAddr {
    fn is_tcp(&self) -> bool {
        matches!(self, SockAddr::Tcp(_))
    }
}

/// Socket-backend configuration: where ranks rendezvous and how long the
/// bootstrap may take.
#[derive(Debug, Clone)]
pub struct SocketCfg {
    /// The rendezvous address rank 0 listens on and every other rank
    /// connects to. The mesh uses the same address family.
    pub rendezvous: SockAddr,
    /// Bound on the whole bootstrap (rendezvous plus mesh). Processes of
    /// a multi-process launch may start seconds apart; connects retry
    /// until this deadline.
    pub handshake_timeout: Duration,
}

impl SocketCfg {
    /// Loopback configuration: auto-generated Unix-domain paths, for
    /// single-process runs (tests, the equivalence suite).
    pub fn loopback() -> Self {
        SocketCfg { rendezvous: SockAddr::Auto, handshake_timeout: Duration::from_secs(30) }
    }

    /// Rendezvous over a Unix-domain socket at `path`.
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        SocketCfg { rendezvous: SockAddr::Unix(path.into()), ..Self::loopback() }
    }

    /// Rendezvous over TCP at `addr` (`host:port`).
    pub fn tcp(addr: impl Into<String>) -> Self {
        SocketCfg { rendezvous: SockAddr::Tcp(addr.into()), ..Self::loopback() }
    }

    /// Override the bootstrap deadline.
    pub fn handshake_timeout(mut self, d: Duration) -> Self {
        self.handshake_timeout = d;
        self
    }

    /// Resolve [`SockAddr::Auto`] to a concrete per-run Unix path.
    pub(crate) fn resolved(&self) -> SocketCfg {
        match &self.rendezvous {
            SockAddr::Auto => {
                let path = std::env::temp_dir().join(format!(
                    "ace-rdv-{}-{}",
                    std::process::id(),
                    PATH_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                SocketCfg { rendezvous: SockAddr::Unix(path), ..self.clone() }
            }
            _ => self.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Family-agnostic streams and listeners
// ---------------------------------------------------------------------------

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    fn shutdown_write(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind the rendezvous listener at the configured address. A stale
    /// Unix socket file from a crashed previous run is removed first.
    fn bind_rendezvous(addr: &SockAddr) -> io::Result<Listener> {
        match addr {
            SockAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a.as_str())?)),
            SockAddr::Unix(p) => {
                let _ = std::fs::remove_file(p);
                Ok(Listener::Unix(UnixListener::bind(p)?, p.clone()))
            }
            SockAddr::Auto => unreachable!("Auto is resolved before binding"),
        }
    }

    /// Bind this rank's mesh listener in the same family as the
    /// rendezvous: an ephemeral loopback TCP port, or a derived
    /// per-rank Unix path next to the rendezvous path.
    fn bind_mesh(rendezvous: &SockAddr, rank: usize) -> io::Result<Listener> {
        if rendezvous.is_tcp() {
            return Ok(Listener::Tcp(TcpListener::bind("127.0.0.1:0")?));
        }
        let base = match rendezvous {
            SockAddr::Unix(p) => p.clone(),
            _ => unreachable!("Auto is resolved before binding"),
        };
        let path = base.with_file_name(format!(
            "{}.m{rank}.{}.{}",
            base.file_name().and_then(|s| s.to_str()).unwrap_or("ace"),
            std::process::id(),
            PATH_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&path);
        Ok(Listener::Unix(UnixListener::bind(&path)?, path))
    }

    /// The address string peers dial: `tcp:host:port` or `unix:path`.
    fn advertised(&self) -> io::Result<String> {
        Ok(match self {
            Listener::Tcp(l) => format!("tcp:{}", l.local_addr()?),
            Listener::Unix(_, p) => format!("unix:{}", p.display()),
        })
    }

    /// Accept one connection before `deadline` (polling non-blocking so a
    /// wedged bootstrap cannot hang forever). The accepted stream is
    /// returned in blocking mode.
    fn accept_deadline(&self, deadline: Instant) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        loop {
            let got = match self {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            };
            match got {
                Ok(s) => {
                    s.set_nonblocking(false)?;
                    return Ok(s);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "handshake accept timed out",
                        ));
                    }
                    std::thread::sleep(HANDSHAKE_POLL);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Close the listener, removing a Unix socket file.
    fn cleanup(self) {
        if let Listener::Unix(_, p) = self {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Dial an advertised `tcp:`/`unix:` address, retrying until `deadline`
/// (the peer's listener may not be up yet in a multi-process launch).
fn connect(addr: &str, deadline: Instant) -> io::Result<Stream> {
    loop {
        let got = if let Some(a) = addr.strip_prefix("tcp:") {
            TcpStream::connect(a).map(Stream::Tcp)
        } else if let Some(p) = addr.strip_prefix("unix:") {
            UnixStream::connect(p).map(Stream::Unix)
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unparseable peer address {addr:?}"),
            ));
        };
        match got {
            Ok(s) => return Ok(s),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::NotFound
                        | io::ErrorKind::AddrNotAvailable
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("connect to {addr} timed out: {e}"),
                    ));
                }
                std::thread::sleep(HANDSHAKE_POLL);
            }
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Ok(body)
}

fn bad_frame(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed handshake frame: {e}"))
}

fn remaining(deadline: Instant) -> io::Result<Duration> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(io::Error::new(io::ErrorKind::TimedOut, "handshake deadline expired"));
    }
    Ok(left)
}

// ---------------------------------------------------------------------------
// Rendezvous
// ---------------------------------------------------------------------------

/// Run the rank-0 side of the rendezvous: collect `nprocs - 1` joins,
/// assign ranks, reply with the full address table. Returns that table.
fn host_rendezvous(
    cfg: &SocketCfg,
    nprocs: usize,
    my_addr: String,
    deadline: Instant,
) -> io::Result<Vec<String>> {
    let rdv = Listener::bind_rendezvous(&cfg.rendezvous)?;
    let mut addrs = vec![String::new(); nprocs];
    addrs[0] = my_addr;
    let mut joined: Vec<(usize, Stream)> = Vec::with_capacity(nprocs - 1);
    for _ in 1..nprocs {
        let mut s = rdv.accept_deadline(deadline)?;
        s.set_read_timeout(Some(remaining(deadline)?))?;
        let body = read_frame(&mut s)?;
        let mut r = WireReader::new(&body);
        if r.u8().map_err(bad_frame)? != HS_JOIN {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "expected Join"));
        }
        let want = r.u32().map_err(bad_frame)? as usize;
        let addr = r.string().map_err(bad_frame)?;
        // Honor the requested rank when it's free; otherwise hand out the
        // lowest free one (the joiner errors out if that's not the rank
        // it was launched as — a double-launch, not something to paper
        // over).
        let assigned = if want < nprocs && addrs[want].is_empty() {
            want
        } else {
            match addrs.iter().position(|a| a.is_empty()) {
                Some(i) => i,
                None => unreachable!("accept loop admits exactly nprocs - 1 joiners"),
            }
        };
        addrs[assigned] = addr;
        joined.push((assigned, s));
    }
    for (rank, mut s) in joined {
        let mut body = vec![HS_WELCOME];
        body.extend_from_slice(&(rank as u32).to_le_bytes());
        body.extend_from_slice(&(nprocs as u32).to_le_bytes());
        for a in &addrs {
            put_string(&mut body, a);
        }
        write_frame(&mut s, &body)?;
        s.flush()?;
    }
    rdv.cleanup();
    Ok(addrs)
}

/// Run the joiner side: announce our mesh address and desired rank, wait
/// for the address table.
fn join_rendezvous(
    cfg: &SocketCfg,
    rank: usize,
    nprocs: usize,
    my_addr: &str,
    deadline: Instant,
) -> io::Result<Vec<String>> {
    let rdv_addr = match &cfg.rendezvous {
        SockAddr::Tcp(a) => format!("tcp:{a}"),
        SockAddr::Unix(p) => format!("unix:{}", p.display()),
        SockAddr::Auto => unreachable!("Auto is resolved before binding"),
    };
    let mut s = connect(&rdv_addr, deadline)?;
    let mut body = vec![HS_JOIN];
    body.extend_from_slice(&(rank as u32).to_le_bytes());
    put_string(&mut body, my_addr);
    write_frame(&mut s, &body)?;
    s.flush()?;
    s.set_read_timeout(Some(remaining(deadline)?))?;
    let body = read_frame(&mut s)?;
    let mut r = WireReader::new(&body);
    if r.u8().map_err(bad_frame)? != HS_WELCOME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "expected Welcome"));
    }
    let assigned = r.u32().map_err(bad_frame)? as usize;
    let n = r.u32().map_err(bad_frame)? as usize;
    if assigned != rank {
        return Err(io::Error::new(
            io::ErrorKind::AddrInUse,
            format!("rank {rank} already joined this machine (rendezvous offered {assigned})"),
        ));
    }
    if n != nprocs {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("machine size mismatch: launched with nprocs={nprocs}, rendezvous says {n}"),
        ));
    }
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        addrs.push(r.string().map_err(bad_frame)?);
    }
    Ok(addrs)
}

// ---------------------------------------------------------------------------
// The endpoint
// ---------------------------------------------------------------------------

/// What the node enqueues to a per-peer writer thread.
enum Out<M> {
    Wire(Wire<M>),
    Failed { rank: u32, msg: String },
    Goodbye,
}

/// One rank's endpoint on a socket machine. Construction
/// ([`SocketTransport::establish`]) performs the full bootstrap described
/// in the module docs; afterwards the endpoint is driven entirely by the
/// owning node thread plus its per-peer I/O threads.
pub struct SocketTransport<M> {
    rank: usize,
    inbox_rx: Receiver<Wire<M>>,
    /// Kept so the inbox channel can never disconnect and so self-sends
    /// loop back without touching a socket.
    loop_tx: Sender<Wire<M>>,
    /// Per-peer writer feeds, `None` at our own rank.
    writers: Vec<Option<Sender<Out<M>>>>,
    writer_joins: RefCell<Vec<JoinHandle<()>>>,
    board: Arc<FailBoard>,
    shut: Cell<bool>,
}

impl<M: WireCodec + Send + 'static> SocketTransport<M> {
    /// Bootstrap this rank's endpoint: bind, rendezvous, build the mesh,
    /// start the per-peer I/O threads. Blocks until the whole machine has
    /// met (all `nprocs` ranks) or the handshake deadline passes.
    pub(crate) fn establish(
        rank: usize,
        nprocs: usize,
        cfg: &SocketCfg,
        board: Arc<FailBoard>,
    ) -> io::Result<SocketTransport<M>> {
        assert!(rank < nprocs, "rank {rank} out of range for {nprocs} ranks");
        let deadline = Instant::now() + cfg.handshake_timeout;
        let mesh = Listener::bind_mesh(&cfg.rendezvous, rank)?;
        let my_addr = mesh.advertised()?;
        let addrs = if rank == 0 {
            host_rendezvous(cfg, nprocs, my_addr, deadline)?
        } else {
            join_rendezvous(cfg, rank, nprocs, &my_addr, deadline)?
        };

        let mut streams: Vec<Option<Stream>> = (0..nprocs).map(|_| None).collect();
        // Dial every lower rank, announcing who we are...
        for (peer, addr) in addrs.iter().enumerate().take(rank) {
            let mut s = connect(addr, deadline)?;
            let mut body = vec![HS_HELLO];
            body.extend_from_slice(&(rank as u32).to_le_bytes());
            write_frame(&mut s, &body)?;
            s.flush()?;
            streams[peer] = Some(s);
        }
        // ...and accept every higher one, learning who they are.
        for _ in rank + 1..nprocs {
            let mut s = mesh.accept_deadline(deadline)?;
            s.set_read_timeout(Some(remaining(deadline)?))?;
            let body = read_frame(&mut s)?;
            let mut r = WireReader::new(&body);
            if r.u8().map_err(bad_frame)? != HS_HELLO {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "expected Hello"));
            }
            let peer = r.u32().map_err(bad_frame)? as usize;
            if peer <= rank || peer >= nprocs || streams[peer].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected Hello from rank {peer}"),
                ));
            }
            streams[peer] = Some(s);
        }
        mesh.cleanup();

        let (in_tx, inbox_rx) = unbounded();
        let mut writers: Vec<Option<Sender<Out<M>>>> = (0..nprocs).map(|_| None).collect();
        let mut writer_joins = Vec::with_capacity(nprocs.saturating_sub(1));
        for (peer, slot) in streams.iter_mut().enumerate() {
            let Some(s) = slot.take() else { continue };
            s.set_read_timeout(None)?;
            let read_half = s.try_clone()?;
            let in_tx = in_tx.clone();
            let rd_board = Arc::clone(&board);
            std::thread::Builder::new()
                .name(format!("ace-rd-{rank}-{peer}"))
                .spawn(move || reader_loop(read_half, peer, in_tx, rd_board))
                .expect("spawn socket reader");
            let (wtx, wrx) = unbounded();
            let h = std::thread::Builder::new()
                .name(format!("ace-wr-{rank}-{peer}"))
                .spawn(move || writer_loop(s, wrx, rank))
                .expect("spawn socket writer");
            writers[peer] = Some(wtx);
            writer_joins.push(h);
        }
        Ok(SocketTransport {
            rank,
            inbox_rx,
            loop_tx: in_tx,
            writers,
            writer_joins: RefCell::new(writer_joins),
            board,
            shut: Cell::new(false),
        })
    }
}

impl<M> SocketTransport<M> {
    /// Close the wire once: optionally broadcast a failure, always say
    /// goodbye, and join the writers so every frame is flushed before the
    /// owning thread (or process) goes away.
    fn farewell(&self, failed: Option<(usize, &str)>) {
        if self.shut.replace(true) {
            return;
        }
        for tx in self.writers.iter().flatten() {
            if let Some((rank, msg)) = failed {
                let _ = tx.send(Out::Failed { rank: rank as u32, msg: msg.to_string() });
            }
            let _ = tx.send(Out::Goodbye);
        }
        for h in self.writer_joins.borrow_mut().drain(..) {
            let _ = h.join();
        }
    }
}

impl<M> Transport<M> for SocketTransport<M> {
    fn send_wire(&self, dst: usize, wire: Wire<M>) {
        if dst == self.rank {
            let _ = self.loop_tx.send(wire);
        } else if let Some(tx) = &self.writers[dst] {
            // A send after the writer exited (peer gone) is a dead wire;
            // dropping the envelope matches the in-process semantics.
            let _ = tx.send(Out::Wire(wire));
        }
    }

    fn try_recv_wire(&self) -> Result<Wire<M>, TryWireError> {
        self.inbox_rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => TryWireError::Empty,
            // Unreachable while `loop_tx` is held, but map it anyway.
            TryRecvError::Disconnected => TryWireError::Dead,
        })
    }

    fn recv_wire_timeout(&self, d: Duration) -> Result<Wire<M>, WaitWireError> {
        self.inbox_rx.recv_timeout(d).map_err(|e| match e {
            RecvTimeoutError::Timeout => WaitWireError::Timeout,
            RecvTimeoutError::Disconnected => WaitWireError::Dead,
        })
    }

    fn header_bytes(&self) -> usize {
        SOCKET_HEADER_BYTES
    }

    fn failed_rank(&self) -> isize {
        self.board.failed_rank()
    }

    fn failure_detail(&self) -> String {
        self.board.detail()
    }

    fn signal_failure(&self, rank: usize, msg: &str) {
        self.board.record(rank, msg.to_string());
        self.farewell(Some((rank, msg)));
    }

    fn shutdown(&self) {
        self.farewell(None);
    }
}

/// Writer thread: one per peer, owning the connection's send half.
/// Batches syscalls by draining the feed channel before flushing, so a
/// burst of wire envelopes becomes one stream write — per-pair FIFO is
/// preserved because this single thread drains a FIFO channel into an
/// ordered byte stream.
fn writer_loop<M: WireCodec>(s: Stream, rx: Receiver<Out<M>>, my_rank: usize) {
    let mut w = io::BufWriter::new(s);
    let mut buf = Vec::new();
    // Once a write fails the peer is gone; keep draining the channel so
    // the node never blocks, but stop touching the socket.
    let mut dead = false;
    'feed: loop {
        let first = match rx.recv() {
            Ok(m) => m,
            // Endpoint dropped without shutdown (the hard-kill path):
            // flush what we have and close abruptly — peers see EOF
            // without a goodbye and record us as failed.
            Err(_) => break 'feed,
        };
        let mut next = Some(first);
        while let Some(m) = next {
            match m {
                Out::Wire(wire) => {
                    if !dead {
                        buf.clear();
                        buf.push(FR_WIRE);
                        wire.encode(&mut buf);
                        dead = write_frame(&mut w, &buf).is_err();
                    }
                }
                Out::Failed { rank, msg } => {
                    if !dead {
                        buf.clear();
                        buf.push(FR_FAILED);
                        buf.extend_from_slice(&rank.to_le_bytes());
                        put_string(&mut buf, &msg);
                        dead = write_frame(&mut w, &buf).is_err() || w.flush().is_err();
                    }
                }
                Out::Goodbye => {
                    if !dead {
                        buf.clear();
                        buf.push(FR_GOODBYE);
                        buf.extend_from_slice(&(my_rank as u32).to_le_bytes());
                        let _ = write_frame(&mut w, &buf);
                        let _ = w.flush();
                    }
                    w.get_ref().shutdown_write();
                    return;
                }
            }
            next = rx.try_recv().ok();
        }
        if !dead && w.flush().is_err() {
            dead = true;
        }
    }
    let _ = w.flush();
    // The detached reader thread holds its own clone of this socket, so
    // merely dropping the write half would leave the connection open;
    // half-close explicitly so the peer's reader sees EOF (no goodbye)
    // and records this rank as failed.
    w.get_ref().shutdown_write();
}

/// Reader thread: one per peer, owning the connection's receive half.
/// Decoded wire envelopes feed the endpoint's inbox channel; failure
/// frames and abrupt closes land on the failure board.
fn reader_loop<M: WireCodec>(
    mut s: Stream,
    peer: usize,
    inbox: Sender<Wire<M>>,
    board: Arc<FailBoard>,
) {
    loop {
        let body = match read_frame(&mut s) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // EOF without a Goodbye frame: the peer's process died
                // abruptly (a panic broadcasts Failed + Goodbye first, so
                // first-writer-wins keeps the real cause).
                board.record(peer, "connection closed without goodbye".to_string());
                return;
            }
            Err(e) => {
                board.record(peer, format!("connection error: {e}"));
                return;
            }
        };
        let mut r = WireReader::new(&body);
        match r.u8() {
            Ok(FR_WIRE) => match Wire::<M>::decode(&mut r) {
                Ok(wire) => {
                    if inbox.send(wire).is_err() {
                        return; // our own endpoint is gone
                    }
                }
                Err(e) => {
                    board.record(peer, format!("undecodable wire frame: {e}"));
                    return;
                }
            },
            Ok(FR_FAILED) => {
                let rank = r.u32().unwrap_or(peer as u32) as usize;
                let msg = r.string().unwrap_or_default();
                board.record(rank, msg);
            }
            Ok(FR_GOODBYE) => return,
            Ok(k) => {
                board.record(peer, format!("unknown frame kind {k}"));
                return;
            }
            Err(_) => {
                board.record(peer, "empty frame".to_string());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;

    fn endpoints(n: usize) -> Vec<SocketTransport<u64>> {
        let cfg = SocketCfg::loopback().resolved();
        let board: Vec<Arc<FailBoard>> = (0..n).map(|_| Arc::new(FailBoard::new())).collect();
        std::thread::scope(|scope| {
            let mut hs = Vec::new();
            for rank in 0..n {
                let cfg = cfg.clone();
                let board = Arc::clone(&board[rank]);
                hs.push(scope.spawn(move || {
                    SocketTransport::establish(rank, n, &cfg, board).expect("establish")
                }));
            }
            hs.into_iter().map(|h| h.join().expect("handshake thread")).collect()
        })
    }

    fn single(src: usize, msg: u64) -> Wire<u64> {
        Wire::Single(Envelope { src, send_time: 0, bytes: 31, vc: None, sw: 0, msg })
    }

    #[test]
    fn mesh_establishes_and_delivers_fifo() {
        let eps = endpoints(3);
        for i in 0..10 {
            eps[0].send_wire(2, single(0, i));
        }
        eps[1].send_wire(1, single(1, 99)); // self-send loops back
        let mut got = Vec::new();
        while got.len() < 10 {
            match eps[2].recv_wire_timeout(Duration::from_secs(5)) {
                Ok(Wire::Single(e)) => got.push(e.msg),
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        match eps[1].recv_wire_timeout(Duration::from_secs(1)) {
            Ok(Wire::Single(e)) => assert_eq!(e.msg, 99),
            other => panic!("unexpected: {other:?}"),
        }
        for ep in &eps {
            ep.shutdown();
        }
    }

    #[test]
    fn failure_broadcast_reaches_peers() {
        let eps = endpoints(2);
        eps[1].signal_failure(1, "boom at rank 1");
        let t0 = Instant::now();
        while eps[0].failed_rank() < 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "failure frame never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(eps[0].failed_rank(), 1);
        assert_eq!(eps[0].failure_detail(), "boom at rank 1");
        eps[0].shutdown();
    }

    #[test]
    fn abrupt_drop_is_detected_as_peer_death() {
        let mut eps = endpoints(2);
        let ep0 = eps.remove(0);
        drop(eps); // rank 1 vanishes without shutdown(): no goodbye
        let t0 = Instant::now();
        while ep0.failed_rank() < 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "abrupt close never detected");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ep0.failed_rank(), 1);
        ep0.shutdown();
    }

    #[test]
    fn machine_size_mismatch_is_an_error_not_a_hang() {
        // A joiner launched with the wrong --procs must fail fast with a
        // mismatch error instead of wedging the bootstrap.
        let cfg = SocketCfg::loopback().handshake_timeout(Duration::from_secs(3)).resolved();
        std::thread::scope(|scope| {
            let c0 = cfg.clone();
            let host = scope.spawn(move || {
                SocketTransport::<u64>::establish(0, 2, &c0, Arc::new(FailBoard::new()))
            });
            let c1 = cfg.clone();
            let joiner = scope.spawn(move || {
                SocketTransport::<u64>::establish(1, 3, &c1, Arc::new(FailBoard::new()))
            });
            let err = joiner.join().unwrap().err().expect("size mismatch must be rejected");
            assert!(err.to_string().contains("machine size mismatch"), "{err}");
            // The host is left waiting for a mesh connection that will
            // never come; its own deadline converts that into an error.
            assert!(host.join().unwrap().is_err(), "host must time out, not hang");
        });
    }
}
