//! Lowering: typed AST → IR with annotation insertion (Figure 5).
//!
//! Every shared load becomes `MAP; START_READ; load; END_READ` and every
//! shared store `MAP; START_WRITE; store; END_WRITE`, around the raw word
//! access — exactly the translation the paper's Figure 5 shows for
//! `*(x->world) = 4`. The `Map`/`Start`/`End` of one access share an
//! [`AccessId`] so the optimization passes can treat them as a unit.

use std::collections::HashMap;

use ace_protocols::ProtoSpec;

use crate::ast::{self, BinOp, Expr, ExprKind, LValue, Stmt, Ty};
use crate::ir::*;
use crate::sema::{builtin_sig, Binding, TypedUnit};

struct FnLower<'a> {
    tu: &'a TypedUnit,
    func_ids: &'a HashMap<String, FuncId>,
    naccess: &'a mut u32,
    nsites: &'a mut u32,
    slots: Vec<Slot>,
    scopes: Vec<HashMap<String, (u32, Binding)>>,
    blocks: Vec<(Vec<Inst>, Option<Term>)>,
    cur: BlockId,
    nregs: u32,
    // (continue target, break target)
    loops: Vec<(BlockId, BlockId)>,
}

/// Lower a checked unit to a program (annotations inserted, all modes
/// `Dispatch`).
pub fn lower(tu: &TypedUnit) -> Program {
    let mut func_ids = HashMap::new();
    for (i, f) in tu.unit.funcs.iter().enumerate() {
        func_ids.insert(f.name.clone(), i);
    }
    let mut naccess = 0;
    let mut nsites = 0;
    let mut funcs = Vec::new();
    for f in &tu.unit.funcs {
        funcs.push(lower_fn(tu, &func_ids, f, &mut naccess, &mut nsites));
    }
    let main = func_ids["main"];
    Program { funcs, main, naccesses: naccess }
}

fn val_ty(t: &Ty) -> ValTy {
    match t {
        Ty::Int => ValTy::I,
        Ty::Double => ValTy::F,
        Ty::Space => ValTy::S,
        Ty::SharedPtr(_) => ValTy::H,
        other => panic!("no value type for {other:?}"),
    }
}

fn elem_words(tu: &TypedUnit, t: &Ty) -> u32 {
    match t {
        Ty::Struct(n) => tu.structs.words(n).expect("checked struct") as u32,
        _ => 1,
    }
}

fn lower_fn(
    tu: &TypedUnit,
    func_ids: &HashMap<String, FuncId>,
    f: &ast::Func,
    naccess: &mut u32,
    nsites: &mut u32,
) -> IFunc {
    let mut lw = FnLower {
        tu,
        func_ids,
        naccess,
        nsites,
        slots: Vec::new(),
        scopes: vec![HashMap::new()],
        blocks: vec![(Vec::new(), None)],
        cur: 0,
        nregs: 0,
        loops: Vec::new(),
    };
    for (ty, name) in &f.params {
        let slot = lw.slots.len() as u32;
        lw.slots.push(Slot::Scalar(val_ty(ty)));
        lw.scopes[0].insert(name.clone(), (slot, Binding::Scalar(ty.clone())));
    }
    lw.block(&f.body);
    // Fall-through return for void functions.
    lw.seal(Term::Ret(None));
    let blocks = lw
        .blocks
        .into_iter()
        .map(|(insts, term)| Block { insts, term: term.unwrap_or(Term::Ret(None)) })
        .collect();
    IFunc {
        name: f.name.clone(),
        nparams: f.params.len(),
        slots: lw.slots,
        nregs: lw.nregs,
        blocks,
    }
}

impl FnLower<'_> {
    fn reg(&mut self) -> VReg {
        self.nregs += 1;
        self.nregs - 1
    }

    fn emit(&mut self, i: Inst) {
        if self.blocks[self.cur].1.is_none() {
            self.blocks[self.cur].0.push(i);
        }
        // Instructions after a terminator (post-return code) are dropped.
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        self.blocks.len() - 1
    }

    fn seal(&mut self, t: Term) {
        if self.blocks[self.cur].1.is_none() {
            self.blocks[self.cur].1 = Some(t);
        }
    }

    fn switch(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn fresh_aid(&mut self) -> AccessId {
        *self.naccess += 1;
        *self.naccess - 1
    }

    fn lookup(&self, name: &str) -> (u32, Binding) {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .cloned()
            .expect("sema resolved all names")
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    fn block(&mut self, stmts: &[Stmt]) {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { ty, name, array_len, init, .. } => {
                let slot = self.slots.len() as u32;
                match array_len {
                    Some(len) => {
                        self.slots.push(Slot::Array(val_ty(ty), *len));
                        self.scopes
                            .last_mut()
                            .unwrap()
                            .insert(name.clone(), (slot, Binding::Array(ty.clone(), *len)));
                    }
                    None => {
                        self.slots.push(Slot::Scalar(val_ty(ty)));
                        self.scopes
                            .last_mut()
                            .unwrap()
                            .insert(name.clone(), (slot, Binding::Scalar(ty.clone())));
                        if let Some(init) = init {
                            let (r, t) = self.expr(init);
                            let r = self.coerce(r, &t, ty);
                            self.emit(Inst::StoreLocal { slot, a: r });
                        }
                    }
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let (rv, rt) = self.expr(rhs);
                match lhs {
                    LValue::Var(n) => {
                        let (slot, b) = self.lookup(n);
                        let Binding::Scalar(want) = b else { unreachable!("checked") };
                        let rv = self.coerce(rv, &rt, &want);
                        self.emit(Inst::StoreLocal { slot, a: rv });
                    }
                    LValue::Index(base, idx) => {
                        // Local array or shared store.
                        if let ExprKind::Var(n) = &base.kind {
                            let (slot, b) = self.lookup(n);
                            if let Binding::Array(want, _) = b {
                                let (iv, _) = self.expr(idx);
                                let rv = self.coerce(rv, &rt, &want);
                                self.emit(Inst::StoreArr { slot, idx: iv, a: rv });
                                return;
                            }
                        }
                        let (hv, ht) = self.expr(base);
                        let Ty::SharedPtr(elem) = ht else { unreachable!("checked") };
                        let (iv, _) = self.expr(idx);
                        let rv = self.coerce(rv, &rt, &elem);
                        self.shared_store(hv, iv, rv);
                    }
                    LValue::Member(base, field) => {
                        let (hv, ht) = self.expr(base);
                        let Ty::SharedPtr(inner) = ht else { unreachable!("checked") };
                        let Ty::Struct(sname) = *inner else { unreachable!("checked") };
                        let (off, fty) = self.tu.structs.field(&sname, field).expect("checked");
                        let offv = self.reg();
                        self.emit(Inst::ConstI(offv, off as i64));
                        let rv = self.coerce(rv, &rt, &fty);
                        self.shared_store(hv, offv, rv);
                    }
                    LValue::Deref(base) => {
                        let (hv, ht) = self.expr(base);
                        let Ty::SharedPtr(elem) = ht else { unreachable!("checked") };
                        let zero = self.reg();
                        self.emit(Inst::ConstI(zero, 0));
                        let rv = self.coerce(rv, &rt, &elem);
                        self.shared_store(hv, zero, rv);
                    }
                }
            }
            Stmt::Expr(e) => {
                self.expr(e);
            }
            Stmt::If { cond, then_blk, else_blk } => {
                let (c, _) = self.expr(cond);
                let tb = self.new_block();
                let eb = self.new_block();
                let join = self.new_block();
                self.seal(Term::Br { cond: c, t: tb, f: eb });
                self.switch(tb);
                self.block(then_blk);
                self.seal(Term::Jump(join));
                self.switch(eb);
                self.block(else_blk);
                self.seal(Term::Jump(join));
                self.switch(join);
            }
            Stmt::While { cond, body } => {
                let header = self.new_block();
                let bodyb = self.new_block();
                let exit = self.new_block();
                self.seal(Term::Jump(header));
                self.switch(header);
                let (c, _) = self.expr(cond);
                self.seal(Term::Br { cond: c, t: bodyb, f: exit });
                self.loops.push((header, exit));
                self.switch(bodyb);
                self.block(body);
                self.seal(Term::Jump(header));
                self.loops.pop();
                self.switch(exit);
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                self.stmt(init);
                let header = self.new_block();
                let bodyb = self.new_block();
                let stepb = self.new_block();
                let exit = self.new_block();
                self.seal(Term::Jump(header));
                self.switch(header);
                let (c, _) = self.expr(cond);
                self.seal(Term::Br { cond: c, t: bodyb, f: exit });
                self.loops.push((stepb, exit));
                self.switch(bodyb);
                self.block(body);
                self.seal(Term::Jump(stepb));
                self.switch(stepb);
                self.stmt(step);
                self.seal(Term::Jump(header));
                self.loops.pop();
                self.scopes.pop();
                self.switch(exit);
            }
            Stmt::Return(e, _) => {
                let r = e.as_ref().map(|e| {
                    let (r, _t) = self.expr(e);
                    r
                });
                self.seal(Term::Ret(r));
                let dead = self.new_block();
                self.switch(dead);
            }
            Stmt::Break(_) => {
                let (_, brk) = *self.loops.last().expect("checked");
                self.seal(Term::Jump(brk));
                let dead = self.new_block();
                self.switch(dead);
            }
            Stmt::Continue(_) => {
                let (cont, _) = *self.loops.last().expect("checked");
                self.seal(Term::Jump(cont));
                let dead = self.new_block();
                self.switch(dead);
            }
        }
    }

    // ------------------------------------------------------------------
    // shared access helpers (the Figure 5 translation)
    // ------------------------------------------------------------------

    fn shared_load(&mut self, handle: VReg, off: VReg, ty: ValTy) -> VReg {
        let aid = self.fresh_aid();
        let mapped = self.reg();
        let dst = self.reg();
        self.emit(Inst::Map { aid, mode: DispatchMode::Dispatch, dst: mapped, handle });
        self.emit(Inst::StartRead { aid, mode: DispatchMode::Dispatch, handle: mapped });
        self.emit(Inst::GLoad { dst, handle: mapped, off, ty });
        self.emit(Inst::EndRead { aid, mode: DispatchMode::Dispatch, handle: mapped });
        dst
    }

    fn shared_store(&mut self, handle: VReg, off: VReg, val: VReg) {
        let aid = self.fresh_aid();
        let mapped = self.reg();
        self.emit(Inst::Map { aid, mode: DispatchMode::Dispatch, dst: mapped, handle });
        self.emit(Inst::StartWrite { aid, mode: DispatchMode::Dispatch, handle: mapped });
        self.emit(Inst::GStore { handle: mapped, off, val });
        self.emit(Inst::EndWrite { aid, mode: DispatchMode::Dispatch, handle: mapped });
    }

    // ------------------------------------------------------------------
    // expressions
    // ------------------------------------------------------------------

    fn coerce(&mut self, r: VReg, from: &Ty, to: &Ty) -> VReg {
        if from == to {
            return r;
        }
        match (from, to) {
            (Ty::Int, Ty::Double) => {
                let d = self.reg();
                self.emit(Inst::IntToF { dst: d, a: r });
                d
            }
            // shared-pointer-of-void adoption and int/ptr casts are bit
            // re-interpretations.
            _ => r,
        }
    }

    fn expr(&mut self, e: &Expr) -> (VReg, Ty) {
        match &e.kind {
            ExprKind::Int(v) => {
                let r = self.reg();
                self.emit(Inst::ConstI(r, *v));
                (r, Ty::Int)
            }
            ExprKind::Float(v) => {
                let r = self.reg();
                self.emit(Inst::ConstF(r, *v));
                (r, Ty::Double)
            }
            ExprKind::Str(_) => unreachable!("checked: strings only in protocol positions"),
            ExprKind::Var(n) => {
                let (slot, b) = self.lookup(n);
                let Binding::Scalar(t) = b else { unreachable!("checked") };
                let r = self.reg();
                self.emit(Inst::LoadLocal { dst: r, slot });
                (r, t)
            }
            ExprKind::Bin(op @ (BinOp::And | BinOp::Or), a, b) => {
                // Short-circuit through a temporary slot.
                let slot = self.slots.len() as u32;
                self.slots.push(Slot::Scalar(ValTy::I));
                let (av, _) = self.expr(a);
                self.emit(Inst::StoreLocal { slot, a: av });
                let rhs_b = self.new_block();
                let join = self.new_block();
                if matches!(op, BinOp::And) {
                    self.seal(Term::Br { cond: av, t: rhs_b, f: join });
                } else {
                    self.seal(Term::Br { cond: av, t: join, f: rhs_b });
                }
                self.switch(rhs_b);
                let (bv, _) = self.expr(b);
                self.emit(Inst::StoreLocal { slot, a: bv });
                self.seal(Term::Jump(join));
                self.switch(join);
                let r = self.reg();
                self.emit(Inst::LoadLocal { dst: r, slot });
                (r, Ty::Int)
            }
            ExprKind::Bin(op, a, b) => {
                let (av, at) = self.expr(a);
                let (bv, bt) = self.expr(b);
                let ty = if at == Ty::Double || bt == Ty::Double { Ty::Double } else { at.clone() };
                let av = self.coerce(av, &at, &ty);
                let bv = self.coerce(bv, &bt, &ty);
                let ir_op = match op {
                    BinOp::Add => Bin::Add,
                    BinOp::Sub => Bin::Sub,
                    BinOp::Mul => Bin::Mul,
                    BinOp::Div => Bin::Div,
                    BinOp::Rem => Bin::Rem,
                    BinOp::Eq => Bin::Eq,
                    BinOp::Ne => Bin::Ne,
                    BinOp::Lt => Bin::Lt,
                    BinOp::Le => Bin::Le,
                    BinOp::Gt => Bin::Gt,
                    BinOp::Ge => Bin::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                let vt = match &ty {
                    Ty::Double => ValTy::F,
                    Ty::SharedPtr(_) => ValTy::H,
                    _ => ValTy::I,
                };
                let dst = self.reg();
                self.emit(Inst::BinOp { dst, op: ir_op, ty: vt, a: av, b: bv });
                let rt = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => ty,
                    _ => Ty::Int,
                };
                (dst, rt)
            }
            ExprKind::Neg(a) => {
                let (av, at) = self.expr(a);
                let dst = self.reg();
                self.emit(Inst::Neg { dst, ty: val_ty(&at), a: av });
                (dst, at)
            }
            ExprKind::Not(a) => {
                let (av, _) = self.expr(a);
                let dst = self.reg();
                self.emit(Inst::Not { dst, a: av });
                (dst, Ty::Int)
            }
            ExprKind::Index(base, idx) => {
                if let ExprKind::Var(n) = &base.kind {
                    let (slot, b) = self.lookup(n);
                    if let Binding::Array(elem, _) = b {
                        let (iv, _) = self.expr(idx);
                        let dst = self.reg();
                        self.emit(Inst::LoadArr { dst, slot, idx: iv });
                        return (dst, elem);
                    }
                }
                let (hv, ht) = self.expr(base);
                let Ty::SharedPtr(elem) = ht else { unreachable!("checked") };
                let (iv, _) = self.expr(idx);
                let dst = self.shared_load(hv, iv, val_ty(&elem));
                (dst, *elem)
            }
            ExprKind::Member(base, field) => {
                let (hv, ht) = self.expr(base);
                let Ty::SharedPtr(inner) = ht else { unreachable!("checked") };
                let Ty::Struct(sname) = *inner else { unreachable!("checked") };
                let (off, fty) = self.tu.structs.field(&sname, field).expect("checked");
                let offv = self.reg();
                self.emit(Inst::ConstI(offv, off as i64));
                let dst = self.shared_load(hv, offv, val_ty(&fty));
                (dst, fty)
            }
            ExprKind::Deref(base) => {
                let (hv, ht) = self.expr(base);
                let Ty::SharedPtr(elem) = ht else { unreachable!("checked") };
                let zero = self.reg();
                self.emit(Inst::ConstI(zero, 0));
                let dst = self.shared_load(hv, zero, val_ty(&elem));
                (dst, *elem)
            }
            ExprKind::Cast(to, inner) => {
                // `(shared T*) gmalloc(s, n)` carries the element size into
                // the allocation.
                if let (Ty::SharedPtr(elem), ExprKind::Call(name, args)) = (to, &inner.kind) {
                    if name == "gmalloc" {
                        let (sv, _) = self.expr(&args[0]);
                        let (nv, _) = self.expr(&args[1]);
                        let dst = self.reg();
                        self.emit(Inst::Intrinsic {
                            dst: Some(dst),
                            which: Intr::Gmalloc { elem_words: elem_words(self.tu, elem) },
                            args: vec![sv, nv],
                        });
                        return (dst, to.clone());
                    }
                }
                let (r, from) = self.expr(inner);
                match (&from, to) {
                    (Ty::Int, Ty::Double) => {
                        let d = self.reg();
                        self.emit(Inst::IntToF { dst: d, a: r });
                        (d, to.clone())
                    }
                    (Ty::Double, Ty::Int) => {
                        let d = self.reg();
                        self.emit(Inst::FToInt { dst: d, a: r });
                        (d, to.clone())
                    }
                    _ => (r, to.clone()), // bit reinterpretation
                }
            }
            ExprKind::Call(name, args) => self.call(name, args),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> (VReg, Ty) {
        let proto_arg = |args: &[Expr], i: usize| -> ProtoSpec {
            let ExprKind::Str(s) = &args[i].kind else { unreachable!("checked") };
            ProtoSpec::by_name(s).expect("checked protocol name")
        };
        let simple = |lw: &mut Self, which: Intr, vals: Vec<VReg>, ret: Ty| {
            let dst = (ret != Ty::Void).then(|| lw.reg());
            lw.emit(Inst::Intrinsic { dst, which, args: vals });
            (dst.unwrap_or(0), ret)
        };
        match name {
            "new_space" => {
                let site = *self.nsites;
                *self.nsites += 1;
                let spec = proto_arg(args, 0);
                return simple(self, Intr::NewSpace { spec, site }, vec![], Ty::Space);
            }
            "change_protocol" => {
                let spec = proto_arg(args, 1);
                let (sv, _) = self.expr(&args[0]);
                return simple(self, Intr::ChangeProtocol { spec }, vec![sv], Ty::Void);
            }
            "gmalloc" => {
                // Uncast gmalloc allocates raw words.
                let (sv, _) = self.expr(&args[0]);
                let (nv, _) = self.expr(&args[1]);
                return simple(
                    self,
                    Intr::Gmalloc { elem_words: 1 },
                    vec![sv, nv],
                    Ty::SharedPtr(Box::new(Ty::Void)),
                );
            }
            "barrier" => {
                let (sv, _) = self.expr(&args[0]);
                return simple(self, Intr::Barrier, vec![sv], Ty::Void);
            }
            "lock" | "unlock" => {
                let (hv, _) = self.expr(&args[0]);
                let aid = self.fresh_aid();
                if name == "lock" {
                    self.emit(Inst::Lock { aid, mode: DispatchMode::Dispatch, handle: hv });
                } else {
                    self.emit(Inst::Unlock { aid, mode: DispatchMode::Dispatch, handle: hv });
                }
                return (0, Ty::Void);
            }
            "rank" => return simple(self, Intr::Rank, vec![], Ty::Int),
            "nprocs" => return simple(self, Intr::Nprocs, vec![], Ty::Int),
            "bcast_i" => {
                let (a, _) = self.expr(&args[0]);
                let (b, _) = self.expr(&args[1]);
                return simple(self, Intr::BcastI, vec![a, b], Ty::Int);
            }
            "bcast_p" => {
                let (a, _) = self.expr(&args[0]);
                let (b, t) = self.expr(&args[1]);
                return simple(self, Intr::BcastP, vec![a, b], t);
            }
            "reduce_add" => {
                let v = self.farg(&args[0]);
                return simple(self, Intr::ReduceAddF, vec![v], Ty::Double);
            }
            "reduce_max" => {
                let v = self.farg(&args[0]);
                return simple(self, Intr::ReduceMaxF, vec![v], Ty::Double);
            }
            "reduce_add_i" => {
                let (v, _) = self.expr(&args[0]);
                return simple(self, Intr::ReduceAddI, vec![v], Ty::Int);
            }
            "reduce_max_i" => {
                let (v, _) = self.expr(&args[0]);
                return simple(self, Intr::ReduceMaxI, vec![v], Ty::Int);
            }
            "reduce_min_i" => {
                let (v, _) = self.expr(&args[0]);
                return simple(self, Intr::ReduceMinI, vec![v], Ty::Int);
            }
            "sqrt" => {
                let v = self.farg(&args[0]);
                return simple(self, Intr::Sqrt, vec![v], Ty::Double);
            }
            "fabs" => {
                let v = self.farg(&args[0]);
                return simple(self, Intr::Fabs, vec![v], Ty::Double);
            }
            "charge_flops" => {
                let (v, _) = self.expr(&args[0]);
                return simple(self, Intr::ChargeFlops, vec![v], Ty::Void);
            }
            "print_i" => {
                let (v, _) = self.expr(&args[0]);
                return simple(self, Intr::PrintI, vec![v], Ty::Void);
            }
            "print_f" => {
                let v = self.farg(&args[0]);
                return simple(self, Intr::PrintF, vec![v], Ty::Void);
            }
            _ => {}
        }
        // user function
        debug_assert!(builtin_sig(name).is_none());
        let fid = self.func_ids[name];
        let sig = &self.tu.sigs[name];
        let mut vals = Vec::with_capacity(args.len());
        for (want, a) in sig.params.clone().iter().zip(args) {
            let (v, t) = self.expr(a);
            vals.push(self.coerce(v, &t, want));
        }
        let ret = sig.ret.clone();
        let dst = (ret != Ty::Void).then(|| self.reg());
        self.emit(Inst::Call { dst, func: fid, args: vals });
        (dst.unwrap_or(0), ret)
    }

    /// Evaluate an argument and coerce to double.
    fn farg(&mut self, a: &Expr) -> VReg {
        let (v, t) = self.expr(a);
        self.coerce(v, &t, &Ty::Double)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse;
    use crate::sema::check;

    fn lower_src(src: &str) -> Program {
        lower(&check(&parse(&lex(src).unwrap()).unwrap()).unwrap())
    }

    /// Count annotation instructions in a program.
    fn count_annotations(p: &Program) -> (usize, usize, usize) {
        // (maps, starts, ends)
        let mut maps = 0;
        let mut starts = 0;
        let mut ends = 0;
        for f in &p.funcs {
            for b in &f.blocks {
                for i in &b.insts {
                    match i {
                        Inst::Map { .. } => maps += 1,
                        Inst::StartRead { .. } | Inst::StartWrite { .. } => starts += 1,
                        Inst::EndRead { .. } | Inst::EndWrite { .. } => ends += 1,
                        _ => {}
                    }
                }
            }
        }
        (maps, starts, ends)
    }

    #[test]
    fn figure5_translation_shape() {
        // *(x->world) = 4 becomes two accesses: a read of x->world and a
        // write through it — 2 maps, 2 starts, 2 ends.
        let p = lower_src(
            "struct hello { int world; };
             void main() {
                space s = new_space(\"SC\");
                shared struct hello *x = (shared struct hello*) gmalloc(s, 1);
                shared int *w;
                w = (shared int*) x->world;
                *w = 4;
             }",
        );
        let (maps, starts, ends) = count_annotations(&p);
        assert_eq!((maps, starts, ends), (2, 2, 2));
    }

    #[test]
    fn loop_lowering_produces_header_and_exit() {
        let p = lower_src(
            "void main() { int i; int acc = 0; for (i = 0; i < 4; i = i + 1) { acc = acc + i; } }",
        );
        let f = &p.funcs[p.main];
        assert!(f.blocks.len() >= 4, "entry, header, body, step, exit");
    }

    #[test]
    fn every_access_has_matching_start_end() {
        let p = lower_src(
            "void main() {
                space s = new_space(\"SC\");
                shared double *v = (shared double*) gmalloc(s, 8);
                int i;
                double acc = 0.0;
                for (i = 0; i < 8; i = i + 1) { acc = acc + v[i]; }
                v[0] = acc;
             }",
        );
        let (maps, starts, ends) = count_annotations(&p);
        assert_eq!(maps, starts);
        assert_eq!(starts, ends);
        assert_eq!(maps, 2); // one read site in the loop, one write site
    }

    #[test]
    fn short_circuit_creates_blocks() {
        let p = lower_src(
            "void main() { int a = 1; int b = 2; if (a > 0 && b > 0) { a = 3; } else { } }",
        );
        assert!(p.funcs[p.main].blocks.len() >= 5);
    }

    #[test]
    fn struct_member_offsets() {
        let p = lower_src(
            "struct n { int a; double b; };
             void main() {
                space s = new_space(\"SC\");
                shared struct n *p = (shared struct n*) gmalloc(s, 1);
                double x = p->b;
             }",
        );
        // the member load should use a constant offset 1 (second field)
        let mut saw = false;
        for b in &p.funcs[p.main].blocks {
            for w in b.insts.windows(2) {
                if let (Inst::ConstI(r, 1), Inst::Map { .. }) = (&w[0], &w[1]) {
                    let _ = r;
                    saw = true;
                }
            }
        }
        assert!(saw, "expected offset constant before the member access map");
    }
}
