//! Tracing must be a pure observer. Running the same deterministic
//! workload with tracing on and off has to produce bit-identical
//! simulation results — same operation counters, same message counts,
//! same byte counts, same verification value. (Simulated completion time
//! is *not* compared: it depends on the cross-source message absorb
//! order, which races on wall-clock scheduling and varies between two
//! runs of the identical configuration, traced or not.) The only
//! permitted difference is the trace itself.
//!
//! The workload is EM3D (the paper's most communication-dense kernel)
//! under both its SC and static-update protocol assignments, with the
//! graph parameters driven by proptest.

use ace_apps::em3d;
use ace_apps::runner::{launch_ace_with, RunOutcome};
use ace_apps::Variant;
use ace_core::{CostModel, Spmd, TraceConfig};
use ace_machine::validate_chrome_trace;
use proptest::prelude::*;

fn run_em3d(p: &em3d::Params, v: Variant, nprocs: usize, trace: TraceConfig) -> RunOutcome {
    let b = Spmd::builder().nprocs(nprocs).cost(CostModel::cm5()).trace(trace);
    let p = p.clone();
    launch_ace_with(b, move |d| em3d::run(d, &p, v))
}

fn assert_observationally_identical(off: &RunOutcome, on: &RunOutcome) {
    assert_eq!(off.verification, on.verification, "verification value");
    assert_eq!(off.msgs, on.msgs, "total logical message count");
    assert_eq!(off.bytes, on.bytes, "total payload bytes");
    // Wire-envelope counts are excluded: how the coalescing buffers group
    // logical sends into envelopes rides on wall-clock arrival order
    // inside waits, so even two untraced runs can disagree on them.
    let strip = |c: &ace_core::OpCounters| ace_core::OpCounters { wire_msgs: 0, ..c.clone() };
    assert_eq!(strip(&off.counters), strip(&on.counters), "operation counters");
    assert!(off.trace.is_none() && on.trace.is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tracing_never_perturbs_em3d(
        seed in 0u64..1000,
        steps in 1usize..4,
        pct_remote in 5u32..50,
        custom in any::<bool>(),
    ) {
        let p = em3d::Params {
            e_nodes: 40,
            h_nodes: 40,
            degree: 3,
            pct_remote,
            steps,
            seed,
            hoist_maps: false,
        };
        let v = if custom { Variant::Custom } else { Variant::Sc };
        let off = run_em3d(&p, v, 4, TraceConfig::off());
        let on = run_em3d(&p, v, 4, TraceConfig::on());
        assert_observationally_identical(&off, &on);

        // And the trace the second run produced must itself be coherent:
        // message events match the machine's stats, per-node virtual time
        // is monotone, and the Chrome export validates.
        let trace = on.trace.as_ref().unwrap();
        prop_assert_eq!(trace.send_count(), on.wire_msgs, "one Send event per wire envelope");
        prop_assert_eq!(trace.logical_send_count(), on.msgs);
        for n in &trace.nodes {
            prop_assert!(n.events.windows(2).all(|w| w[0].t <= w[1].t),
                "node {} timeline must be monotone", n.rank);
        }
        let check = validate_chrome_trace(&trace.to_chrome_json()).unwrap();
        prop_assert_eq!(check.flow_starts as u64, on.wire_msgs, "one flow arrow per wire envelope");
        prop_assert_eq!(check.flow_starts, check.flows_matched);
    }
}

#[test]
fn tracing_never_perturbs_em3d_default_scale() {
    // One deterministic, larger configuration outside proptest so a
    // failure here reproduces without a seed file.
    let p = em3d::Params {
        e_nodes: 120,
        h_nodes: 120,
        degree: 4,
        pct_remote: 25,
        steps: 6,
        seed: 42,
        hoist_maps: false,
    };
    let off = run_em3d(&p, Variant::Custom, 4, TraceConfig::off());
    let on = run_em3d(&p, Variant::Custom, 4, TraceConfig::on());
    assert_observationally_identical(&off, &on);
}
