//! The compiler evaluation (Table 4): Ace-C kernels and their
//! hand-written runtime-system counterparts.
//!
//! Each kernel exists twice, computing *identical* results:
//!
//! * an Ace-C source (`programs/*.ace`), compiled at the four optimization
//!   levels of Table 4 and executed by the VM, and
//! * a hand-written version coded directly against the Ace runtime — "code
//!   that an experienced programmer would write" (§5.3): region ids
//!   exchanged once, maps hoisted out of the computation loops, and
//!   protocol calls placed with full knowledge of the registered protocol
//!   (null actions skipped, the rest called directly).
//!
//! The Table 4 shape this regenerates: each optimization level reduces
//! simulated time; the hand version remains fastest because the compiler
//! cannot hoist `ACE_MAP`s out of the computation loop the way a
//! programmer does (§5.3 calls this out explicitly: "the major component
//! of the slowdown was a result of the extra ACE_MAP calls within the
//! computation loop").

use std::rc::Rc;

use ace_core::{run_ace, AceRt, CostModel, Protocol, RegionId, SpaceId};
use ace_lang::{compile, run_program, OptLevel, SystemConfig};
use ace_protocols::{make, ProtoSpec};

use crate::fig7::VariantStats;

/// One Table 4 benchmark kernel.
pub struct Kernel {
    /// Row label.
    pub name: &'static str,
    /// Ace-C source.
    pub source: &'static str,
    /// Hand-written runtime-system version (returns the verification
    /// value; must equal the compiled program's).
    pub hand: fn(&AceRt) -> f64,
}

/// All five kernels, in the paper's column order.
pub fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "Barnes-Hut",
            source: include_str!("../programs/barnes.ace"),
            hand: hand_barnes,
        },
        Kernel { name: "BSC", source: include_str!("../programs/bsc.ace"), hand: hand_bsc },
        Kernel { name: "EM3D", source: include_str!("../programs/em3d.ace"), hand: hand_em3d },
        Kernel { name: "TSP", source: include_str!("../programs/tsp.ace"), hand: hand_tsp },
        Kernel { name: "WATER", source: include_str!("../programs/water.ace"), hand: hand_water },
    ]
}

/// Run a kernel's compiled form; returns (verification, full accounting).
pub fn run_compiled_stats(k: &Kernel, level: OptLevel, nprocs: usize) -> (f64, VariantStats) {
    let cfg = SystemConfig::builtin();
    let prog = compile(k.source, &cfg, level).unwrap_or_else(|e| {
        panic!("{} does not compile: {e}", k.name);
    });
    let r = run_ace(nprocs, CostModel::cm5(), |rt| {
        run_program(rt, &prog).map(|v| v.as_f()).unwrap_or(0.0)
    });
    (r.results[0], spmd_stats(&r))
}

/// Run a kernel's hand-written form; returns (verification, accounting).
pub fn run_hand_stats(k: &Kernel, nprocs: usize) -> (f64, VariantStats) {
    let r = run_ace(nprocs, CostModel::cm5(), |rt| (k.hand)(rt));
    (r.results[0], spmd_stats(&r))
}

fn spmd_stats<T>(r: &ace_core::SpmdResult<T>) -> VariantStats {
    VariantStats {
        sim_ns: r.sim_ns,
        wall_ns: r.wall.as_nanos() as u64,
        msgs: r.stats.total_msgs(),
        wire_msgs: r.stats.total_wire_msgs(),
        bytes: r.stats.total_bytes(),
        switches: r.stats.total_switches(),
    }
}

/// Run a kernel's compiled form; returns (verification, simulated ns).
pub fn run_compiled(k: &Kernel, level: OptLevel, nprocs: usize) -> (f64, u64) {
    let (v, s) = run_compiled_stats(k, level, nprocs);
    (v, s.sim_ns)
}

/// Run a kernel's hand-written form; returns (verification, simulated ns).
pub fn run_hand(k: &Kernel, nprocs: usize) -> (f64, u64) {
    let (v, s) = run_hand_stats(k, nprocs);
    (v, s.sim_ns)
}

/// One Table 4 row: per-level and hand times in simulated ms.
pub struct Table4Row {
    /// Benchmark name.
    pub app: &'static str,
    /// Simulated ms at O0 / LI / LI+MC / LI+MC+DC.
    pub level_ms: [f64; 4],
    /// Hand-written runtime version, simulated ms.
    pub hand_ms: f64,
    /// Verification values (compiled at Direct, hand) for cross-checking.
    pub verification: (f64, f64),
    /// Full accounting per optimization level.
    pub level_stats: [VariantStats; 4],
    /// Full accounting for the hand-written version.
    pub hand_stats: VariantStats,
}

/// Compute Table 4 at `nprocs` simulated processors.
pub fn table4(nprocs: usize) -> Vec<Table4Row> {
    kernels()
        .iter()
        .map(|k| {
            let mut level_ms = [0.0; 4];
            let mut level_stats = [VariantStats::default(); 4];
            let mut last_ver = 0.0;
            for (i, level) in OptLevel::ALL.iter().enumerate() {
                let (v, s) = run_compiled_stats(k, *level, nprocs);
                level_ms[i] = s.sim_ns as f64 / 1e6;
                level_stats[i] = s;
                last_ver = v;
            }
            let (hv, hand_stats) = run_hand_stats(k, nprocs);
            Table4Row {
                app: k.name,
                level_ms,
                hand_ms: hand_stats.sim_ns as f64 / 1e6,
                verification: (last_ver, hv),
                level_stats,
                hand_stats,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Hand-written runtime versions. Each mirrors its Ace-C kernel's
// arithmetic exactly; only the placement of runtime calls differs.
// ---------------------------------------------------------------------

fn dist(a: usize, b: usize) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo as u64 * 73 + hi as u64 * 31) % 90) + 5
}

/// Broadcast-based handle table exchange, mirroring the kernels' bcast_p
/// loops (one broadcast per global element).
fn exchange_handles(rt: &AceRt, total: usize, per: usize, mine: &[RegionId]) -> Vec<RegionId> {
    (0..total)
        .map(|g| {
            let owner = g / per;
            let h = if owner == rt.rank() { mine[g - owner * per] } else { RegionId::NULL };
            RegionId(rt.bcast(owner, &[h.0])[0])
        })
        .collect()
}

fn hand_em3d(rt: &AceRt) -> f64 {
    const NE: usize = 128;
    const NH: usize = 128;
    const DEG: usize = 5;
    const STEPS: usize = 8;
    let np = rt.nprocs();
    let me = rt.rank();
    let (per_e, per_h) = (NE / np, NH / np);

    let eval = rt.new_space(make(ProtoSpec::Sc));
    let hval = rt.new_space(make(ProtoSpec::Sc));
    let my_e: Vec<RegionId> = (0..per_e).map(|_| rt.gmalloc::<f64>(eval, 1)).collect();
    let my_h: Vec<RegionId> = (0..per_h).map(|_| rt.gmalloc::<f64>(hval, 1)).collect();
    let all_e = exchange_handles(rt, NE, per_e, &my_e);
    let all_h = exchange_handles(rt, NH, per_h, &my_h);

    let sc = make(ProtoSpec::Sc);
    for (i, &rid) in my_e.iter().enumerate() {
        rt.map(rid);
        rt.start_write_direct(rid, &*sc);
        rt.with_mut::<f64, _>(rid, |v| v[0] = ((me * per_e + i) % 7) as f64 + 1.0);
        rt.end_write_direct(rid, &*sc);
    }
    for (i, &rid) in my_h.iter().enumerate() {
        rt.map(rid);
        rt.start_write_direct(rid, &*sc);
        rt.with_mut::<f64, _>(rid, |v| v[0] = ((me * per_h + i) % 5) as f64 + 1.0);
        rt.end_write_direct(rid, &*sc);
    }
    rt.barrier(eval);
    rt.barrier(hval);

    rt.change_protocol(eval, make(ProtoSpec::StaticUpdate));
    rt.change_protocol(hval, make(ProtoSpec::StaticUpdate));
    let stat = make(ProtoSpec::StaticUpdate);

    // Hand optimization (§5.3): map exactly the regions this node reads,
    // once, BEFORE the time loop. (Mapping everything would subscribe the
    // node to updates it never consumes.)
    for i in 0..per_e {
        let base = me * per_e + i;
        for j in 0..DEG {
            rt.map(all_h[(base * 7 + j * 13 + 3) % NH]);
        }
    }
    for i in 0..per_h {
        let base = me * per_h + i;
        for j in 0..DEG {
            rt.map(all_e[(base * 11 + j * 17 + 5) % NE]);
        }
    }

    for _ in 0..STEPS {
        for i in 0..per_e {
            let base = me * per_e + i;
            let mut acc = 0.0;
            for j in 0..DEG {
                let nb = (base * 7 + j * 13 + 3) % NH;
                let w = 0.01 * ((base + j) % 5 + 1) as f64;
                // StaticUpdate reads are registered null: the expert skips
                // the start/end entirely.
                acc += w * rt.with_unchecked::<f64, _>(all_h[nb], |v| v[0]);
            }
            let ev = my_e[i];
            rt.with_mut_unchecked::<f64, _>(ev, |v| v[0] = v[0] * 0.5 + acc);
            rt.end_write_direct(ev, &*stat); // non-null: marks dirty
            rt.charge_flops((2 * DEG + 2) as u64);
        }
        rt.barrier(eval);
        for i in 0..per_h {
            let base = me * per_h + i;
            let mut acc = 0.0;
            for j in 0..DEG {
                let nb = (base * 11 + j * 17 + 5) % NE;
                let w = 0.01 * ((base + 2 * j) % 5 + 1) as f64;
                acc += w * rt.with_unchecked::<f64, _>(all_e[nb], |v| v[0]);
            }
            let hv = my_h[i];
            rt.with_mut_unchecked::<f64, _>(hv, |v| v[0] = v[0] * 0.5 + acc);
            rt.end_write_direct(hv, &*stat);
            rt.charge_flops((2 * DEG + 2) as u64);
        }
        rt.barrier(hval);
    }

    let mut local = 0.0;
    for &rid in my_e.iter().chain(my_h.iter()) {
        local += rt.with_unchecked::<f64, _>(rid, |v| v[0]);
    }
    rt.allreduce_f64(local, |a, b| a + b)
}

fn hand_tsp(rt: &AceRt) -> f64 {
    const N: usize = 9;
    let cspace = rt.new_space(make(ProtoSpec::Sc));
    let bspace = rt.new_space(make(ProtoSpec::Sc));
    let sc = make(ProtoSpec::Sc);

    let (counter, best) = if rt.rank() == 0 {
        let c = rt.gmalloc::<u64>(cspace, 1);
        let b = rt.gmalloc::<u64>(bspace, 1);
        rt.map(b);
        rt.start_write_direct(b, &*sc);
        rt.with_mut::<u64, _>(b, |x| x[0] = 1_000_000);
        rt.end_write_direct(b, &*sc);
        let ids = rt.bcast(0, &[c.0, b.0]);
        (RegionId(ids[0]), RegionId(ids[1]))
    } else {
        let ids = rt.bcast(0, &[]);
        (RegionId(ids[0]), RegionId(ids[1]))
    };
    rt.map(counter);
    rt.map(best);
    rt.barrier(bspace);

    rt.change_protocol(cspace, make(ProtoSpec::FetchAdd(1)));
    let fa = make(ProtoSpec::FetchAdd(1));

    // Greedy nearest-neighbour bound (identical to the kernel's).
    let mut used = [false; N];
    used[0] = true;
    let mut at = 0usize;
    let mut bound = 0u64;
    for _ in 1..N {
        let mut bc = usize::MAX;
        let mut bd = u64::MAX;
        for c in 1..N {
            if !used[c] && dist(at, c) < bd {
                bd = dist(at, c);
                bc = c;
            }
        }
        bound += bd;
        used[bc] = true;
        at = bc;
    }
    bound += dist(at, 0);

    let total = ((N - 1) * (N - 2)) as u64;
    let mut found = bound + 1;

    loop {
        // One-round-trip claim: lock is the fetch-and-add; the read hits
        // the installed ticket; the null write/unlock are skipped.
        rt.lock_direct(counter, &*fa);
        let ticket = rt.with_unchecked::<u64, _>(counter, |c| c[0]);
        rt.with_mut_unchecked::<u64, _>(counter, |c| c[0] = ticket + 1);
        if ticket >= total {
            break;
        }
        let a = (ticket / (N as u64 - 2)) as usize + 1;
        let boff = (ticket % (N as u64 - 2)) as usize;
        let mut b = boff + 1;
        if b >= a {
            b += 1;
        }
        let plen = dist(0, a) + dist(a, b);

        rt.start_read_direct(best, &*sc);
        let _observed = rt.with::<u64, _>(best, |x| x[0]);
        rt.end_read_direct(best, &*sc);
        rt.charge_flops(1);

        let mut jbest = found;
        if plen < jbest {
            // Iterative DFS, mirroring the kernel's structure and flop
            // charges exactly.
            let mut path = [0usize; 16];
            let mut lens = [0u64; 16];
            let mut next = [0usize; 16];
            let mut used = [false; N];
            used[0] = true;
            used[a] = true;
            used[b] = true;
            path[0] = 0;
            path[1] = a;
            path[2] = b;
            lens[2] = plen;
            next[2] = 1;
            let mut depth = 2usize;
            while depth >= 2 {
                if depth == N - 1 {
                    let last = path[depth];
                    let totald = lens[depth] + dist(last, 0);
                    if totald < jbest {
                        jbest = totald;
                    }
                    rt.charge_flops(2);
                    used[path[depth]] = false;
                    depth -= 1;
                    continue;
                }
                let mut cand = next[depth];
                let mut moved = false;
                while cand < N {
                    if !used[cand] {
                        let nl = lens[depth] + dist(path[depth], cand);
                        rt.charge_flops(3);
                        if nl < jbest {
                            next[depth] = cand + 1;
                            depth += 1;
                            path[depth] = cand;
                            lens[depth] = nl;
                            next[depth] = 1;
                            used[cand] = true;
                            moved = true;
                            break;
                        }
                    }
                    cand += 1;
                }
                if !moved {
                    used[path[depth]] = false;
                    next[depth] = N;
                    depth -= 1;
                }
            }
        }
        if jbest < found {
            found = jbest;
        }
        rt.lock_direct(best, &*sc);
        rt.start_read_direct(best, &*sc);
        let cur = rt.with::<u64, _>(best, |x| x[0]);
        rt.end_read_direct(best, &*sc);
        if found < cur {
            rt.start_write_direct(best, &*sc);
            rt.with_mut::<u64, _>(best, |x| x[0] = found);
            rt.end_write_direct(best, &*sc);
        }
        rt.unlock_direct(best, &*sc);
    }

    rt.barrier(bspace);
    rt.start_read_direct(best, &*sc);
    let answer = rt.with::<u64, _>(best, |x| x[0]);
    rt.end_read_direct(best, &*sc);
    rt.barrier(bspace);
    rt.allreduce_u64(answer, u64::min) as f64
}

fn hand_water(rt: &AceRt) -> f64 {
    const N: usize = 32;
    const STEPS: usize = 2;
    const LANES: usize = 9;
    let np = rt.nprocs();
    let me = rt.rank();
    let per = N / np;

    let mols = rt.new_space(make(ProtoSpec::Sc));
    let sc = make(ProtoSpec::Sc);
    let mine: Vec<RegionId> = (0..per).map(|_| rt.gmalloc::<f64>(mols, LANES)).collect();
    let all = exchange_handles(rt, N, per, &mine);

    for (i, &rid) in mine.iter().enumerate() {
        let gid = me * per + i;
        rt.map(rid);
        rt.start_write_direct(rid, &*sc);
        rt.with_mut::<f64, _>(rid, |m| {
            m[0] = (gid % 7) as f64 * 0.3 - 1.0;
            m[1] = (gid % 5) as f64 * 0.4 - 1.0;
            m[2] = (gid % 3) as f64 * 0.5 - 0.7;
            m[3] = 0.01 * (gid % 4) as f64;
            m[4] = 0.0;
            m[5] = 0.0;
        });
        rt.end_write_direct(rid, &*sc);
    }
    rt.barrier(mols);

    rt.change_protocol(mols, make(ProtoSpec::Null));
    let pip = make(ProtoSpec::Pipelined);

    // Hand optimization: map everything once.
    for g in 0..N {
        rt.map(all[g]);
    }

    for _ in 0..STEPS {
        // Intra phase under the null protocol: raw local access.
        for &rid in &mine {
            rt.with_mut_unchecked::<f64, _>(rid, |m| {
                for a in 0..3 {
                    m[3 + a] += 0.001 * m[6 + a];
                    m[a] += 0.002 * m[3 + a];
                    m[6 + a] = 0.0;
                }
            });
            rt.charge_flops(12);
        }
        rt.barrier(mols);

        rt.change_protocol(mols, make(ProtoSpec::Pipelined));
        let half = N / 2;
        for i in 0..per {
            let gi = me * per + i;
            for k in 1..=half {
                let gj = (gi + k) % N;
                if N.is_multiple_of(2) && k == half && gi > gj {
                    continue;
                }
                let (ri, rj) = (all[gi], all[gj]);
                rt.start_read_direct(ri, &*pip);
                let pi = rt.with::<f64, _>(ri, |m| [m[0], m[1], m[2]]);
                rt.start_read_direct(rj, &*pip);
                let pj = rt.with::<f64, _>(rj, |m| [m[0], m[1], m[2]]);
                let dx = pj[0] - pi[0];
                let dy = pj[1] - pi[1];
                let dz = pj[2] - pi[2];
                let d2 = dx * dx + dy * dy + dz * dz + 0.05;
                let inv = 1.0 / (d2 * d2.sqrt());
                rt.charge_flops(14 + 2);
                rt.start_write_direct(ri, &*pip);
                rt.with_mut::<f64, _>(ri, |m| {
                    m[6] += dx * inv;
                    m[7] += dy * inv;
                    m[8] += dz * inv;
                });
                rt.end_write_direct(ri, &*pip);
                rt.start_write_direct(rj, &*pip);
                rt.with_mut::<f64, _>(rj, |m| {
                    m[6] -= dx * inv;
                    m[7] -= dy * inv;
                    m[8] -= dz * inv;
                });
                rt.end_write_direct(rj, &*pip);
                rt.charge_flops(6);
            }
        }
        rt.barrier(mols);
        rt.change_protocol(mols, make(ProtoSpec::Null));

        for &rid in &mine {
            rt.with_mut_unchecked::<f64, _>(rid, |m| {
                for a in 0..3 {
                    m[3 + a] += 0.001 * m[6 + a];
                }
            });
            rt.charge_flops(6);
        }
        rt.barrier(mols);
    }

    let mut local = 0.0;
    for &rid in &mine {
        local += rt.with_unchecked::<f64, _>(rid, |m| m[0].abs() + m[1].abs() + m[2].abs());
    }
    rt.allreduce_f64(local, |a, b| a + b)
}

fn hand_bsc(rt: &AceRt) -> f64 {
    const B: usize = 5;
    const BW: usize = 8;
    let np = rt.nprocs();
    let me = rt.rank();

    let blocks = rt.new_space(make(ProtoSpec::Sc));
    let sc = make(ProtoSpec::Sc);
    let owner = |i: usize, j: usize| (i + j) % np;

    let mut blk = Vec::new();
    for j in 0..B {
        for i in j..B {
            if owner(i, j) == me {
                blk.push(rt.gmalloc::<f64>(blocks, BW * BW));
            }
        }
    }
    // Exchange the full table, mirroring the kernel's broadcast loop.
    let mut tab = [RegionId::NULL; B * B];
    let mut mycur = 0usize;
    for j in 0..B {
        for i in j..B {
            let o = owner(i, j);
            let h = if o == me {
                let r = blk[mycur];
                mycur += 1;
                r
            } else {
                RegionId::NULL
            };
            tab[j * B + i] = RegionId(rt.bcast(o, &[h.0])[0]);
        }
    }

    let mut own = 0usize;
    for j in 0..B {
        for i in j..B {
            if owner(i, j) == me {
                let rid = blk[own];
                own += 1;
                rt.map(rid);
                rt.start_write_direct(rid, &*sc);
                rt.with_mut::<f64, _>(rid, |m| {
                    for rr in 0..BW {
                        for cc in 0..BW {
                            let gr = (i * BW + rr) as f64;
                            let gc = (j * BW + cc) as f64;
                            let mut v = 1.0 / (1.0 + (gr - gc).abs());
                            if gr == gc {
                                v += (B * BW) as f64;
                            }
                            m[rr * BW + cc] = v;
                        }
                    }
                });
                rt.end_write_direct(rid, &*sc);
                rt.charge_flops((BW * BW) as u64);
            }
        }
    }
    rt.barrier(blocks);

    rt.change_protocol(blocks, make(ProtoSpec::HomeOwned));
    let ho = make(ProtoSpec::HomeOwned);

    // Hand optimization: map every block once.
    for j in 0..B {
        for i in j..B {
            rt.map(tab[j * B + i]);
        }
    }

    for k in 0..B {
        if owner(k, k) == me {
            // HomeOwned writes at home are null hooks: raw in-place potrf.
            rt.with_mut_unchecked::<f64, _>(tab[k * B + k], |d| {
                for kk in 0..BW {
                    let piv = d[kk * BW + kk].sqrt();
                    d[kk * BW + kk] = piv;
                    for rr in (kk + 1)..BW {
                        d[rr * BW + kk] /= piv;
                    }
                    for cc in (kk + 1)..BW {
                        for rr in cc..BW {
                            d[rr * BW + cc] -= d[rr * BW + kk] * d[cc * BW + kk];
                        }
                        d[kk * BW + cc] = 0.0;
                    }
                }
            });
            rt.charge_flops((BW * BW * BW) as u64 / 3);
        }
        rt.barrier(blocks);

        for i in (k + 1)..B {
            if owner(i, k) == me {
                rt.start_read_direct(tab[k * B + k], &*ho);
                let l = rt.with::<f64, _>(tab[k * B + k], |m| m.to_vec());
                let x = tab[k * B + i];
                rt.with_mut_unchecked::<f64, _>(x, |xm| {
                    for rr in 0..BW {
                        for cc in 0..BW {
                            let mut s = xm[rr * BW + cc];
                            for tt in 0..cc {
                                s -= xm[rr * BW + tt] * l[cc * BW + tt];
                            }
                            xm[rr * BW + cc] = s / l[cc * BW + cc];
                        }
                    }
                });
                rt.charge_flops((BW * BW * BW) as u64 / 2);
            }
        }
        rt.barrier(blocks);

        for j in (k + 1)..B {
            for i in j..B {
                if owner(i, j) == me {
                    rt.start_read_direct(tab[k * B + i], &*ho);
                    let a = rt.with::<f64, _>(tab[k * B + i], |m| m.to_vec());
                    rt.start_read_direct(tab[k * B + j], &*ho);
                    let bb = rt.with::<f64, _>(tab[k * B + j], |m| m.to_vec());
                    rt.with_mut_unchecked::<f64, _>(tab[j * B + i], |c| {
                        for rr in 0..BW {
                            for cc in 0..BW {
                                let mut s = 0.0;
                                for tt in 0..BW {
                                    s += a[rr * BW + tt] * bb[cc * BW + tt];
                                }
                                c[rr * BW + cc] -= s;
                            }
                        }
                    });
                    rt.charge_flops(2 * (BW * BW * BW) as u64);
                }
            }
        }
        rt.barrier(blocks);
    }

    let mut local = 0.0;
    let mut own = 0usize;
    for j in 0..B {
        for i in j..B {
            if owner(i, j) == me {
                let rid = blk[own];
                own += 1;
                local +=
                    rt.with_unchecked::<f64, _>(rid, |m| m.iter().map(|x| x.abs()).sum::<f64>());
            }
        }
    }
    rt.allreduce_f64(local, |a, b| a + b)
}

fn hand_barnes(rt: &AceRt) -> f64 {
    const N: usize = 48;
    const G: usize = 8;
    const STEPS: usize = 2;
    let np = rt.nprocs();
    let me = rt.rank();
    let per = N / np;
    let per_g = N / G;

    let bodies = rt.new_space(make(ProtoSpec::Sc));
    let cells = rt.new_space(make(ProtoSpec::Sc));
    let sc = make(ProtoSpec::Sc);

    let mine: Vec<RegionId> = (0..per).map(|_| rt.gmalloc::<f64>(bodies, 7)).collect();
    let all = exchange_handles(rt, N, per, &mine);
    let cent: Vec<RegionId> = (0..G)
        .map(|_| {
            let h = if me == 0 { rt.gmalloc::<f64>(cells, 4) } else { RegionId::NULL };
            RegionId(rt.bcast(0, &[h.0])[0])
        })
        .collect();

    for (i, &rid) in mine.iter().enumerate() {
        let gid = me * per + i;
        rt.map(rid);
        rt.start_write_direct(rid, &*sc);
        rt.with_mut::<f64, _>(rid, |b| {
            b[0] = (gid % 9) as f64 * 0.25 - 1.0;
            b[1] = (gid % 7) as f64 * 0.3 - 0.9;
            b[2] = (gid % 5) as f64 * 0.35 - 0.6;
            b[3] = 0.0;
            b[4] = 0.0;
            b[5] = 0.0;
            b[6] = 1.0 / N as f64;
        });
        rt.end_write_direct(rid, &*sc);
    }
    rt.barrier(bodies);

    rt.change_protocol(bodies, make(ProtoSpec::DynUpdate));
    let upd = make(ProtoSpec::DynUpdate);

    // Hand optimization: map once (this is also where dynamic-update
    // joins happen).
    for g in 0..N {
        rt.map(all[g]);
    }
    for g in 0..G {
        rt.map(cent[g]);
    }

    for _ in 0..STEPS {
        if me == 0 {
            for g in 0..G {
                let (mut cx, mut cy, mut cz, mut m) = (0.0, 0.0, 0.0, 0.0);
                for k in 0..per_g {
                    let rid = all[g * per_g + k];
                    rt.start_read_direct(rid, &*upd);
                    rt.with::<f64, _>(rid, |b| {
                        let bm = b[6];
                        cx += b[0] * bm;
                        cy += b[1] * bm;
                        cz += b[2] * bm;
                        m += bm;
                    });
                    rt.charge_flops(7);
                }
                let c = cent[g];
                rt.start_write_direct(c, &*sc);
                rt.with_mut::<f64, _>(c, |v| {
                    v[0] = cx / m;
                    v[1] = cy / m;
                    v[2] = cz / m;
                    v[3] = m;
                });
                rt.end_write_direct(c, &*sc);
            }
        }
        rt.barrier(cells);
        rt.barrier(bodies);

        for i in 0..per {
            let gi = me * per + i;
            let myg = gi / per_g;
            let bi = mine[i];
            rt.start_read_direct(bi, &*upd);
            let (px, py, pz) = rt.with::<f64, _>(bi, |b| (b[0], b[1], b[2]));
            let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
            for g in 0..G {
                if g == myg {
                    for k in 0..per_g {
                        let gj = g * per_g + k;
                        if gj != gi {
                            let bj = all[gj];
                            rt.start_read_direct(bj, &*upd);
                            let (bx, by, bz, bm) =
                                rt.with::<f64, _>(bj, |b| (b[0], b[1], b[2], b[6]));
                            let dx = bx - px;
                            let dy = by - py;
                            let dz = bz - pz;
                            let d2 = dx * dx + dy * dy + dz * dz + 0.01;
                            let w = bm / (d2 * d2.sqrt());
                            ax += dx * w;
                            ay += dy * w;
                            az += dz * w;
                            rt.charge_flops(13);
                        }
                    }
                } else {
                    let c = cent[g];
                    rt.start_read_direct(c, &*sc);
                    let (cx, cy, cz, cm) = rt.with::<f64, _>(c, |v| (v[0], v[1], v[2], v[3]));
                    rt.end_read_direct(c, &*sc);
                    let dx = cx - px;
                    let dy = cy - py;
                    let dz = cz - pz;
                    let d2 = dx * dx + dy * dy + dz * dz + 0.01;
                    let w = cm / (d2 * d2.sqrt());
                    ax += dx * w;
                    ay += dy * w;
                    az += dz * w;
                    rt.charge_flops(13);
                }
            }
            rt.start_write_direct(bi, &*upd);
            rt.with_mut::<f64, _>(bi, |b| {
                b[3] = ax;
                b[4] = ay;
                b[5] = az;
            });
            rt.end_write_direct(bi, &*upd);
        }
        rt.barrier(bodies);

        for &rid in &mine {
            rt.start_write_direct(rid, &*upd);
            rt.with_mut::<f64, _>(rid, |b| {
                for a in 0..3 {
                    b[a] += 0.01 * b[3 + a];
                }
            });
            rt.end_write_direct(rid, &*upd);
            rt.charge_flops(6);
        }
        rt.barrier(bodies);
    }

    let mut local = 0.0;
    for &rid in &mine {
        rt.start_read_direct(rid, &*upd);
        local += rt.with::<f64, _>(rid, |b| b[0].abs() + b[1].abs() + b[2].abs());
    }
    rt.allreduce_f64(local, |a, b| a + b)
}

/// The Ace barrier used by hand code needs a `SpaceId`; re-export for the
/// binaries.
pub type Space = SpaceId;
/// Protocol handle alias for the binaries.
pub type Proto = Rc<dyn Protocol>;

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn all_kernels_compile_at_every_level() {
        let cfg = SystemConfig::builtin();
        for k in kernels() {
            for level in OptLevel::ALL {
                compile(k.source, &cfg, level)
                    .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", k.name));
            }
        }
    }

    #[test]
    fn verification_survives_every_level_and_matches_hand() {
        for k in kernels() {
            let (v0, _) = run_compiled(&k, OptLevel::O0, 4);
            for level in [OptLevel::Licm, OptLevel::Merge, OptLevel::Direct] {
                let (v, _) = run_compiled(&k, level, 4);
                assert!(close(v0, v), "{}: {level:?} changed the result ({v0} vs {v})", k.name);
            }
            let (hv, _) = run_hand(&k, 4);
            assert!(close(v0, hv), "{}: hand version disagrees ({v0} vs {hv})", k.name);
        }
    }

    #[test]
    fn table4_shape_holds() {
        // Simulated makespans carry scheduling noise: `absorb` order
        // depends on real thread interleaving, and apps with racy protocol
        // decisions (TSP's ticket assignment) vary ±10% run to run. The
        // tolerances are therefore loose; what's asserted is the structure:
        // optimization levels never *meaningfully* hurt, the best compiled
        // level does not lose to the base case, and the hand version does
        // not lose to the best compiled one.
        for row in table4(4) {
            for w in row.level_ms.windows(2) {
                assert!(
                    w[1] <= w[0] * 1.25,
                    "{}: optimization level regressed: {:?}",
                    row.app,
                    row.level_ms
                );
            }
            assert!(
                row.level_ms[3] <= row.level_ms[0] * 1.15,
                "{}: full optimization must not lose to the base case: {:?}",
                row.app,
                row.level_ms
            );
            assert!(
                row.hand_ms <= row.level_ms[3] * 1.25,
                "{}: hand ({:.3}) should not lose to best compiled ({:.3})",
                row.app,
                row.hand_ms,
                row.level_ms[3]
            );
        }
    }
}
