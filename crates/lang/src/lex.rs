//! Lexer for Ace-C.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals & identifiers
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // keywords
    KwInt,
    KwDouble,
    KwVoid,
    KwSpace,
    KwShared,
    KwStruct,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Assign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Arrow,
    Eof,
}

/// A token with its source line (for error messages).
#[derive(Debug, Clone)]
pub struct Sp {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenize Ace-C source.
///
/// # Errors
///
/// Returns a message naming the offending character and line.
pub fn lex(src: &str) -> Result<Vec<Sp>, String> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float =
                    i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                        i += 1;
                        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                            i += 1;
                        }
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    let text = &src[start..i];
                    let v: f64 =
                        text.parse().map_err(|_| format!("line {line}: bad float '{text}'"))?;
                    out.push(Sp { tok: Tok::Float(v), line });
                } else {
                    let text = &src[start..i];
                    let v: i64 =
                        text.parse().map_err(|_| format!("line {line}: bad int '{text}'"))?;
                    out.push(Sp { tok: Tok::Int(v), line });
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "int" => Tok::KwInt,
                    "double" => Tok::KwDouble,
                    "void" => Tok::KwVoid,
                    "space" => Tok::KwSpace,
                    "shared" => Tok::KwShared,
                    "struct" => Tok::KwStruct,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Sp { tok, line });
            }
            '"' => {
                i += 1;
                let start = i;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(format!("line {line}: unterminated string"));
                }
                out.push(Sp { tok: Tok::Str(src[start..i].to_string()), line });
                i += 1;
            }
            _ => {
                let two = |a: u8, b2: u8| i + 1 < b.len() && b[i] == a && b[i + 1] == b2;
                let (tok, adv) = if two(b'-', b'>') {
                    (Tok::Arrow, 2)
                } else if two(b'=', b'=') {
                    (Tok::Eq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else {
                    let t = match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ',' => Tok::Comma,
                        ';' => Tok::Semi,
                        '*' => Tok::Star,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '=' => Tok::Assign,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        '!' => Tok::Not,
                        other => {
                            return Err(format!("line {line}: unexpected character '{other}'"))
                        }
                    };
                    (t, 1)
                };
                out.push(Sp { tok, line });
                i += adv;
            }
        }
    }
    out.push(Sp { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("shared int *p;"),
            vec![Tok::KwShared, Tok::KwInt, Tok::Star, Tok::Ident("p".into()), Tok::Semi, Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 1e3"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Int(1), Tok::Ident("e3".into()), Tok::Eof]
        );
        assert_eq!(toks("2.5e-2"), vec![Tok::Float(0.025), Tok::Eof]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a->b == c != d <= e >= f && g || !h"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::Eq,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::Le,
                Tok::Ident("e".into()),
                Tok::Ge,
                Tok::Ident("f".into()),
                Tok::AndAnd,
                Tok::Ident("g".into()),
                Tok::OrOr,
                Tok::Not,
                Tok::Ident("h".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_strings() {
        assert_eq!(
            toks("// line\nx /* block\nspanning */ \"Update\""),
            vec![Tok::Ident("x".into()), Tok::Str("Update".into()), Tok::Eof]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let sp = lex("a\nb\n\nc").unwrap();
        assert_eq!(sp[0].line, 1);
        assert_eq!(sp[1].line, 2);
        assert_eq!(sp[2].line, 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
