//! Structured event tracing for the simulated machine.
//!
//! The substrate (`ace-machine`) gives every node a [`TraceSink`]: a
//! preallocated ring buffer of [`TraceEvent`]s, each stamped with the
//! node's *virtual* clock. Tracing is off by default ([`TraceConfig::off`])
//! and every instrumentation point starts with an inlined `enabled()`
//! check, so the disabled hot paths cost one predictable branch.
//!
//! After a run, the per-node buffers are merged into a [`MachineTrace`]:
//! one virtual-time-ordered timeline that can be
//!
//! * exported as Chrome `trace_event` JSON ([`MachineTrace::to_chrome_json`],
//!   loadable in `chrome://tracing` or Perfetto — one track per node, one
//!   flow arrow per message),
//! * reduced to a per-protocol summary table ([`MachineTrace::summary`]:
//!   hook counts, time-in-hook, bytes by message tag), or
//! * turned into a wait-graph dump ([`MachineTrace::wait_graph`]) naming
//!   the hook and region each still-blocked node is stuck on.
//!
//! This crate is dependency-free and knows nothing about the runtime; the
//! machine and runtime layers decide *what* to emit.

pub mod chrome;
pub mod jsonlite;
pub mod sink;
pub mod timeline;

pub use chrome::{validate_chrome_trace, ChromeCheck};
pub use sink::TraceSink;
pub use timeline::{
    BlockedWait, HookRow, MachineTrace, NodeTrace, SwitchRow, TagRow, TraceSummary,
};

/// Default per-node ring capacity, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Region field value for events that are not about any region
/// (e.g. barrier hooks).
pub const NO_REGION: u64 = u64::MAX;

/// Runtime tracing configuration, carried by the machine builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When false no event is ever recorded.
    pub enabled: bool,
    /// Per-node ring-buffer capacity in events; when a node's buffer is
    /// full the oldest event is dropped (and counted).
    pub capacity: usize,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig { enabled: false, capacity: 0 }
    }

    /// Tracing enabled with the default per-node capacity.
    pub fn on() -> Self {
        TraceConfig { enabled: true, capacity: DEFAULT_CAPACITY }
    }

    /// Tracing enabled with an explicit per-node ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig { enabled: true, capacity: capacity.max(1) }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// The runtime hooks that emit enter/exit spans. `Handle` is the
/// active-message handler of a protocol (its `detail` carries the
/// protocol-defined opcode name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hook {
    /// `ACE_MAP`.
    Map,
    /// `ACE_UNMAP`.
    Unmap,
    /// `ACE_START_READ`.
    StartRead,
    /// `ACE_END_READ`.
    EndRead,
    /// `ACE_START_WRITE`.
    StartWrite,
    /// `ACE_END_WRITE`.
    EndWrite,
    /// `Ace_Barrier`.
    Barrier,
    /// `Ace_Lock`.
    Lock,
    /// `Ace_UnLock`.
    Unlock,
    /// Protocol active-message handler.
    Handle,
}

impl Hook {
    /// Stable display name of the hook.
    pub fn name(self) -> &'static str {
        match self {
            Hook::Map => "map",
            Hook::Unmap => "unmap",
            Hook::StartRead => "start_read",
            Hook::EndRead => "end_read",
            Hook::StartWrite => "start_write",
            Hook::EndWrite => "end_write",
            Hook::Barrier => "barrier",
            Hook::Lock => "lock",
            Hook::Unlock => "unlock",
            Hook::Handle => "handle",
        }
    }
}

/// One traced occurrence. Events carry `&'static str` names on the hot
/// kinds (messages, hooks) so recording is a couple of word moves; only
/// the rare block/unblock edges own their description.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A wire envelope was injected toward `dst`. One event per wire
    /// message: a coalesced batch of logical sends emits a single `Send`
    /// whose `subs` counts the sub-messages it carries.
    Send {
        /// Destination rank.
        dst: u16,
        /// Message-type tag (see `MsgSize::tag` in the machine crate);
        /// for a coalesced batch, the tag of its first sub-message.
        tag: &'static str,
        /// Wire bytes charged (summed payloads + one header).
        bytes: u32,
        /// Logical sub-messages in this wire envelope (1 when uncoalesced).
        subs: u32,
    },
    /// One logical send. Every `send` call emits exactly one `Pack`,
    /// whether the message departs immediately (coalescing off — the
    /// matching [`EventKind::Send`] follows at the same timestamp) or
    /// joins a per-destination coalescing buffer to ride a later wire
    /// envelope. Summaries derive exact per-tag *logical* counts from
    /// these; wire envelopes (`Send`) are filed under their first
    /// sub-message's tag only.
    Pack {
        /// Destination rank.
        dst: u16,
        /// Message-type tag.
        tag: &'static str,
        /// Logical bytes charged: payload plus one per-message header,
        /// independent of how the message is grouped on the wire.
        bytes: u32,
    },
    /// A wire envelope from `src` was absorbed (its first sub-message
    /// popped for handling).
    Recv {
        /// Source rank.
        src: u16,
        /// Message-type tag (first sub-message's tag for a batch).
        tag: &'static str,
        /// Wire bytes charged (summed payloads + one header).
        bytes: u32,
        /// The sender's virtual clock when the wire envelope was injected.
        sent_at: u64,
        /// Logical sub-messages in this wire envelope (1 when uncoalesced).
        subs: u32,
    },
    /// A runtime hook began on this node.
    HookEnter {
        /// Which hook.
        hook: Hook,
        /// Target region id bits, or [`NO_REGION`].
        region: u64,
        /// The region's space id bits.
        space: u32,
        /// Name of the protocol the hook dispatched to.
        proto: &'static str,
        /// Hook-specific refinement (protocol opcode name for `Handle`).
        detail: &'static str,
    },
    /// The matching end of a [`EventKind::HookEnter`].
    HookExit {
        /// Which hook.
        hook: Hook,
        /// Target region id bits, or [`NO_REGION`].
        region: u64,
        /// The region's space id bits.
        space: u32,
        /// Name of the protocol the hook dispatched to.
        proto: &'static str,
        /// Hook-specific refinement (protocol opcode name for `Handle`).
        detail: &'static str,
    },
    /// A region's protocol state code changed across a hook or handler.
    State {
        /// The region whose state moved.
        region: u64,
        /// State code before.
        from: u32,
        /// State code after.
        to: u32,
    },
    /// The runtime conformance checker caught a violation on this node.
    Violation {
        /// Target region id bits, or [`NO_REGION`].
        region: u64,
        /// The structured report, rendered (an `AceError::Conformance`
        /// Display string at the runtime layer).
        what: Box<str>,
    },
    /// An adaptive protocol engine committed a protocol switch on this
    /// node. Space-wide switches carry [`NO_REGION`]; `epoch` is the
    /// engine's switch epoch *after* the commit (also piggybacked on
    /// every subsequent wire envelope).
    Switch {
        /// Target region id bits, or [`NO_REGION`] for a space-wide switch.
        region: u64,
        /// The space whose protocol moved.
        space: u32,
        /// Registered name of the protocol switched away from.
        from: &'static str,
        /// Registered name of the protocol switched to.
        to: &'static str,
        /// The switch epoch after the commit.
        epoch: u64,
    },
    /// The node blocked (entered a poll loop) waiting for `what`.
    Block {
        /// The caller-provided wait description.
        what: Box<str>,
    },
    /// The node's wait for `what` was satisfied.
    Unblock {
        /// The caller-provided wait description.
        what: Box<str>,
    },
}

/// One event stamped with the emitting node's virtual clock (ns).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time on the emitting node, nanoseconds.
    pub t: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_off() {
        assert_eq!(TraceConfig::default(), TraceConfig::off());
        assert!(!TraceConfig::off().enabled);
        assert!(TraceConfig::on().enabled);
        assert_eq!(TraceConfig::on().capacity, DEFAULT_CAPACITY);
        assert_eq!(TraceConfig::with_capacity(0).capacity, 1, "capacity is clamped to 1");
    }

    #[test]
    fn hook_names_are_stable() {
        assert_eq!(Hook::StartRead.name(), "start_read");
        assert_eq!(Hook::Handle.name(), "handle");
        assert_eq!(Hook::Barrier.name(), "barrier");
    }
}
