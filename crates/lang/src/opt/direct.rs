//! Direct dispatch (§4.2, "Avoiding Dispatching Overhead").
//!
//! "If the compiler can determine that there is a unique protocol
//! associated with an access, it replaces calls to Ace protocol dispatch
//! routines ... with direct calls to the appropriate protocol routine.
//! ... In addition, if a protocol defines certain actions to be null,
//! then calls to that protocol action can be removed."
//!
//! `Map` calls are rewritten to direct mode (skipping the dispatch) but
//! never removed — the id-to-mapping translation is still required.

use ace_core::Actions;

use crate::analysis::Facts;
use crate::config::SystemConfig;
use crate::ir::*;

/// Run the pass over every function.
pub fn run(prog: &mut Program, facts: &Facts, cfg: &SystemConfig) {
    for f in &mut prog.funcs {
        for b in &mut f.blocks {
            b.insts.retain_mut(|inst| {
                let (aid, action, removable) = match inst {
                    Inst::Map { aid, .. } => (*aid, Actions::MAP, false),
                    Inst::StartRead { aid, .. } => (*aid, Actions::START_READ, true),
                    Inst::EndRead { aid, .. } => (*aid, Actions::END_READ, true),
                    Inst::StartWrite { aid, .. } => (*aid, Actions::START_WRITE, true),
                    Inst::EndWrite { aid, .. } => (*aid, Actions::END_WRITE, true),
                    Inst::Lock { aid, .. } => (*aid, Actions::LOCK, true),
                    Inst::Unlock { aid, .. } => (*aid, Actions::UNLOCK, true),
                    _ => return true,
                };
                let Some(p) = facts.unique_protocol(aid) else { return true };
                let mode = if removable && cfg.null_actions(p).contains(action) {
                    DispatchMode::Removed
                } else {
                    DispatchMode::Direct(p)
                };
                match mode {
                    DispatchMode::Removed => false, // delete the call
                    m => {
                        set_mode(inst, m);
                        true
                    }
                }
            });
        }
    }
}

fn set_mode(inst: &mut Inst, m: DispatchMode) {
    match inst {
        Inst::Map { mode, .. }
        | Inst::StartRead { mode, .. }
        | Inst::EndRead { mode, .. }
        | Inst::StartWrite { mode, .. }
        | Inst::EndWrite { mode, .. }
        | Inst::Lock { mode, .. }
        | Inst::Unlock { mode, .. } => *mode = m,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SystemConfig;
    use crate::{compile, OptLevel};
    use ace_core::{run_ace, CostModel};

    #[test]
    fn static_update_reads_are_removed() {
        // Under StaticUpdate, Start/EndRead are null: the direct pass
        // deletes them wholesale (the paper's big EM3D win).
        let src = r#"
            double main() {
                space s = new_space("StaticUpdate");
                shared double *v = (shared double*) gmalloc(s, 4);
                v[0] = 2.0;
                double out = v[0] + v[1];
                barrier(s);
                return out;
            }
        "#;
        let cfg = SystemConfig::builtin();
        let p = compile(src, &cfg, OptLevel::Direct).unwrap();
        let (d, di, _rm) = p.annotation_stats();
        assert_eq!(d, 0, "every annotation is statically resolved");
        let r = run_ace(1, CostModel::free(), |rt| {
            let v = crate::vm::run_program(rt, &p).unwrap().as_f();
            let c = rt.counters();
            (v, c.start_reads, c.dispatched, c.direct)
        });
        let (v, sr, disp, dir) = r.results[0];
        assert_eq!(v, 2.0);
        assert_eq!(sr, 0, "null read hooks removed entirely");
        assert_eq!(disp, 0, "nothing dispatches through the space");
        assert!(dir > 0, "remaining annotations go direct: {dir}");
        let _ = di;
    }

    #[test]
    fn sc_access_stays_dispatched() {
        let src = r#"
            double main() {
                space s = new_space("SC");
                shared double *v = (shared double*) gmalloc(s, 1);
                v[0] = 1.5;
                return v[0];
            }
        "#;
        let cfg = SystemConfig::builtin();
        let p = compile(src, &cfg, OptLevel::Direct).unwrap();
        let r = run_ace(1, CostModel::free(), |rt| {
            // Disable the runtime fast mask so the counters reflect the
            // compiler's dispatch modes rather than in-state absorption.
            rt.set_fast_paths(false);
            let v = crate::vm::run_program(rt, &p).unwrap().as_f();
            (v, rt.counters().dispatched, rt.counters().direct)
        });
        let (v, disp, dir) = r.results[0];
        assert_eq!(v, 1.5);
        // SC is the unique protocol, so calls still go DIRECT (that is
        // legal — uniqueness, not optimizability, gates direct dispatch),
        // but none are removed because SC declares no null actions.
        assert!(disp == 0 && dir > 0, "disp={disp} dir={dir}");

        // With the mask enabled, the same direct calls are absorbed by
        // the in-state fast path — the fourth rung of the Table 4 ladder.
        let r = run_ace(1, CostModel::free(), |rt| {
            crate::vm::run_program(rt, &p).unwrap().as_f();
            (rt.counters().direct, rt.counters().fast_hits)
        });
        let (dir_on, fast_on) = r.results[0];
        assert!(fast_on > 0 && dir_on < dir, "dir_on={dir_on} fast_on={fast_on}");
    }

    #[test]
    fn ambiguous_protocol_stays_dispatched() {
        let src = r#"
            double main() {
                space a = new_space("SC");
                space b = new_space("Null");
                shared double *x;
                if (rank() == 0) { x = (shared double*) gmalloc(a, 1); }
                else { x = (shared double*) gmalloc(b, 1); }
                x[0] = 1.0;
                return x[0];
            }
        "#;
        let cfg = SystemConfig::builtin();
        let p = compile(src, &cfg, OptLevel::Direct).unwrap();
        let r = run_ace(1, CostModel::free(), |rt| {
            // The fast mask would absorb these accesses at runtime; turn
            // it off to observe the dispatch mode the compiler chose.
            rt.set_fast_paths(false);
            crate::vm::run_program(rt, &p).unwrap().as_f();
            rt.counters().dispatched
        });
        assert!(r.results[0] > 0, "two possible protocols forbid direct dispatch");
    }

    #[test]
    fn fetchadd_unlock_removed() {
        let src = r#"
            void main() {
                space s = new_space("FetchAdd");
                shared int *c = (shared int*) gmalloc(s, 1);
                lock(c);
                int t = c[0];
                c[0] = t + 1;
                unlock(c);
            }
        "#;
        let cfg = SystemConfig::builtin();
        let p = compile(src, &cfg, OptLevel::Direct).unwrap();
        // unlock + the null read/write hooks disappear; lock stays.
        let has_unlock = p.funcs.iter().any(|f| {
            f.blocks
                .iter()
                .any(|b| b.insts.iter().any(|i| matches!(i, crate::ir::Inst::Unlock { .. })))
        });
        let has_lock = p.funcs.iter().any(|f| {
            f.blocks
                .iter()
                .any(|b| b.insts.iter().any(|i| matches!(i, crate::ir::Inst::Lock { .. })))
        });
        assert!(!has_unlock, "null unlock must be removed");
        assert!(has_lock, "lock is the protocol's real action");
    }
}
