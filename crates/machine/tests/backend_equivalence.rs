//! Machine-level checks that the multiplexed backend preserves the
//! substrate's contracts at scale: the deterministic inbox scheduler
//! replays beyond the 64-rank single-word fast path, failure detection
//! still names the culprit promptly when nodes share a worker pool, and
//! a machine at the 4096-node ceiling constructs and tears down.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use ace_machine::{CostModel, ExecBackend, Spmd};

/// The tests here spawn hundreds-to-thousands of node threads each; run
/// concurrently they starve one another (and the replay test's
/// everything-arrives-before-the-first-pop grace period is a timing
/// assumption), so they take turns.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn deterministic_replay_at_256_nodes_multiplexed() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // 255 senders race two messages each at node 0, which only starts
    // popping after everything has arrived, so the pop order is decided
    // entirely by the seeded scheduler. At 256 ranks the scheduler's
    // seen-set spills past its single-word bitmap, and under the
    // multiplexed backend arrival interleavings are governed by slot
    // handoffs rather than the OS — neither may leak into the replay.
    let n = 256usize;
    let run = |seed: u64| {
        let r = Spmd::builder()
            .nprocs(n)
            .cost(CostModel::cm5())
            .deterministic(seed)
            .backend(ExecBackend::Multiplexed)
            .run::<u64, _, _>(|node| {
                if node.rank() == 0 {
                    // Give every sender time to drain through the slot
                    // gate before the first pop: the replay is only
                    // fully seed-determined once everything is queued.
                    std::thread::sleep(Duration::from_millis(750));
                    let order = std::cell::RefCell::new(Vec::new());
                    let want = (n - 1) * 2;
                    node.poll_until(
                        "all raced msgs",
                        |_, env| order.borrow_mut().push((env.src, env.msg)),
                        || order.borrow().len() == want,
                    );
                    order.into_inner()
                } else {
                    node.send(0, node.rank() as u64 * 10 + 1);
                    node.send(0, node.rank() as u64 * 10 + 2);
                    Vec::new()
                }
            });
        r.results[0].clone()
    };
    let a = run(41);
    let b = run(41);
    assert_eq!(a, b, "same seed must replay the same pop order");
    for src in 1..n {
        let msgs: Vec<u64> = a.iter().filter(|(s, _)| *s == src).map(|(_, m)| *m).collect();
        assert_eq!(
            msgs,
            vec![src as u64 * 10 + 1, src as u64 * 10 + 2],
            "per-source FIFO must be preserved"
        );
    }
}

#[test]
#[should_panic(expected = "node 1 panicked: boom")]
fn peer_death_is_detected_under_multiplexing() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Node 1 crashes while node 0 blocks in a receive wait. The waiter
    // yields its slot while parked, so the death must still be noticed
    // promptly — well under the watchdog — and the propagated panic must
    // name the crashing node via the lock-free failure cell, not the
    // innocent waiter.
    let start = Instant::now();
    let r = std::panic::catch_unwind(|| {
        Spmd::builder()
            .nprocs(8)
            .cost(CostModel::free())
            .backend(ExecBackend::Multiplexed)
            .workers(2)
            .run::<u64, _, _>(|node| {
                if node.rank() == 1 {
                    panic!("boom");
                }
                node.poll_until("a message that never comes", |_, _| {}, || false);
            })
    });
    assert!(r.is_err());
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "peer death took {:?} to detect; watchdog should not be involved",
        start.elapsed()
    );
    std::panic::resume_unwind(r.unwrap_err());
}

#[test]
fn machine_at_the_node_ceiling_constructs_and_runs() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The full 4096-node machine: shared routing table, per-node state,
    // and the slot gate all at the MAX_NODES ceiling. Each node passes a
    // token around a ring so every channel and both gate directions get
    // exercised at least once.
    let n = ace_machine::MAX_NODES;
    let r = Spmd::builder()
        .nprocs(n)
        .cost(CostModel::free())
        .backend(ExecBackend::Multiplexed)
        .run::<u64, _, _>(|node| {
            let next = (node.rank() + 1) % n;
            node.send(next, node.rank() as u64);
            let got = std::cell::Cell::new(u64::MAX);
            node.poll_until("ring token", |_, env| got.set(env.msg), || got.get() != u64::MAX);
            got.get()
        });
    for (rank, &got) in r.results.iter().enumerate() {
        assert_eq!(got as usize, (rank + n - 1) % n, "ring token came from the wrong rank");
    }
}
