//! The [`Strategy`] trait and its combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice among boxed arms — built by the `prop_oneof!` macro.
pub struct Union<V> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> Union<V> {
    /// An empty union; `generate` panics until an arm is pushed.
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Construct from pre-boxed arms.
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
        Union { arms }
    }

    /// Add one equally-weighted arm.
    pub fn push<S>(&mut self, strat: S)
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms.push(Box::new(move |rng| strat.generate(rng)));
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Regex-flavoured string strategy, approximated: any `&str` pattern
/// yields random strings over a mix of printable ASCII, general Unicode,
/// whitespace, and (when the pattern permits control characters, i.e. it
/// is not `\PC`-restricted) raw control bytes. The never-panic lexer and
/// parser properties only require adversarial coverage, not exact regex
/// semantics.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let allow_control = !self.contains("\\PC");
        let len = rng.below(48) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(100) {
                0..=59 => (b' ' + rng.below(95) as u8) as char, // printable ASCII
                60..=74 => char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('\u{FFFD}'),
                75..=89 => {
                    ['\t', '\n', '(', ')', '{', '}', '"', '\\', ';', '*'][rng.below(10) as usize]
                }
                _ if allow_control => char::from_u32(rng.below(32) as u32).unwrap_or('\0'),
                _ => '_',
            };
            out.push(c);
        }
        out
    }
}
